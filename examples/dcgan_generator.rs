//! Runs a scaled-down DCGAN-style generator layer on the cycle-level GANAX
//! machine and checks it against the functional reference.
//!
//! ```text
//! cargo run --example dcgan_generator
//! ```
//!
//! The machine drives real strided µindex generators and decoupled
//! access-execute PEs, so this is the "see the hardware actually compute a
//! transposed convolution" demo: it prints the per-layer compiled µop program,
//! executes the layer, verifies the output and reports how many
//! multiply-accumulates the reorganized dataflow actually performed compared
//! to what a dense execution would have done.

use ganax_repro::prelude::*;
use ganax_tensor::tconv;

fn main() {
    // A DCGAN-style upsampling layer, scaled down so the cycle-level machine
    // finishes instantly: 8 channels of 8x8 -> 4 channels of 16x16.
    let layer = ganax_repro::models::Layer::conv(
        "dcgan-up-scaled",
        Shape::new_2d(8, 8, 8),
        4,
        ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1),
        Activation::Relu,
    )
    .expect("layer geometry is valid");
    println!("layer {}: {} -> {}", layer.name, layer.input, layer.output);
    println!(
        "  dense MACs {}, consequential MACs {} ({:.1}% skippable)",
        layer.dense_macs(),
        layer.consequential_macs(),
        layer.inconsequential_fraction() * 100.0
    );

    // Compile the layer to its uop program (Section IV of the paper).
    let compiler = GanaxCompiler::paper();
    let program = compiler.compile_layer(&layer);
    let stats = program.stats();
    println!(
        "  compiled program: {} access uops, {} global entries ({} MIMD-SIMD), {} local uops max",
        stats.access_uops,
        stats.global_entries,
        stats.mimd_entries(),
        stats.max_local_entries
    );

    // Execute it on the cycle-level machine with random-ish data.
    let input = Tensor::from_fn_2d(8, 8, 8, |c, y, x| {
        ((c * 31 + y * 7 + x) % 13) as f32 * 0.1 - 0.6
    });
    let weights = Tensor::from_filter_fn(Shape::filter(4, 8, 1, 5, 5), |co, ci, _z, y, x| {
        ((co * 17 + ci * 5 + y * 3 + x) % 11) as f32 * 0.05 - 0.25
    });
    let machine = GanaxMachine::paper();
    let run = machine
        .execute_layer(&layer, &input, &weights)
        .expect("2-D layer is supported by the machine");

    // Validate against the functional reference.
    let params = ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1);
    let reference = tconv(&input, &weights, &params).expect("reference tconv");
    let max_diff = run.output.max_abs_diff(&reference).expect("shapes match");
    println!("  max |machine - reference| = {max_diff:.2e}");
    assert!(
        max_diff < 1e-3,
        "machine output diverged from the reference"
    );

    println!(
        "  machine executed {} MACs ({} work units); dense execution would need {}",
        run.counts.alu_ops,
        run.work_units,
        layer.dense_macs()
    );
    println!(
        "  -> {:.1}% of the dense work was skipped by the reorganized dataflow",
        (1.0 - run.counts.alu_ops as f64 / layer.dense_macs() as f64) * 100.0
    );
}
