//! Evaluates a user-defined GAN on GANAX: build your own generator and
//! discriminator with the `NetworkBuilder`, then compare the accelerators.
//!
//! ```text
//! cargo run --example custom_gan
//! ```
//!
//! This is the workflow a downstream user follows to size GANAX for a model
//! that is not part of the Table I zoo — here a 128x128 image generator with a
//! mix of stride-2 upsampling and stride-1 refinement layers.

use ganax_repro::prelude::*;

fn main() {
    // Generator: latent vector -> 128x128 RGB image.
    let generator = NetworkBuilder::new("custom-generator", Shape::new_2d(128, 1, 1))
        .projection("project", Shape::new_2d(512, 8, 8), Activation::Relu)
        .tconv(
            "up1",
            256,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::Relu,
        )
        .tconv(
            "up2",
            128,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::Relu,
        )
        .tconv(
            "refine",
            128,
            ConvParams::transposed_2d(3, 1, 1),
            Activation::Relu,
        )
        .tconv(
            "up3",
            64,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::Relu,
        )
        .tconv(
            "up4",
            3,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::Tanh,
        )
        .build()
        .expect("generator geometry is valid");

    // Discriminator: 128x128 RGB image -> real/fake score.
    let discriminator = NetworkBuilder::new("custom-discriminator", Shape::new_2d(3, 128, 128))
        .conv(
            "down1",
            64,
            ConvParams::conv_2d(4, 2, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "down2",
            128,
            ConvParams::conv_2d(4, 2, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "down3",
            256,
            ConvParams::conv_2d(4, 2, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "down4",
            512,
            ConvParams::conv_2d(4, 2, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "score",
            1,
            ConvParams::conv_2d(8, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("discriminator geometry is valid");

    let gan = GanModel::new(
        "CustomGAN",
        2026,
        "user-defined 128x128 generator",
        generator,
        discriminator,
    );

    println!("custom GAN: {}", gan.name);
    println!(
        "  generator layers: {} conv + {} tconv, output {}",
        gan.generator.conv_layer_count(),
        gan.generator.tconv_layer_count(),
        gan.generator.output_shape()
    );
    let stats = gan.generator.op_stats();
    println!(
        "  inconsequential MACs in tconv layers: {:.1}%",
        stats.tconv_inconsequential_fraction() * 100.0
    );

    // Per-layer view: which layers does GANAX help, and by how much?
    let eyeriss = EyerissModel::paper();
    let ganax = GanaxModel::paper();
    let eyeriss_gen = eyeriss.run_network(&gan.generator);
    let ganax_gen = ganax.run_network(&gan.generator);
    println!("\n  per-layer generator cycles (Eyeriss -> GANAX):");
    for (e, g) in eyeriss_gen.layers.iter().zip(&ganax_gen.layers) {
        println!(
            "    {:<10} {:>12} -> {:>12}  ({:.2}x)",
            e.name,
            e.cycles,
            g.cycles,
            e.cycles as f64 / g.cycles.max(1) as f64
        );
    }

    let report = ModelComparison::compare(&gan);
    println!(
        "\n  generator speedup        : {:.2}x",
        report.generator_speedup()
    );
    println!(
        "  generator energy saving  : {:.2}x",
        report.generator_energy_reduction()
    );
    println!(
        "  discriminator speedup    : {:.2}x (unchanged, as intended)",
        report.discriminator_speedup()
    );
}
