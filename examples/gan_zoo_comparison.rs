//! Reproduces the headline evaluation sweep: every Table I GAN on both
//! accelerators (Figures 8 and 11 in one pass).
//!
//! ```text
//! cargo run --release --example gan_zoo_comparison
//! ```

use ganax::compare::{compare_all, geometric_mean};

fn main() {
    let comparisons = compare_all();

    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>11}",
        "Model", "Speedup", "Energy red", "Eyeriss util", "GANAX util", "Disc ratio"
    );
    for report in &comparisons {
        let (eyeriss_util, ganax_util) = report.generator_utilization();
        println!(
            "{:<10} {:>8.2}x {:>9.2}x {:>11.1}% {:>11.1}% {:>10.2}x",
            report.gan_name,
            report.generator_speedup(),
            report.generator_energy_reduction(),
            eyeriss_util * 100.0,
            ganax_util * 100.0,
            report.discriminator_speedup(),
        );
    }

    let speedup = geometric_mean(comparisons.iter().map(|c| c.generator_speedup()));
    let energy = geometric_mean(comparisons.iter().map(|c| c.generator_energy_reduction()));
    println!("{:<10} {:>8.2}x {:>9.2}x", "Geomean", speedup, energy);
    println!();
    println!("paper reference points: 3.6x geomean speedup, 3.1x geomean energy reduction,");
    println!("~90% GANAX PE utilization, ~1.0x on the discriminators.");
}
