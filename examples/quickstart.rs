//! Quickstart: compare GANAX against the Eyeriss baseline on DCGAN.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the typical workflow: pick a workload from the Table I zoo, run
//! it through both accelerator models, and read the headline numbers the paper
//! reports (generator speedup, energy reduction, discriminator neutrality and
//! the GANAX area overhead).

use ganax_repro::prelude::*;

fn main() {
    // 1. Pick a workload. The zoo contains the six GANs of Table I.
    let dcgan = zoo::dcgan();
    println!("workload: {} ({})", dcgan.name, dcgan.description);
    println!(
        "  generator : {:>2} transposed-convolution layers, output {}",
        dcgan.generator.tconv_layer_count(),
        dcgan.generator.output_shape()
    );
    println!(
        "  discriminator: {:>2} convolution layers, input {}",
        dcgan.discriminator.conv_layer_count(),
        dcgan.discriminator.input_shape()
    );

    // 2. How much of the generator's work lands on inserted zeros? (Figure 1)
    let stats = dcgan.generator.op_stats();
    println!(
        "  inconsequential MACs in transposed-convolution layers: {:.1}%",
        stats.tconv_inconsequential_fraction() * 100.0
    );

    // 3. Run the head-to-head comparison (Figures 8-11 in one report).
    let report = ModelComparison::compare(&dcgan);
    println!("\nGANAX vs EYERISS on the {} generator:", dcgan.name);
    println!("  speedup          : {:.2}x", report.generator_speedup());
    println!(
        "  energy reduction : {:.2}x",
        report.generator_energy_reduction()
    );
    let (eyeriss_util, ganax_util) = report.generator_utilization();
    println!(
        "  PE utilization   : {:.0}% -> {:.0}%",
        eyeriss_util * 100.0,
        ganax_util * 100.0
    );
    println!(
        "  discriminator    : {:.2}x speedup (GANAX keeps the SIMD efficiency)",
        report.discriminator_speedup()
    );

    // 4. What does the flexibility cost in silicon? (Table III)
    let config = GanaxConfig::paper();
    println!(
        "\narea overhead over the baseline: {:.1}%",
        config.area_overhead() * 100.0
    );
}
