//! Shared accelerator configuration (array size, clock, energy model).

use ganax_dataflow::ArrayConfig;
use ganax_energy::EnergyModel;
use serde::{Deserialize, Serialize};

/// Configuration shared by the Eyeriss baseline and the GANAX accelerator:
/// the PE-array organization, the clock frequency and the Table II energy
/// model. Both accelerators use identical values in the paper ("the same
/// number of PEs and on-chip memory are used for both accelerators", 500 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PE-array organization.
    pub array: ArrayConfig,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Per-access energy model.
    pub energy: EnergyModel,
}

impl AcceleratorConfig {
    /// The paper's configuration: 16 PVs × 16 PEs at 500 MHz with Table II
    /// energies.
    pub fn paper() -> Self {
        AcceleratorConfig {
            array: ArrayConfig::paper(),
            frequency_hz: 500.0e6,
            energy: EnergyModel::table_ii(),
        }
    }

    /// Converts a cycle count to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let cfg = AcceleratorConfig::paper();
        assert_eq!(cfg.array.total_pes(), 256);
        assert_eq!(cfg.frequency_hz, 500.0e6);
        assert_eq!(cfg.energy.word_bits, 16);
    }

    #[test]
    fn cycles_to_seconds() {
        let cfg = AcceleratorConfig::paper();
        assert!((cfg.cycles_to_seconds(500_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.cycles_to_seconds(0), 0.0);
    }
}
