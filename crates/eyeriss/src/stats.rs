//! Per-layer and per-network execution statistics.

use ganax_energy::{EnergyBreakdown, EventCounts};
use serde::Serialize;

/// Execution statistics of one layer on one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerStats {
    /// Layer name.
    pub name: String,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Wall-clock cycles.
    pub cycles: u64,
    /// Dense MACs of the layer (zeros included).
    pub dense_macs: u64,
    /// Consequential MACs of the layer.
    pub consequential_macs: u64,
    /// Activity counts charged to the energy model.
    pub counts: EventCounts,
    /// Energy broken down by microarchitectural unit.
    pub energy: EnergyBreakdown,
    /// PE utilization over the layer's schedule (consequential work only).
    pub utilization: f64,
}

impl LayerStats {
    /// Total energy of the layer in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

/// Execution statistics of a whole network on one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NetworkStats {
    /// Network name.
    pub network: String,
    /// Accelerator name (for reporting).
    pub accelerator: &'static str,
    /// Per-layer statistics in execution order.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Total cycles across all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total activity counts across all layers.
    pub fn total_counts(&self) -> EventCounts {
        self.layers.iter().map(|l| l.counts).sum()
    }

    /// Total energy across all layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.layers.iter().map(|l| l.energy).sum()
    }

    /// Cycle-weighted average PE utilization (Figure 11's metric).
    pub fn average_utilization(&self) -> f64 {
        let total_cycles = self.total_cycles();
        if total_cycles == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / total_cycles as f64
    }

    /// Cycles spent in transposed-convolution layers.
    pub fn tconv_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_tconv)
            .map(|l| l.cycles)
            .sum()
    }

    /// Energy spent in transposed-convolution layers.
    pub fn tconv_energy_pj(&self) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.is_tconv)
            .map(|l| l.energy.total_pj())
            .sum()
    }

    /// Finds a layer's statistics by name.
    pub fn layer(&self, name: &str) -> Option<&LayerStats> {
        self.layers.iter().find(|l| l.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: u64, is_tconv: bool, util: f64) -> LayerStats {
        LayerStats {
            name: name.to_string(),
            is_tconv,
            cycles,
            dense_macs: cycles * 10,
            consequential_macs: cycles * 5,
            counts: EventCounts {
                alu_ops: cycles,
                ..EventCounts::default()
            },
            energy: EnergyBreakdown {
                pe_pj: cycles as f64,
                ..EnergyBreakdown::default()
            },
            utilization: util,
        }
    }

    fn stats() -> NetworkStats {
        NetworkStats {
            network: "test".into(),
            accelerator: "EYERISS",
            layers: vec![
                layer("conv1", 100, false, 0.9),
                layer("tconv1", 300, true, 0.3),
            ],
        }
    }

    #[test]
    fn totals_sum_layers() {
        let s = stats();
        assert_eq!(s.total_cycles(), 400);
        assert_eq!(s.total_counts().alu_ops, 400);
        assert_eq!(s.total_energy().total_pj(), 400.0);
        assert_eq!(s.tconv_cycles(), 300);
        assert_eq!(s.tconv_energy_pj(), 300.0);
    }

    #[test]
    fn average_utilization_is_cycle_weighted() {
        let s = stats();
        let expected = (0.9 * 100.0 + 0.3 * 300.0) / 400.0;
        assert!((s.average_utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn layer_lookup_by_name() {
        let s = stats();
        assert!(s.layer("conv1").is_some());
        assert!(s.layer("missing").is_none());
        assert_eq!(s.layer("tconv1").unwrap().total_energy_pj(), 300.0);
    }

    #[test]
    fn empty_stats_have_zero_utilization() {
        let s = NetworkStats {
            network: "empty".into(),
            accelerator: "GANAX",
            layers: vec![],
        };
        assert_eq!(s.average_utilization(), 0.0);
        assert_eq!(s.total_cycles(), 0);
    }
}
