//! An Eyeriss-style row-stationary baseline accelerator model.
//!
//! The GANAX paper compares against EYERISS [Chen et al., ISCA 2016]: a 16 × 16
//! spatial array running a row-stationary dataflow with zero gating (a PE that
//! sees a zero operand suppresses the arithmetic to save energy, but still
//! spends the cycle). When the baseline executes a *transposed* convolution it
//! has no choice but to run the conventional convolution dataflow over the
//! zero-inserted input: every inserted zero costs a cycle and most of an
//! operand fetch, which is exactly the inefficiency GANAX removes.
//!
//! This crate provides that baseline: per-layer and per-network cycle counts,
//! activity counts and Table II energy, computed from the same
//! [`ScheduleEstimate`](ganax_dataflow::ScheduleEstimate) machinery the GANAX
//! model uses — only the dataflow mode differs.
//!
//! # Example
//!
//! ```
//! use ganax_eyeriss::EyerissModel;
//! use ganax_models::zoo;
//!
//! let model = EyerissModel::paper();
//! let stats = model.run_network(&zoo::dcgan().generator);
//! assert!(stats.total_cycles() > 0);
//! assert!(stats.total_energy().total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod model;
mod stats;
mod traffic;

pub use config::AcceleratorConfig;
pub use model::EyerissModel;
pub use stats::{LayerStats, NetworkStats};
pub use traffic::{MemoryTraffic, TrafficModel};
