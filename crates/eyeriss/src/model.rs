//! The Eyeriss baseline model: conventional dataflow with zero gating.

use ganax_dataflow::{DataflowMode, LayerGeometry, ScheduleEstimate};
use ganax_models::{Layer, Network};

use crate::config::AcceleratorConfig;
use crate::stats::{LayerStats, NetworkStats};
use crate::traffic::TrafficModel;

/// The Eyeriss-style baseline accelerator.
///
/// It runs every layer — conventional or transposed — with the conventional
/// convolution dataflow. Transposed convolutions are executed densely over the
/// zero-inserted input: zero-gating saves most of the arithmetic energy for
/// the inserted zeros, but each one still costs a cycle and its operand
/// traffic, which is where GANAX's advantage comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyerissModel {
    config: AcceleratorConfig,
}

impl EyerissModel {
    /// Creates the baseline with an explicit configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        EyerissModel { config }
    }

    /// Creates the baseline with the paper's configuration.
    pub fn paper() -> Self {
        Self::new(AcceleratorConfig::paper())
    }

    /// The configuration in use.
    pub fn config(&self) -> AcceleratorConfig {
        self.config
    }

    /// Runs one layer and returns its statistics.
    pub fn run_layer(&self, layer: &Layer) -> LayerStats {
        let geometry = LayerGeometry::for_layer(layer);
        let schedule =
            ScheduleEstimate::estimate(&geometry, self.config.array, DataflowMode::Conventional);
        let traffic = TrafficModel::layer_traffic(&geometry, &schedule, DataflowMode::Conventional);

        // Zero gating: consequential MACs pay the full PE energy, the rest are
        // gated (detected and suppressed) but still occupy their cycle.
        let full_ops = geometry.consequential_macs;
        let gated_ops = geometry.dense_macs - geometry.consequential_macs;
        // The baseline runs in pure SIMD mode: one global µop fetch per pass,
        // no local µop buffers.
        let global_uop_fetches = schedule.passes;
        let counts =
            TrafficModel::to_event_counts(&traffic, full_ops, gated_ops, 0, global_uop_fetches);
        let energy = self.config.energy.energy(&counts);

        LayerStats {
            name: layer.name.clone(),
            is_tconv: layer.is_tconv(),
            cycles: schedule.schedule_cycles,
            dense_macs: geometry.dense_macs,
            consequential_macs: geometry.consequential_macs,
            counts,
            energy,
            utilization: schedule.utilization(self.config.array),
        }
    }

    /// Runs a whole network and returns its statistics.
    pub fn run_network(&self, network: &Network) -> NetworkStats {
        NetworkStats {
            network: network.name().to_string(),
            accelerator: "EYERISS",
            layers: network.layers().iter().map(|l| self.run_layer(l)).collect(),
        }
    }
}

impl Default for EyerissModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::zoo;

    #[test]
    fn conv_layers_have_no_gated_ops() {
        let model = EyerissModel::paper();
        let dcgan = zoo::dcgan();
        let stats = model.run_network(&dcgan.discriminator);
        for layer in &stats.layers {
            assert_eq!(layer.counts.gated_ops, 0, "{}", layer.name);
            assert_eq!(layer.dense_macs, layer.consequential_macs);
        }
    }

    #[test]
    fn tconv_layers_spend_cycles_on_inserted_zeros() {
        let model = EyerissModel::paper();
        let dcgan = zoo::dcgan();
        let stats = model.run_network(&dcgan.generator);
        let tconv = stats
            .layers
            .iter()
            .find(|l| l.is_tconv)
            .expect("generator has tconv layers");
        assert!(tconv.counts.gated_ops > 0);
        assert!(tconv.counts.gated_ops > tconv.counts.alu_ops);
        // Utilization suffers accordingly.
        assert!(
            tconv.utilization < 0.5,
            "utilization = {}",
            tconv.utilization
        );
    }

    #[test]
    fn discriminator_utilization_is_high() {
        let model = EyerissModel::paper();
        let stats = model.run_network(&zoo::dcgan().discriminator);
        assert!(
            stats.average_utilization() > 0.6,
            "utilization = {}",
            stats.average_utilization()
        );
    }

    #[test]
    fn generator_energy_exceeds_zero() {
        let model = EyerissModel::paper();
        let stats = model.run_network(&zoo::dcgan().generator);
        let energy = stats.total_energy();
        assert!(energy.pe_pj > 0.0);
        assert!(energy.register_file_pj > 0.0);
        assert!(energy.dram_pj > 0.0);
        assert!(energy.global_buffer_pj > 0.0);
        assert!(energy.noc_pj > 0.0);
    }

    #[test]
    fn cycles_scale_with_model_size() {
        let model = EyerissModel::paper();
        let dcgan = model.run_network(&zoo::dcgan().generator).total_cycles();
        let three_d = model
            .run_network(&zoo::three_d_gan().generator)
            .total_cycles();
        // The volumetric 3D-GAN generator is far more expensive than DCGAN's.
        assert!(three_d > dcgan);
    }

    #[test]
    fn run_layer_matches_network_totals() {
        let model = EyerissModel::paper();
        let gen = zoo::dcgan().generator;
        let per_layer: u64 = gen.layers().iter().map(|l| model.run_layer(l).cycles).sum();
        assert_eq!(per_layer, model.run_network(&gen).total_cycles());
    }
}
