//! First-order memory-traffic model shared by both accelerator models.
//!
//! The paper's evaluation charges every data movement against the Table II
//! costs. This module derives the per-layer movement counts from the layer
//! geometry and the schedule estimate using first-order, documented formulas —
//! the same formulas for both accelerators, so that the *relative* results
//! depend only on how many operations and operand fetches each dataflow
//! actually performs:
//!
//! * **Register file**: two operand reads and one partial-sum update per
//!   executed (or zero-gated) MAC.
//! * **NoC**: one transfer per horizontal partial-sum accumulation hop plus a
//!   one-time distribution of the filter weights down the array.
//! * **Global buffer**: every input row is staged once per (vertical) kernel
//!   tap that consumes it, weights are staged once, outputs written once.
//! * **DRAM**: inputs, weights and outputs move on/off chip once. The baseline
//!   cannot perform zero insertion on the fly (no such hardware exists in a
//!   conventional convolution accelerator), so for transposed convolutions it
//!   fetches the *expanded* input from DRAM; GANAX fetches the original one.

use ganax_dataflow::{DataflowMode, LayerGeometry, ScheduleEstimate};
use ganax_energy::EventCounts;

/// Which operands move between the memory levels for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTraffic {
    /// Words read from DRAM.
    pub dram_reads: u64,
    /// Words written to DRAM.
    pub dram_writes: u64,
    /// Words read from the global on-chip buffer.
    pub global_buffer_reads: u64,
    /// Words written to the global on-chip buffer.
    pub global_buffer_writes: u64,
    /// Register-file reads.
    pub register_file_reads: u64,
    /// Register-file writes.
    pub register_file_writes: u64,
    /// Inter-PE word transfers.
    pub inter_pe_transfers: u64,
}

/// Derives memory traffic for a layer under a given dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficModel;

impl TrafficModel {
    /// Computes the traffic of one layer.
    pub fn layer_traffic(
        geometry: &LayerGeometry,
        schedule: &ScheduleEstimate,
        mode: DataflowMode,
    ) -> MemoryTraffic {
        let input_words = geometry.input.volume() as u64;
        let output_words = geometry.output.volume() as u64;
        let weight_words = Self::weight_words(geometry);
        // MACs that actually occupy the datapath (dense for the conventional
        // dataflow, consequential for the reorganized one).
        let executed = schedule.occupied_pe_cycles;

        // DRAM: the conventional dataflow must stream the zero-inserted input
        // (a conventional convolution accelerator has no zero-insertion
        // hardware); the reorganized dataflow streams the original input.
        let effective_input = match (mode, geometry.is_tconv) {
            (DataflowMode::Conventional, true) => Self::expanded_input_words(geometry),
            _ => input_words,
        };
        let dram_reads = effective_input + weight_words;
        let dram_writes = output_words;

        // Global buffer: inputs staged once per vertical kernel tap that reads
        // them, weights staged once, outputs written through once.
        let taps_per_input_row = match mode {
            DataflowMode::Conventional => geometry.dense_nodes_per_row() as u64,
            DataflowMode::Reorganized => {
                // Average consequential nodes per output row.
                let groups = geometry.phase_groups();
                let rows: u64 = groups.iter().map(|g| g.num_rows).sum();
                let weighted: u64 = groups
                    .iter()
                    .map(|g| g.num_rows * g.consequential_nodes as u64)
                    .sum();
                if rows == 0 {
                    1
                } else {
                    (weighted / rows).max(1)
                }
            }
        };
        let global_buffer_reads = effective_input * taps_per_input_row + weight_words;
        let global_buffer_writes = output_words;

        // Register files: two operand reads and one partial-sum update per
        // executed MAC, plus the final output write per element.
        let register_file_reads = 2 * executed;
        let register_file_writes = executed + output_words;

        // NoC: horizontal accumulation plus one-time weight distribution.
        let inter_pe_transfers = schedule.accumulation_transfers + weight_words;

        MemoryTraffic {
            dram_reads,
            dram_writes,
            global_buffer_reads,
            global_buffer_writes,
            register_file_reads,
            register_file_writes,
            inter_pe_transfers,
        }
    }

    /// Number of weight words of a layer.
    pub fn weight_words(geometry: &LayerGeometry) -> u64 {
        if geometry.is_projection {
            geometry.input.volume() as u64 * geometry.output.volume() as u64
        } else {
            geometry.output.channels as u64
                * geometry.input.channels as u64
                * geometry.kernel.0 as u64
                * geometry.kernel.1 as u64
                * geometry.kernel.2 as u64
        }
    }

    /// Volume of the zero-inserted input of a transposed convolution.
    pub fn expanded_input_words(geometry: &LayerGeometry) -> u64 {
        // The expanded extent per axis is output extent + kernel - 1 (stride-1
        // sliding); channels are unchanged.
        let d = geometry.output.depth + geometry.kernel.0 - 1;
        let h = geometry.output.height + geometry.kernel.1 - 1;
        let w = geometry.output.width + geometry.kernel.2 - 1;
        (geometry.input.channels * d * h * w) as u64
    }

    /// Converts traffic plus datapath activity into Table II event counts.
    pub fn to_event_counts(
        traffic: &MemoryTraffic,
        full_ops: u64,
        gated_ops: u64,
        local_uop_fetches: u64,
        global_uop_fetches: u64,
    ) -> EventCounts {
        EventCounts {
            alu_ops: full_ops,
            gated_ops,
            register_file_reads: traffic.register_file_reads,
            register_file_writes: traffic.register_file_writes,
            inter_pe_transfers: traffic.inter_pe_transfers,
            global_buffer_reads: traffic.global_buffer_reads,
            global_buffer_writes: traffic.global_buffer_writes,
            dram_reads: traffic.dram_reads,
            dram_writes: traffic.dram_writes,
            local_uop_fetches,
            global_uop_fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_dataflow::ArrayConfig;
    use ganax_models::{Activation, Layer};
    use ganax_tensor::{ConvParams, Shape};

    fn tconv_geometry() -> LayerGeometry {
        LayerGeometry::for_layer(
            &Layer::conv(
                "tconv",
                Shape::new_2d(64, 8, 8),
                32,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .unwrap(),
        )
    }

    #[test]
    fn conventional_tconv_reads_expanded_input_from_dram() {
        let geo = tconv_geometry();
        let array = ArrayConfig::paper();
        let conv_sched = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let ganax_sched = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        let conv = TrafficModel::layer_traffic(&geo, &conv_sched, DataflowMode::Conventional);
        let ganax = TrafficModel::layer_traffic(&geo, &ganax_sched, DataflowMode::Reorganized);
        assert!(conv.dram_reads > ganax.dram_reads);
        // Both write the same output volume.
        assert_eq!(conv.dram_writes, ganax.dram_writes);
    }

    #[test]
    fn register_file_traffic_scales_with_executed_macs() {
        let geo = tconv_geometry();
        let array = ArrayConfig::paper();
        let conv_sched = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let conv = TrafficModel::layer_traffic(&geo, &conv_sched, DataflowMode::Conventional);
        assert_eq!(conv.register_file_reads, 2 * geo.dense_macs);
        assert_eq!(
            conv.register_file_writes,
            geo.dense_macs + geo.output.volume() as u64
        );
    }

    #[test]
    fn reorganized_traffic_is_smaller_on_every_channel() {
        let geo = tconv_geometry();
        let array = ArrayConfig::paper();
        let conv_sched = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let ganax_sched = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        let conv = TrafficModel::layer_traffic(&geo, &conv_sched, DataflowMode::Conventional);
        let ganax = TrafficModel::layer_traffic(&geo, &ganax_sched, DataflowMode::Reorganized);
        assert!(ganax.register_file_reads < conv.register_file_reads);
        assert!(ganax.global_buffer_reads < conv.global_buffer_reads);
        assert!(ganax.inter_pe_transfers <= conv.inter_pe_transfers);
        assert!(ganax.dram_reads < conv.dram_reads);
    }

    #[test]
    fn weight_words_matches_filter_volume() {
        let geo = tconv_geometry();
        assert_eq!(TrafficModel::weight_words(&geo), 32 * 64 * 16);
    }

    #[test]
    fn expanded_input_is_larger_than_original() {
        let geo = tconv_geometry();
        assert!(TrafficModel::expanded_input_words(&geo) > geo.input.volume() as u64);
    }

    #[test]
    fn event_count_conversion_copies_fields() {
        let traffic = MemoryTraffic {
            dram_reads: 10,
            dram_writes: 5,
            global_buffer_reads: 20,
            global_buffer_writes: 6,
            register_file_reads: 100,
            register_file_writes: 60,
            inter_pe_transfers: 8,
        };
        let counts = TrafficModel::to_event_counts(&traffic, 50, 25, 3, 2);
        assert_eq!(counts.alu_ops, 50);
        assert_eq!(counts.gated_ops, 25);
        assert_eq!(counts.dram_reads, 10);
        assert_eq!(counts.global_buffer_reads, 20);
        assert_eq!(counts.local_uop_fetches, 3);
        assert_eq!(counts.global_uop_fetches, 2);
    }
}
