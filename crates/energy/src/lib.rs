//! Energy (Table II) and area (Table III) cost models for the GANAX reproduction.
//!
//! The paper derives per-access energies from TSMC 45 nm synthesis, CACTI-P and
//! the Micron DDR4 power calculator, and publishes them as Table II; per-unit
//! areas are published as Table III. Both accelerator models in this repository
//! (the Eyeriss-style baseline and GANAX) charge their activity against the
//! same constants, exactly as the paper's simulator does, so relative results
//! depend only on the dataflows being compared.
//!
//! # Example
//!
//! ```
//! use ganax_energy::{EnergyModel, EventCounts};
//!
//! let model = EnergyModel::table_ii();
//! let mut counts = EventCounts::default();
//! counts.alu_ops = 1_000;
//! counts.register_file_reads = 2_000;
//! let breakdown = model.energy(&counts);
//! assert!(breakdown.pe_pj > 0.0 && breakdown.register_file_pj > 0.0);
//! assert_eq!(breakdown.dram_pj, 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod counts;
mod model;

pub use area::{AreaModel, PeAreaBreakdown};
pub use counts::{EnergyBreakdown, EnergyCategory, EventCounts};
pub use model::EnergyModel;
