//! The Table III area model (TSMC 45 nm).
//!
//! Table III lists the silicon area of every hardware unit in a GANAX
//! processing engine and at the accelerator level. The Eyeriss-style baseline
//! shares every unit except the ones GANAX adds for MIMD-SIMD, decoupled
//! access-execute execution: the strided µindex generators, the per-PV local
//! µop buffers, the global µop buffer and the global instruction buffer.
//! Removing exactly those units from the GANAX total yields the baseline area
//! and the ≈7.8 % overhead the paper reports.

use serde::{Deserialize, Serialize};

/// Area of the units inside one processing engine, in µm² (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeAreaBreakdown {
    /// Input register (12 × 16 bits).
    pub input_register: f64,
    /// Partial-sum register (24 × 16 bits).
    pub partial_sum_register: f64,
    /// Weight SRAM (224 × 16 bits).
    pub weight_sram: f64,
    /// 16-bit fixed-point multiply-and-accumulate unit.
    pub mac: f64,
    /// Non-linear function lookup table.
    pub non_linear: f64,
    /// Strided µindex generators (GANAX-specific).
    pub strided_index_generator: f64,
    /// Local µop buffer share of this PE (GANAX-specific).
    pub local_uop_buffer: f64,
    /// Input/output FIFOs (8 × 32 bits).
    pub io_fifos: f64,
    /// PE controller.
    pub controller: f64,
}

impl PeAreaBreakdown {
    /// The Table III values.
    pub fn table_iii() -> Self {
        PeAreaBreakdown {
            input_register: 766.9,
            partial_sum_register: 1_533.7,
            weight_sram: 14_378.7,
            mac: 2_875.7,
            non_linear: 95.9,
            strided_index_generator: 479.33,
            local_uop_buffer: 958.6,
            io_fifos: 5_026.8,
            controller: 3_356.0,
        }
    }

    /// Total area of one GANAX PE.
    pub fn total(&self) -> f64 {
        self.input_register
            + self.partial_sum_register
            + self.weight_sram
            + self.mac
            + self.non_linear
            + self.strided_index_generator
            + self.local_uop_buffer
            + self.io_fifos
            + self.controller
    }

    /// Area of the GANAX-specific units within one PE.
    pub fn ganax_specific(&self) -> f64 {
        self.strided_index_generator + self.local_uop_buffer
    }

    /// Named (unit, area) pairs in Table III order.
    pub fn entries(&self) -> [(&'static str, f64); 9] {
        [
            ("Input Register", self.input_register),
            ("Partial Sum Register", self.partial_sum_register),
            ("Weight SRAM", self.weight_sram),
            ("Multiply-and-Accumulate", self.mac),
            ("Non-Linear Function", self.non_linear),
            ("Strided uIndex Generator", self.strided_index_generator),
            ("Local uOp Buffer", self.local_uop_buffer),
            ("I/O FIFOs", self.io_fifos),
            ("PE Controller", self.controller),
        ]
    }
}

/// Accelerator-level area model (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Per-PE unit areas.
    pub pe: PeAreaBreakdown,
    /// Number of PEs (16 × 16 in the paper).
    pub num_pes: usize,
    /// Global µop buffer (32 × 64 bits), µm² (GANAX-specific).
    pub global_uop_buffer: f64,
    /// Global data buffer (108 KB), µm².
    pub global_data_buffer: f64,
    /// Global instruction buffer (27 KB), µm² (GANAX-specific).
    pub global_instruction_buffer: f64,
    /// NoC and configuration buffers, µm².
    pub noc_and_config: f64,
    /// Global controller, µm².
    pub global_controller: f64,
}

impl AreaModel {
    /// The Table III configuration: 256 PEs plus the global units.
    pub fn table_iii() -> Self {
        AreaModel {
            pe: PeAreaBreakdown::table_iii(),
            num_pes: 256,
            global_uop_buffer: 9_585.8,
            global_data_buffer: 1_102_366.9,
            global_instruction_buffer: 275_591.7,
            noc_and_config: 115_029.6,
            global_controller: 19_171.6,
        }
    }

    /// Area of the full PE array.
    pub fn pe_array_area(&self) -> f64 {
        self.pe.total() * self.num_pes as f64
    }

    /// Total GANAX accelerator area.
    pub fn ganax_total(&self) -> f64 {
        self.pe_array_area()
            + self.global_uop_buffer
            + self.global_data_buffer
            + self.global_instruction_buffer
            + self.noc_and_config
            + self.global_controller
    }

    /// Total area of the GANAX-specific additions (per-PE index generators and
    /// local µop buffers, plus the global µop and instruction buffers).
    pub fn ganax_additions(&self) -> f64 {
        self.pe.ganax_specific() * self.num_pes as f64
            + self.global_uop_buffer
            + self.global_instruction_buffer
    }

    /// Area of the Eyeriss-style baseline: the GANAX total minus the
    /// GANAX-specific units.
    pub fn eyeriss_total(&self) -> f64 {
        self.ganax_total() - self.ganax_additions()
    }

    /// Fractional area overhead of GANAX over the baseline (≈7.8 % in the paper).
    pub fn overhead_fraction(&self) -> f64 {
        self.ganax_additions() / self.eyeriss_total()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_total_matches_table_iii() {
        let pe = PeAreaBreakdown::table_iii();
        // Table III reports 29 471.6 um^2 per PE.
        assert!(
            (pe.total() - 29_471.6).abs() < 1.0,
            "total = {}",
            pe.total()
        );
    }

    #[test]
    fn pe_entries_sum_to_total() {
        let pe = PeAreaBreakdown::table_iii();
        let sum: f64 = pe.entries().iter().map(|(_, a)| a).sum();
        assert!((sum - pe.total()).abs() < 1e-9);
    }

    #[test]
    fn array_area_matches_table_iii() {
        let model = AreaModel::table_iii();
        // Table III reports 7 544 466.2 um^2 for the 16x16 array.
        assert!(
            (model.pe_array_area() - 7_544_466.2).abs() / 7_544_466.2 < 0.001,
            "array = {}",
            model.pe_array_area()
        );
    }

    #[test]
    fn ganax_total_matches_table_iii() {
        let model = AreaModel::table_iii();
        // Table III reports 9 066 211.8 um^2 total.
        assert!(
            (model.ganax_total() - 9_066_211.8).abs() / 9_066_211.8 < 0.001,
            "total = {}",
            model.ganax_total()
        );
    }

    #[test]
    fn overhead_is_about_7_8_percent() {
        let model = AreaModel::table_iii();
        let overhead = model.overhead_fraction();
        assert!(
            overhead > 0.070 && overhead < 0.085,
            "overhead = {overhead}"
        );
    }

    #[test]
    fn eyeriss_is_smaller_than_ganax() {
        let model = AreaModel::table_iii();
        assert!(model.eyeriss_total() < model.ganax_total());
        assert!(model.eyeriss_total() > 0.0);
    }
}
