//! Event counts and per-category energy breakdowns.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::Serialize;

/// Raw activity counts accumulated by an accelerator model while executing a
/// layer or a whole network. Counts are in *word-sized events* (one event = one
/// 16-bit operand or one arithmetic operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct EventCounts {
    /// Full arithmetic operations executed by PE ALUs (consequential MACs,
    /// additions, activations…).
    pub alu_ops: u64,
    /// Zero-gated operations: cycles where an Eyeriss-style PE detected a zero
    /// operand and suppressed the arithmetic (still costs gating energy).
    pub gated_ops: u64,
    /// Register-file (PE-local scratchpad) reads.
    pub register_file_reads: u64,
    /// Register-file (PE-local scratchpad) writes.
    pub register_file_writes: u64,
    /// Word transfers between neighbouring PEs (partial-sum accumulation and
    /// filter-row forwarding).
    pub inter_pe_transfers: u64,
    /// Global on-chip data-buffer reads.
    pub global_buffer_reads: u64,
    /// Global on-chip data-buffer writes.
    pub global_buffer_writes: u64,
    /// Off-chip DRAM reads.
    pub dram_reads: u64,
    /// Off-chip DRAM writes.
    pub dram_writes: u64,
    /// Fetches from the per-PV local µop buffers.
    pub local_uop_fetches: u64,
    /// Fetches from the global µop buffer.
    pub global_uop_fetches: u64,
}

impl EventCounts {
    /// Total arithmetic-related events (full plus gated operations).
    pub fn total_ops(&self) -> u64 {
        self.alu_ops + self.gated_ops
    }

    /// Total off-chip word accesses.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// Total on-chip global-buffer word accesses (data plus µops).
    pub fn global_buffer_accesses(&self) -> u64 {
        self.global_buffer_reads
            + self.global_buffer_writes
            + self.local_uop_fetches
            + self.global_uop_fetches
    }

    /// Field-wise checked subtraction: `None` if any field of `rhs` exceeds
    /// the corresponding field of `self`. Use this to take activity deltas
    /// between two snapshots that may not be ordered.
    pub fn checked_sub(self, rhs: EventCounts) -> Option<EventCounts> {
        Some(EventCounts {
            alu_ops: self.alu_ops.checked_sub(rhs.alu_ops)?,
            gated_ops: self.gated_ops.checked_sub(rhs.gated_ops)?,
            register_file_reads: self
                .register_file_reads
                .checked_sub(rhs.register_file_reads)?,
            register_file_writes: self
                .register_file_writes
                .checked_sub(rhs.register_file_writes)?,
            inter_pe_transfers: self
                .inter_pe_transfers
                .checked_sub(rhs.inter_pe_transfers)?,
            global_buffer_reads: self
                .global_buffer_reads
                .checked_sub(rhs.global_buffer_reads)?,
            global_buffer_writes: self
                .global_buffer_writes
                .checked_sub(rhs.global_buffer_writes)?,
            dram_reads: self.dram_reads.checked_sub(rhs.dram_reads)?,
            dram_writes: self.dram_writes.checked_sub(rhs.dram_writes)?,
            local_uop_fetches: self.local_uop_fetches.checked_sub(rhs.local_uop_fetches)?,
            global_uop_fetches: self
                .global_uop_fetches
                .checked_sub(rhs.global_uop_fetches)?,
        })
    }
}

impl Add for EventCounts {
    type Output = EventCounts;

    fn add(self, rhs: EventCounts) -> EventCounts {
        EventCounts {
            alu_ops: self.alu_ops + rhs.alu_ops,
            gated_ops: self.gated_ops + rhs.gated_ops,
            register_file_reads: self.register_file_reads + rhs.register_file_reads,
            register_file_writes: self.register_file_writes + rhs.register_file_writes,
            inter_pe_transfers: self.inter_pe_transfers + rhs.inter_pe_transfers,
            global_buffer_reads: self.global_buffer_reads + rhs.global_buffer_reads,
            global_buffer_writes: self.global_buffer_writes + rhs.global_buffer_writes,
            dram_reads: self.dram_reads + rhs.dram_reads,
            dram_writes: self.dram_writes + rhs.dram_writes,
            local_uop_fetches: self.local_uop_fetches + rhs.local_uop_fetches,
            global_uop_fetches: self.global_uop_fetches + rhs.global_uop_fetches,
        }
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        *self = *self + rhs;
    }
}

impl Sum for EventCounts {
    fn sum<I: Iterator<Item = EventCounts>>(iter: I) -> EventCounts {
        iter.fold(EventCounts::default(), Add::add)
    }
}

impl Sub for EventCounts {
    type Output = EventCounts;

    /// Field-wise subtraction, used to take activity deltas between two
    /// monotonically growing counter snapshots (`after - before`).
    ///
    /// # Panics
    /// Panics in debug builds if any field underflows (snapshots taken in the
    /// wrong order); see [`EventCounts::checked_sub`] for a fallible form.
    fn sub(self, rhs: EventCounts) -> EventCounts {
        EventCounts {
            alu_ops: self.alu_ops - rhs.alu_ops,
            gated_ops: self.gated_ops - rhs.gated_ops,
            register_file_reads: self.register_file_reads - rhs.register_file_reads,
            register_file_writes: self.register_file_writes - rhs.register_file_writes,
            inter_pe_transfers: self.inter_pe_transfers - rhs.inter_pe_transfers,
            global_buffer_reads: self.global_buffer_reads - rhs.global_buffer_reads,
            global_buffer_writes: self.global_buffer_writes - rhs.global_buffer_writes,
            dram_reads: self.dram_reads - rhs.dram_reads,
            dram_writes: self.dram_writes - rhs.dram_writes,
            local_uop_fetches: self.local_uop_fetches - rhs.local_uop_fetches,
            global_uop_fetches: self.global_uop_fetches - rhs.global_uop_fetches,
        }
    }
}

impl SubAssign for EventCounts {
    fn sub_assign(&mut self, rhs: EventCounts) {
        *self = *self - rhs;
    }
}

/// The five microarchitectural energy categories used by Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Arithmetic (PE datapaths, including the strided µindex generators).
    Pe,
    /// PE-local register files / scratchpads.
    RegisterFile,
    /// Inter-PE network-on-chip traffic.
    Noc,
    /// Global on-chip buffers (data and µop).
    GlobalBuffer,
    /// Off-chip DRAM.
    Dram,
}

impl EnergyCategory {
    /// All categories in Figure 10's legend order.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::Pe,
        EnergyCategory::RegisterFile,
        EnergyCategory::Noc,
        EnergyCategory::GlobalBuffer,
        EnergyCategory::Dram,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Pe => "PE",
            EnergyCategory::RegisterFile => "RegF",
            EnergyCategory::Noc => "NoC",
            EnergyCategory::GlobalBuffer => "GBuf",
            EnergyCategory::Dram => "DRAM",
        }
    }
}

/// Energy per category, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct EnergyBreakdown {
    /// Arithmetic energy.
    pub pe_pj: f64,
    /// Register-file energy.
    pub register_file_pj: f64,
    /// Inter-PE NoC energy.
    pub noc_pj: f64,
    /// Global-buffer energy (data and µops).
    pub global_buffer_pj: f64,
    /// DRAM energy.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy across all categories.
    pub fn total_pj(&self) -> f64 {
        self.pe_pj + self.register_file_pj + self.noc_pj + self.global_buffer_pj + self.dram_pj
    }

    /// Energy of a single category.
    pub fn category(&self, category: EnergyCategory) -> f64 {
        match category {
            EnergyCategory::Pe => self.pe_pj,
            EnergyCategory::RegisterFile => self.register_file_pj,
            EnergyCategory::Noc => self.noc_pj,
            EnergyCategory::GlobalBuffer => self.global_buffer_pj,
            EnergyCategory::Dram => self.dram_pj,
        }
    }

    /// Per-category fractions of the total (all zero when the total is zero).
    pub fn fractions(&self) -> [(EnergyCategory, f64); 5] {
        let total = self.total_pj();
        EnergyCategory::ALL.map(|c| {
            let frac = if total == 0.0 {
                0.0
            } else {
                self.category(c) / total
            };
            (c, frac)
        })
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            pe_pj: self.pe_pj + rhs.pe_pj,
            register_file_pj: self.register_file_pj + rhs.register_file_pj,
            noc_pj: self.noc_pj + rhs.noc_pj,
            global_buffer_pj: self.global_buffer_pj + rhs.global_buffer_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts(seed: u64) -> EventCounts {
        EventCounts {
            alu_ops: seed,
            gated_ops: seed / 2,
            register_file_reads: seed * 2,
            register_file_writes: seed,
            inter_pe_transfers: seed / 3,
            global_buffer_reads: seed / 4,
            global_buffer_writes: seed / 5,
            dram_reads: seed / 10,
            dram_writes: seed / 20,
            local_uop_fetches: seed / 7,
            global_uop_fetches: seed / 9,
        }
    }

    #[test]
    fn counts_addition_is_field_wise() {
        let a = sample_counts(100);
        let b = sample_counts(40);
        let sum = a + b;
        assert_eq!(sum.alu_ops, 140);
        assert_eq!(sum.register_file_reads, 280);
        assert_eq!(sum.dram_writes, a.dram_writes + b.dram_writes);
        let mut c = a;
        c += b;
        assert_eq!(c, sum);
    }

    #[test]
    fn counts_subtraction_recovers_deltas() {
        let before = sample_counts(40);
        let after = sample_counts(40) + sample_counts(25);
        let delta = after - before;
        assert_eq!(delta, sample_counts(25));
        let mut d = after;
        d -= before;
        assert_eq!(d, delta);
        assert_eq!(after.checked_sub(before), Some(delta));
        assert_eq!(before.checked_sub(after), None, "underflow is reported");
    }

    #[test]
    fn counts_sum_over_iterator() {
        let total: EventCounts = (1..=3).map(|i| sample_counts(i * 10)).sum();
        assert_eq!(total.alu_ops, 60);
    }

    #[test]
    fn derived_totals() {
        let c = sample_counts(100);
        assert_eq!(c.total_ops(), 150);
        assert_eq!(c.dram_accesses(), 10 + 5);
        assert_eq!(c.global_buffer_accesses(), 25 + 20 + 14 + 11);
    }

    #[test]
    fn breakdown_total_and_fractions() {
        let b = EnergyBreakdown {
            pe_pj: 10.0,
            register_file_pj: 20.0,
            noc_pj: 5.0,
            global_buffer_pj: 15.0,
            dram_pj: 50.0,
        };
        assert_eq!(b.total_pj(), 100.0);
        let fractions = b.fractions();
        let total: f64 = fractions.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(b.category(EnergyCategory::Dram), 50.0);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        let fractions = EnergyBreakdown::default().fractions();
        assert!(fractions.iter().all(|(_, f)| *f == 0.0));
    }

    #[test]
    fn category_labels_match_figure_10_legend() {
        let labels: Vec<&str> = EnergyCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["PE", "RegF", "NoC", "GBuf", "DRAM"]);
    }

    #[test]
    fn breakdown_addition() {
        let a = EnergyBreakdown {
            pe_pj: 1.0,
            register_file_pj: 2.0,
            noc_pj: 3.0,
            global_buffer_pj: 4.0,
            dram_pj: 5.0,
        };
        let b = a;
        let s: EnergyBreakdown = [a, b].into_iter().sum();
        assert_eq!(s.total_pj(), 30.0);
    }
}
