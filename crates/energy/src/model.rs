//! The Table II energy model.

use serde::{Deserialize, Serialize};

use crate::counts::{EnergyBreakdown, EventCounts};

/// Per-access energy costs, in picojoules per bit (Table II of the paper).
///
/// The PE cost covers one 16-bit fixed-point arithmetic operation *including*
/// the strided µindex generators, as the paper notes under Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per bit of a register-file access (pJ/bit).
    pub register_file_pj_per_bit: f64,
    /// Energy per bit of a 16-bit fixed-point PE operation (pJ/bit).
    pub pe_pj_per_bit: f64,
    /// Energy per bit of an inter-PE (NoC) transfer (pJ/bit).
    pub inter_pe_pj_per_bit: f64,
    /// Energy per bit of a global-buffer access (pJ/bit).
    pub global_buffer_pj_per_bit: f64,
    /// Energy per bit of a DDR4 DRAM access (pJ/bit).
    pub dram_pj_per_bit: f64,
    /// Datapath word width in bits (16-bit fixed point in the paper).
    pub word_bits: u32,
    /// Fraction of a full PE operation's energy spent when a zero-gated MAC is
    /// skipped by clock gating (the operand still has to be inspected). Used by
    /// the Eyeriss baseline's zero-gating model.
    pub gated_op_fraction: f64,
}

impl EnergyModel {
    /// The exact constants of Table II.
    pub fn table_ii() -> Self {
        EnergyModel {
            register_file_pj_per_bit: 0.20,
            pe_pj_per_bit: 0.36,
            inter_pe_pj_per_bit: 0.40,
            global_buffer_pj_per_bit: 1.20,
            dram_pj_per_bit: 15.00,
            word_bits: 16,
            gated_op_fraction: 0.15,
        }
    }

    /// Energy of one full arithmetic operation (pJ).
    pub fn pe_op_pj(&self) -> f64 {
        self.pe_pj_per_bit * self.word_bits as f64
    }

    /// Energy of one zero-gated (skipped) arithmetic operation (pJ).
    pub fn gated_op_pj(&self) -> f64 {
        self.pe_op_pj() * self.gated_op_fraction
    }

    /// Energy of one register-file word access (pJ).
    pub fn register_file_access_pj(&self) -> f64 {
        self.register_file_pj_per_bit * self.word_bits as f64
    }

    /// Energy of transferring one word between neighbouring PEs (pJ).
    pub fn inter_pe_transfer_pj(&self) -> f64 {
        self.inter_pe_pj_per_bit * self.word_bits as f64
    }

    /// Energy of one global-buffer word access (pJ).
    pub fn global_buffer_access_pj(&self) -> f64 {
        self.global_buffer_pj_per_bit * self.word_bits as f64
    }

    /// Energy of one DRAM word access (pJ).
    pub fn dram_access_pj(&self) -> f64 {
        self.dram_pj_per_bit * self.word_bits as f64
    }

    /// Relative cost column of Table II (normalised to a register-file access).
    pub fn relative_costs(&self) -> [(&'static str, f64); 5] {
        let base = self.register_file_pj_per_bit;
        [
            ("Register File Access", self.register_file_pj_per_bit / base),
            ("16-bit Fixed Point PE", self.pe_pj_per_bit / base),
            ("Inter-PE Communication", self.inter_pe_pj_per_bit / base),
            ("Global Buffer Access", self.global_buffer_pj_per_bit / base),
            ("DDR4 Memory Access", self.dram_pj_per_bit / base),
        ]
    }

    /// Charges a set of event counts against the model, producing the
    /// per-category energy breakdown used by Figure 10.
    pub fn energy(&self, counts: &EventCounts) -> EnergyBreakdown {
        let pe =
            counts.alu_ops as f64 * self.pe_op_pj() + counts.gated_ops as f64 * self.gated_op_pj();
        let regf = (counts.register_file_reads + counts.register_file_writes) as f64
            * self.register_file_access_pj();
        let noc = counts.inter_pe_transfers as f64 * self.inter_pe_transfer_pj();
        let gbuf = (counts.global_buffer_reads + counts.global_buffer_writes) as f64
            * self.global_buffer_access_pj()
            + (counts.global_uop_fetches + counts.local_uop_fetches) as f64
                * self.global_buffer_access_pj();
        let dram = (counts.dram_reads + counts.dram_writes) as f64 * self.dram_access_pj();
        EnergyBreakdown {
            pe_pj: pe,
            register_file_pj: regf,
            noc_pj: noc,
            global_buffer_pj: gbuf,
            dram_pj: dram,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_constants() {
        let m = EnergyModel::table_ii();
        assert_eq!(m.register_file_pj_per_bit, 0.20);
        assert_eq!(m.pe_pj_per_bit, 0.36);
        assert_eq!(m.inter_pe_pj_per_bit, 0.40);
        assert_eq!(m.global_buffer_pj_per_bit, 1.20);
        assert_eq!(m.dram_pj_per_bit, 15.00);
        assert_eq!(m.word_bits, 16);
    }

    #[test]
    fn relative_costs_match_table_ii_column() {
        let rel = EnergyModel::table_ii().relative_costs();
        let values: Vec<f64> = rel.iter().map(|(_, v)| *v).collect();
        let expected = [1.0, 1.8, 2.0, 6.0, 75.0];
        for (v, e) in values.iter().zip(expected.iter()) {
            assert!((v - e).abs() < 1e-9, "{v} != {e}");
        }
    }

    #[test]
    fn per_word_costs_scale_with_word_width() {
        let m = EnergyModel::table_ii();
        assert!((m.pe_op_pj() - 0.36 * 16.0).abs() < 1e-12);
        assert!((m.dram_access_pj() - 240.0).abs() < 1e-9);
        let mut wide = m;
        wide.word_bits = 32;
        assert!((wide.pe_op_pj() - 0.36 * 32.0).abs() < 1e-12);
    }

    #[test]
    fn gated_ops_cost_less_than_full_ops() {
        let m = EnergyModel::table_ii();
        assert!(m.gated_op_pj() < m.pe_op_pj());
        assert!(m.gated_op_pj() > 0.0);
    }

    #[test]
    fn energy_charges_each_category() {
        let m = EnergyModel::table_ii();
        let counts = EventCounts {
            alu_ops: 10,
            gated_ops: 20,
            register_file_reads: 30,
            register_file_writes: 10,
            inter_pe_transfers: 5,
            global_buffer_reads: 4,
            global_buffer_writes: 2,
            dram_reads: 1,
            dram_writes: 1,
            local_uop_fetches: 8,
            global_uop_fetches: 2,
        };
        let b = m.energy(&counts);
        assert!((b.pe_pj - (10.0 * m.pe_op_pj() + 20.0 * m.gated_op_pj())).abs() < 1e-9);
        assert!((b.register_file_pj - 40.0 * m.register_file_access_pj()).abs() < 1e-9);
        assert!((b.noc_pj - 5.0 * m.inter_pe_transfer_pj()).abs() < 1e-9);
        assert!((b.global_buffer_pj - 16.0 * m.global_buffer_access_pj()).abs() < 1e-9);
        assert!((b.dram_pj - 2.0 * m.dram_access_pj()).abs() < 1e-9);
        assert!(
            (b.total_pj()
                - (b.pe_pj + b.register_file_pj + b.noc_pj + b.global_buffer_pj + b.dram_pj))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn zero_counts_are_free() {
        let b = EnergyModel::table_ii().energy(&EventCounts::default());
        assert_eq!(b.total_pj(), 0.0);
    }
}
