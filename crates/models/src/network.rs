//! Networks: validated sequences of layers.

use std::fmt;

use ganax_tensor::{ConvParams, Shape};

use crate::layer::{Activation, Layer};
use crate::stats::NetworkOpStats;

/// Errors produced while assembling a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A layer's input shape does not match the previous layer's output shape.
    ShapeChainBroken {
        /// Name of the offending layer.
        layer: String,
        /// Output shape of the previous layer.
        expected: Shape,
        /// Input shape declared by the offending layer.
        actual: Shape,
    },
    /// A layer's convolution geometry is invalid.
    InvalidGeometry {
        /// Name of the offending layer.
        layer: String,
        /// Underlying tensor error description.
        detail: String,
    },
    /// Two layers share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The network has no layers.
    Empty,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ShapeChainBroken {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer `{layer}` expects input {actual} but the previous layer produces {expected}"
            ),
            NetworkError::InvalidGeometry { layer, detail } => {
                write!(f, "layer `{layer}` has invalid geometry: {detail}")
            }
            NetworkError::DuplicateName { name } => {
                write!(f, "duplicate layer name `{name}`")
            }
            NetworkError::Empty => write!(f, "network has no layers"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated feed-forward sequence of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from pre-constructed layers, validating that shapes
    /// chain and names are unique.
    ///
    /// # Errors
    /// Returns a [`NetworkError`] describing the first violated invariant.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for layer in &layers {
            if !names.insert(layer.name.clone()) {
                return Err(NetworkError::DuplicateName {
                    name: layer.name.clone(),
                });
            }
        }
        for pair in layers.windows(2) {
            if pair[1].input != pair[0].output {
                return Err(NetworkError::ShapeChainBroken {
                    layer: pair[1].name.clone(),
                    expected: pair[0].output,
                    actual: pair[1].input,
                });
            }
        }
        Ok(Network {
            name: name.into(),
            layers,
        })
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Shape of the network's input.
    pub fn input_shape(&self) -> Shape {
        self.layers[0].input
    }

    /// Shape of the network's output.
    pub fn output_shape(&self) -> Shape {
        self.layers[self.layers.len() - 1].output
    }

    /// Number of conventional convolution layers.
    pub fn conv_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_conv()).count()
    }

    /// Number of transposed convolution layers.
    pub fn tconv_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_tconv()).count()
    }

    /// Total weight parameters across all layers.
    pub fn weight_count(&self) -> u64 {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Aggregated operation statistics (drives Figure 1).
    pub fn op_stats(&self) -> NetworkOpStats {
        NetworkOpStats::from_layers(&self.layers)
    }
}

/// Incremental builder that chains layer shapes automatically.
///
/// # Example
/// ```
/// use ganax_models::{Activation, NetworkBuilder};
/// use ganax_tensor::{ConvParams, Shape};
///
/// let net = NetworkBuilder::new("toy-generator", Shape::new_2d(100, 1, 1))
///     .projection("project", Shape::new_2d(256, 4, 4), Activation::Relu)
///     .tconv("up1", 128, ConvParams::transposed_2d(4, 2, 1), Activation::Relu)
///     .tconv("up2", 3, ConvParams::transposed_2d(4, 2, 1), Activation::Tanh)
///     .build()
///     .unwrap();
/// assert_eq!(net.tconv_layer_count(), 2);
/// assert_eq!(net.output_shape(), Shape::new_2d(3, 16, 16));
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    current: Shape,
    layers: Vec<Layer>,
    error: Option<NetworkError>,
}

impl NetworkBuilder {
    /// Starts a builder for a network whose input has the given shape.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        NetworkBuilder {
            name: name.into(),
            current: input,
            layers: Vec::new(),
            error: None,
        }
    }

    fn push_conv(
        mut self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        match Layer::conv(name, self.current, out_channels, params, activation) {
            Ok(layer) => {
                self.current = layer.output;
                self.layers.push(layer);
            }
            Err(err) => {
                self.error = Some(NetworkError::InvalidGeometry {
                    layer: name.to_string(),
                    detail: err.to_string(),
                });
            }
        }
        self
    }

    /// Appends a conventional convolution layer.
    pub fn conv(
        self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        debug_assert!(!params.is_transposed(), "use `tconv` for transposed layers");
        self.push_conv(name, out_channels, params, activation)
    }

    /// Appends a transposed convolution layer.
    pub fn tconv(
        self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        debug_assert!(params.is_transposed(), "use `conv` for conventional layers");
        self.push_conv(name, out_channels, params, activation)
    }

    /// Appends a fully-connected projection to an explicit output shape.
    pub fn projection(mut self, name: &str, output: Shape, activation: Activation) -> Self {
        if self.error.is_some() {
            return self;
        }
        let layer = Layer::projection(name, self.current, output, activation);
        self.current = output;
        self.layers.push(layer);
        self
    }

    /// Finalises the network.
    ///
    /// # Errors
    /// Returns the first construction error encountered while building.
    pub fn build(self) -> Result<Network, NetworkError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        Network::new(self.name, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layer(name: &str, input: Shape, out_channels: usize) -> Layer {
        Layer::conv(
            name,
            input,
            out_channels,
            ConvParams::conv_2d(3, 1, 1),
            Activation::Relu,
        )
        .unwrap()
    }

    #[test]
    fn network_validates_shape_chain() {
        let l1 = toy_layer("a", Shape::new_2d(3, 8, 8), 8);
        let l2 = toy_layer("b", Shape::new_2d(8, 8, 8), 16);
        assert!(Network::new("ok", vec![l1.clone(), l2]).is_ok());

        let bad = toy_layer("b", Shape::new_2d(4, 8, 8), 16);
        let err = Network::new("bad", vec![l1, bad]).unwrap_err();
        assert!(matches!(err, NetworkError::ShapeChainBroken { .. }));
    }

    #[test]
    fn network_rejects_duplicate_names() {
        let l1 = toy_layer("same", Shape::new_2d(3, 8, 8), 3);
        let l2 = toy_layer("same", Shape::new_2d(3, 8, 8), 3);
        let err = Network::new("dup", vec![l1, l2]).unwrap_err();
        assert!(matches!(err, NetworkError::DuplicateName { .. }));
    }

    #[test]
    fn network_rejects_empty() {
        assert_eq!(
            Network::new("none", vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn builder_chains_shapes() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(100, 1, 1))
            .projection("project", Shape::new_2d(64, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                32,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 16, ConvParams::conv_2d(3, 1, 1), Activation::Relu)
            .build()
            .unwrap();
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.output_shape(), Shape::new_2d(16, 8, 8));
        assert_eq!(net.conv_layer_count(), 1);
        assert_eq!(net.tconv_layer_count(), 1);
        assert_eq!(net.input_shape(), Shape::new_2d(100, 1, 1));
    }

    #[test]
    fn builder_propagates_geometry_error() {
        let result = NetworkBuilder::new("broken", Shape::new_2d(3, 2, 2))
            .conv("too-big", 8, ConvParams::conv_2d(7, 1, 0), Activation::Relu)
            .build();
        assert!(matches!(result, Err(NetworkError::InvalidGeometry { .. })));
    }

    #[test]
    fn weight_count_sums_layers() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(8, 4, 4))
            .conv("c1", 4, ConvParams::conv_2d(3, 1, 1), Activation::Relu)
            .conv("c2", 2, ConvParams::conv_2d(3, 1, 1), Activation::None)
            .build()
            .unwrap();
        assert_eq!(net.weight_count(), (4 * 8 * 9 + 2 * 4 * 9) as u64);
    }

    #[test]
    fn error_display_is_informative() {
        let err = NetworkError::ShapeChainBroken {
            layer: "up2".into(),
            expected: Shape::new_2d(8, 8, 8),
            actual: Shape::new_2d(4, 8, 8),
        };
        let msg = err.to_string();
        assert!(msg.contains("up2"));
        assert!(msg.contains("8x8x8"));
    }
}
