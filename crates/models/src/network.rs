//! Networks: validated sequences of layers.

use std::fmt;

use ganax_tensor::{ConvParams, Shape};

use crate::layer::{Activation, Layer, LayerOp};
use crate::stats::NetworkOpStats;

/// Errors produced while assembling a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A layer's input shape does not match the previous layer's output shape.
    ShapeChainBroken {
        /// Name of the offending layer.
        layer: String,
        /// Output shape of the previous layer.
        expected: Shape,
        /// Input shape declared by the offending layer.
        actual: Shape,
    },
    /// A layer's convolution geometry is invalid.
    InvalidGeometry {
        /// Name of the offending layer.
        layer: String,
        /// Underlying tensor error description.
        detail: String,
    },
    /// Two layers share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The network has no layers.
    Empty,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ShapeChainBroken {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer `{layer}` expects input {actual} but the previous layer produces {expected}"
            ),
            NetworkError::InvalidGeometry { layer, detail } => {
                write!(f, "layer `{layer}` has invalid geometry: {detail}")
            }
            NetworkError::DuplicateName { name } => {
                write!(f, "duplicate layer name `{name}`")
            }
            NetworkError::Empty => write!(f, "network has no layers"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated feed-forward sequence of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from pre-constructed layers, validating that shapes
    /// chain and names are unique.
    ///
    /// # Errors
    /// Returns a [`NetworkError`] describing the first violated invariant.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for layer in &layers {
            if !names.insert(layer.name.clone()) {
                return Err(NetworkError::DuplicateName {
                    name: layer.name.clone(),
                });
            }
        }
        for pair in layers.windows(2) {
            if pair[1].input != pair[0].output {
                return Err(NetworkError::ShapeChainBroken {
                    layer: pair[1].name.clone(),
                    expected: pair[0].output,
                    actual: pair[1].input,
                });
            }
        }
        Ok(Network {
            name: name.into(),
            layers,
        })
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Shape of the network's input.
    pub fn input_shape(&self) -> Shape {
        self.layers[0].input
    }

    /// Shape of the network's output.
    pub fn output_shape(&self) -> Shape {
        self.layers[self.layers.len() - 1].output
    }

    /// Number of conventional convolution layers.
    pub fn conv_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_conv()).count()
    }

    /// Number of transposed convolution layers.
    pub fn tconv_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_tconv()).count()
    }

    /// Total weight parameters across all layers.
    pub fn weight_count(&self) -> u64 {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Aggregated operation statistics (drives Figure 1).
    pub fn op_stats(&self) -> NetworkOpStats {
        NetworkOpStats::from_layers(&self.layers)
    }

    /// Per-layer I/O shapes in execution order: `(name, input, output)`.
    pub fn layer_shapes(&self) -> Vec<(&str, Shape, Shape)> {
        self.layers
            .iter()
            .map(|l| (l.name.as_str(), l.input, l.output))
            .collect()
    }

    /// A reduced-geometry variant of the network for cycle-level execution:
    /// every channel count is capped at `max_channels` and volumetric layers
    /// are flattened to their 2-D cross-section (depth 1, depth-axis kernel/
    /// stride collapsed), while the spatial extents, stride/kernel choices and
    /// hence the zero-insertion phase structure are preserved.
    ///
    /// The reduction keeps exactly the properties conformance testing needs —
    /// the per-layer dataflow — while shrinking the arithmetic so a whole
    /// generator is simulatable cycle by cycle in a test.
    ///
    /// # Errors
    /// Returns [`NetworkError::InvalidGeometry`] if a flattened layer's
    /// geometry becomes invalid (it cannot, for any network whose 2-D
    /// cross-section is itself valid).
    pub fn reduced(&self, max_channels: usize) -> Result<Network, NetworkError> {
        let max_channels = max_channels.max(1);
        let cap = |shape: Shape| {
            Shape::new_2d(shape.channels.min(max_channels), shape.height, shape.width)
        };
        let mut current = cap(self.layers[0].input);
        let mut layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let reduced = match &layer.op {
                LayerOp::Projection => {
                    let layer = Layer::projection(
                        &layer.name,
                        current,
                        cap(layer.output),
                        layer.activation,
                    );
                    current = layer.output;
                    layer
                }
                LayerOp::Conv(p) | LayerOp::TConv(p) => {
                    // Collapse the depth axis to the 2-D defaults; the height
                    // and width dataflow (and phase structure) are untouched.
                    let flat = ConvParams {
                        kernel: (1, p.kernel.1, p.kernel.2),
                        stride: (1, p.stride.1, p.stride.2),
                        padding: (0, p.padding.1, p.padding.2),
                        output_padding: (0, p.output_padding.1, p.output_padding.2),
                        ..*p
                    };
                    let out_channels = layer.output.channels.min(max_channels);
                    let layer =
                        Layer::conv(&layer.name, current, out_channels, flat, layer.activation)
                            .map_err(|err| NetworkError::InvalidGeometry {
                                layer: layer.name.clone(),
                                detail: err.to_string(),
                            })?;
                    current = layer.output;
                    layer
                }
            };
            layers.push(reduced);
        }
        Network::new(format!("{}-reduced", self.name), layers)
    }
}

/// Incremental builder that chains layer shapes automatically.
///
/// # Example
/// ```
/// use ganax_models::{Activation, NetworkBuilder};
/// use ganax_tensor::{ConvParams, Shape};
///
/// let net = NetworkBuilder::new("toy-generator", Shape::new_2d(100, 1, 1))
///     .projection("project", Shape::new_2d(256, 4, 4), Activation::Relu)
///     .tconv("up1", 128, ConvParams::transposed_2d(4, 2, 1), Activation::Relu)
///     .tconv("up2", 3, ConvParams::transposed_2d(4, 2, 1), Activation::Tanh)
///     .build()
///     .unwrap();
/// assert_eq!(net.tconv_layer_count(), 2);
/// assert_eq!(net.output_shape(), Shape::new_2d(3, 16, 16));
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    current: Shape,
    layers: Vec<Layer>,
    error: Option<NetworkError>,
}

impl NetworkBuilder {
    /// Starts a builder for a network whose input has the given shape.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        NetworkBuilder {
            name: name.into(),
            current: input,
            layers: Vec::new(),
            error: None,
        }
    }

    fn push_conv(
        mut self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        match Layer::conv(name, self.current, out_channels, params, activation) {
            Ok(layer) => {
                self.current = layer.output;
                self.layers.push(layer);
            }
            Err(err) => {
                self.error = Some(NetworkError::InvalidGeometry {
                    layer: name.to_string(),
                    detail: err.to_string(),
                });
            }
        }
        self
    }

    /// Appends a conventional convolution layer.
    pub fn conv(
        self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        debug_assert!(!params.is_transposed(), "use `tconv` for transposed layers");
        self.push_conv(name, out_channels, params, activation)
    }

    /// Appends a transposed convolution layer.
    pub fn tconv(
        self,
        name: &str,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> Self {
        debug_assert!(params.is_transposed(), "use `conv` for conventional layers");
        self.push_conv(name, out_channels, params, activation)
    }

    /// Appends a fully-connected projection to an explicit output shape.
    pub fn projection(mut self, name: &str, output: Shape, activation: Activation) -> Self {
        if self.error.is_some() {
            return self;
        }
        let layer = Layer::projection(name, self.current, output, activation);
        self.current = output;
        self.layers.push(layer);
        self
    }

    /// Finalises the network.
    ///
    /// # Errors
    /// Returns the first construction error encountered while building.
    pub fn build(self) -> Result<Network, NetworkError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        Network::new(self.name, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layer(name: &str, input: Shape, out_channels: usize) -> Layer {
        Layer::conv(
            name,
            input,
            out_channels,
            ConvParams::conv_2d(3, 1, 1),
            Activation::Relu,
        )
        .unwrap()
    }

    #[test]
    fn network_validates_shape_chain() {
        let l1 = toy_layer("a", Shape::new_2d(3, 8, 8), 8);
        let l2 = toy_layer("b", Shape::new_2d(8, 8, 8), 16);
        assert!(Network::new("ok", vec![l1.clone(), l2]).is_ok());

        let bad = toy_layer("b", Shape::new_2d(4, 8, 8), 16);
        let err = Network::new("bad", vec![l1, bad]).unwrap_err();
        assert!(matches!(err, NetworkError::ShapeChainBroken { .. }));
    }

    #[test]
    fn network_rejects_duplicate_names() {
        let l1 = toy_layer("same", Shape::new_2d(3, 8, 8), 3);
        let l2 = toy_layer("same", Shape::new_2d(3, 8, 8), 3);
        let err = Network::new("dup", vec![l1, l2]).unwrap_err();
        assert!(matches!(err, NetworkError::DuplicateName { .. }));
    }

    #[test]
    fn network_rejects_empty() {
        assert_eq!(
            Network::new("none", vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn builder_chains_shapes() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(100, 1, 1))
            .projection("project", Shape::new_2d(64, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                32,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 16, ConvParams::conv_2d(3, 1, 1), Activation::Relu)
            .build()
            .unwrap();
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.output_shape(), Shape::new_2d(16, 8, 8));
        assert_eq!(net.conv_layer_count(), 1);
        assert_eq!(net.tconv_layer_count(), 1);
        assert_eq!(net.input_shape(), Shape::new_2d(100, 1, 1));
    }

    #[test]
    fn builder_propagates_geometry_error() {
        let result = NetworkBuilder::new("broken", Shape::new_2d(3, 2, 2))
            .conv("too-big", 8, ConvParams::conv_2d(7, 1, 0), Activation::Relu)
            .build();
        assert!(matches!(result, Err(NetworkError::InvalidGeometry { .. })));
    }

    #[test]
    fn weight_count_sums_layers() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(8, 4, 4))
            .conv("c1", 4, ConvParams::conv_2d(3, 1, 1), Activation::Relu)
            .conv("c2", 2, ConvParams::conv_2d(3, 1, 1), Activation::None)
            .build()
            .unwrap();
        assert_eq!(net.weight_count(), (4 * 8 * 9 + 2 * 4 * 9) as u64);
    }

    #[test]
    fn layer_shapes_lists_every_layer_in_order() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(100, 1, 1))
            .projection("project", Shape::new_2d(64, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                32,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .build()
            .unwrap();
        let shapes = net.layer_shapes();
        assert_eq!(shapes.len(), 2);
        assert_eq!(
            shapes[0],
            ("project", Shape::new_2d(100, 1, 1), Shape::new_2d(64, 4, 4))
        );
        assert_eq!(shapes[1].0, "up1");
        assert_eq!(shapes[1].2, Shape::new_2d(32, 8, 8));
    }

    #[test]
    fn reduced_caps_channels_and_preserves_spatial_structure() {
        let net = NetworkBuilder::new("gen", Shape::new_2d(100, 1, 1))
            .projection("project", Shape::new_2d(512, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                256,
                ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1),
                Activation::Relu,
            )
            .tconv(
                "up2",
                3,
                ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1),
                Activation::Tanh,
            )
            .build()
            .unwrap();
        let reduced = net.reduced(8).unwrap();
        assert_eq!(reduced.name(), "gen-reduced");
        assert_eq!(reduced.layers().len(), 3);
        // Channels capped; spatial extents identical to the original.
        for (orig, red) in net.layers().iter().zip(reduced.layers()) {
            assert_eq!(red.output.channels, orig.output.channels.min(8));
            assert_eq!(red.output.height, orig.output.height);
            assert_eq!(red.output.width, orig.output.width);
            // Inconsequential-work structure (the phase profile) survives.
            if orig.is_tconv() {
                assert!(red.is_tconv());
                assert!(
                    (red.inconsequential_fraction() - orig.inconsequential_fraction()).abs() < 1e-9
                );
            }
        }
        // Small channel counts stay as they are.
        assert_eq!(reduced.output_shape().channels, 3);
    }

    #[test]
    fn reduced_flattens_volumetric_layers() {
        let net = NetworkBuilder::new("vol", Shape::new(16, 4, 4, 4))
            .tconv(
                "up",
                8,
                ConvParams::transposed_3d(4, 2, 1),
                Activation::Relu,
            )
            .build()
            .unwrap();
        let reduced = net.reduced(4).unwrap();
        let layer = &reduced.layers()[0];
        assert_eq!(layer.input, Shape::new_2d(4, 4, 4));
        assert_eq!(layer.output.depth, 1);
        assert_eq!(layer.output.height, 8);
        let p = layer.op.conv_params().unwrap();
        assert_eq!(p.kernel, (1, 4, 4));
        assert_eq!(p.stride, (1, 2, 2));
        assert_eq!(p.padding, (0, 1, 1));
    }

    #[test]
    fn error_display_is_informative() {
        let err = NetworkError::ShapeChainBroken {
            layer: "up2".into(),
            expected: Shape::new_2d(8, 8, 8),
            actual: Shape::new_2d(4, 8, 8),
        };
        let msg = err.to_string();
        assert!(msg.contains("up2"));
        assert!(msg.contains("8x8x8"));
    }
}
