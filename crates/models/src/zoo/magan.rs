//! MAGAN — margin adaptation for stable GAN training (Wang et al., 2017).
//!
//! MAGAN pairs a generator with an auto-encoder discriminator (hence the six
//! convolution *and* six transposed-convolution layers in the discriminative
//! column of Table I). Its generator performs most of its work in stride-1
//! transposed-convolution refinement layers at the output resolution and only
//! one stride-2 upsampling step, which is why the GANAX paper reports it as the
//! model with the *lowest* fraction of inserted zeros (Figure 1) and the lowest
//! speedup (≈1.3× in Figure 8a). The hyper-parameters below are chosen to match
//! that qualitative profile while keeping the Table I layer counts exact.

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

fn up4() -> ConvParams {
    ConvParams::transposed_2d(4, 2, 1)
}

fn refine3() -> ConvParams {
    ConvParams::transposed_2d(3, 1, 1)
}

fn down4() -> ConvParams {
    ConvParams::conv_2d(4, 2, 1)
}

/// Builds the MAGAN workload.
pub fn magan() -> GanModel {
    let generator = NetworkBuilder::new("MAGAN-generator", Shape::new_2d(100, 1, 1))
        .projection("project", Shape::new_2d(128, 16, 16), Activation::Relu)
        .tconv("up1", 128, up4(), Activation::Relu)
        .tconv("refine1", 192, refine3(), Activation::Relu)
        .tconv("refine2", 128, refine3(), Activation::Relu)
        .tconv("refine3", 96, refine3(), Activation::Relu)
        .tconv("refine4", 64, refine3(), Activation::Relu)
        .tconv("to_rgb", 3, refine3(), Activation::Tanh)
        .build()
        .expect("MAGAN generator geometry is valid");

    // Auto-encoder discriminator: six-layer convolutional encoder followed by a
    // six-layer transposed-convolution decoder that reconstructs the input.
    let discriminator = NetworkBuilder::new("MAGAN-discriminator", Shape::new_2d(3, 32, 32))
        .conv("enc1", 32, down4(), Activation::LeakyRelu)
        .conv("enc2", 64, down4(), Activation::LeakyRelu)
        .conv("enc3", 128, down4(), Activation::LeakyRelu)
        .conv("enc4", 256, down4(), Activation::LeakyRelu)
        .conv(
            "enc5",
            256,
            ConvParams::conv_2d(3, 1, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "enc6",
            256,
            ConvParams::conv_2d(3, 1, 1),
            Activation::LeakyRelu,
        )
        .tconv("dec1", 128, up4(), Activation::Relu)
        .tconv("dec2", 64, up4(), Activation::Relu)
        .tconv("dec3", 32, up4(), Activation::Relu)
        .tconv("dec4", 16, up4(), Activation::Relu)
        .tconv("dec5", 16, refine3(), Activation::Relu)
        .tconv("reconstruct", 3, refine3(), Activation::Tanh)
        .build()
        .expect("MAGAN discriminator geometry is valid");

    GanModel::new(
        "MAGAN",
        2017,
        "Stable training procedure for GANs",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(magan().table_one_row(), (0, 6, 6, 6));
    }

    #[test]
    fn generator_produces_32x32_rgb() {
        assert_eq!(magan().generator.output_shape(), Shape::new_2d(3, 32, 32));
    }

    #[test]
    fn zero_fraction_is_the_lowest_of_the_zoo() {
        let frac = magan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        assert!(frac > 0.10 && frac < 0.40, "fraction = {frac}");
    }

    #[test]
    fn discriminator_decoder_reconstructs_the_input_resolution() {
        let disc = magan().discriminator;
        assert_eq!(disc.input_shape(), disc.output_shape());
    }
}
