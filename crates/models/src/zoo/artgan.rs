//! ArtGAN — conditional artwork synthesis (Tan et al., 2017).
//!
//! ArtGAN conditions the generator on a class label (the latent input below is
//! the concatenation of a 100-d noise vector and a 10-d label embedding). Its
//! generator uses four stride-2 upsampling transposed convolutions followed by
//! a stride-1 transposed convolution that refines the full-resolution image —
//! five transposed-convolution layers total, matching Table I. The
//! discriminator doubles as a classifier and carries six convolution layers.

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

fn up5() -> ConvParams {
    ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1)
}

fn down5() -> ConvParams {
    ConvParams::conv_2d(5, 2, 2)
}

/// Builds the ArtGAN workload.
pub fn art_gan() -> GanModel {
    let generator = NetworkBuilder::new("ArtGAN-generator", Shape::new_2d(110, 1, 1))
        .projection("project", Shape::new_2d(1024, 4, 4), Activation::Relu)
        .tconv("tconv1", 512, up5(), Activation::Relu)
        .tconv("tconv2", 256, up5(), Activation::Relu)
        .tconv("tconv3", 128, up5(), Activation::Relu)
        .tconv("tconv4", 64, up5(), Activation::Relu)
        .tconv(
            "refine",
            3,
            ConvParams::transposed_2d(5, 1, 2),
            Activation::Tanh,
        )
        .build()
        .expect("ArtGAN generator geometry is valid");

    let discriminator = NetworkBuilder::new("ArtGAN-discriminator", Shape::new_2d(3, 64, 64))
        .conv("conv1", 64, down5(), Activation::LeakyRelu)
        .conv("conv2", 128, down5(), Activation::LeakyRelu)
        .conv("conv3", 256, down5(), Activation::LeakyRelu)
        .conv("conv4", 512, down5(), Activation::LeakyRelu)
        .conv(
            "conv5",
            512,
            ConvParams::conv_2d(3, 1, 1),
            Activation::LeakyRelu,
        )
        .conv(
            "classify",
            11,
            ConvParams::conv_2d(4, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("ArtGAN discriminator geometry is valid");

    GanModel::new(
        "ArtGAN",
        2017,
        "Complex artworks generation",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(art_gan().table_one_row(), (0, 5, 6, 0));
    }

    #[test]
    fn generator_produces_64x64_rgb() {
        assert_eq!(art_gan().generator.output_shape(), Shape::new_2d(3, 64, 64));
    }

    #[test]
    fn stride_one_refinement_lowers_zero_fraction_below_dcgan() {
        let artgan_frac = art_gan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        let dcgan_frac = super::super::dcgan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        assert!(artgan_frac < dcgan_frac);
        assert!(artgan_frac > 0.55, "fraction = {artgan_frac}");
    }

    #[test]
    fn discriminator_outputs_class_scores() {
        let out = art_gan().discriminator.output_shape();
        assert_eq!((out.channels, out.height, out.width), (11, 1, 1));
    }
}
