//! DiscoGAN — cross-domain style transfer (Kim et al., 2017).
//!
//! DiscoGAN's generator is an image-to-image encoder/decoder: a five-layer
//! convolutional encoder compresses the 64×64 source-domain image and a
//! four-layer transposed-convolution decoder synthesises the target-domain
//! image, matching the 5 Conv + 4 TConv generator row of Table I. Because only
//! part of the generator consists of transposed convolutions, its end-to-end
//! speedup in Figure 8 is lower than the purely transposed-convolutional
//! generators even though its per-layer zero fraction is similar.

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

fn up4() -> ConvParams {
    ConvParams::transposed_2d(4, 2, 1)
}

fn down4() -> ConvParams {
    ConvParams::conv_2d(4, 2, 1)
}

/// Builds the DiscoGAN workload.
pub fn disco_gan() -> GanModel {
    let generator = NetworkBuilder::new("DiscoGAN-generator", Shape::new_2d(3, 64, 64))
        .conv("enc1", 64, down4(), Activation::LeakyRelu)
        .conv("enc2", 128, down4(), Activation::LeakyRelu)
        .conv("enc3", 256, down4(), Activation::LeakyRelu)
        .conv("enc4", 512, down4(), Activation::LeakyRelu)
        .conv(
            "bottleneck",
            512,
            ConvParams::conv_2d(3, 1, 1),
            Activation::LeakyRelu,
        )
        .tconv("dec1", 256, up4(), Activation::Relu)
        .tconv("dec2", 128, up4(), Activation::Relu)
        .tconv("dec3", 64, up4(), Activation::Relu)
        .tconv("dec4", 3, up4(), Activation::Tanh)
        .build()
        .expect("DiscoGAN generator geometry is valid");

    let discriminator = NetworkBuilder::new("DiscoGAN-discriminator", Shape::new_2d(3, 64, 64))
        .conv("conv1", 64, down4(), Activation::LeakyRelu)
        .conv("conv2", 128, down4(), Activation::LeakyRelu)
        .conv("conv3", 256, down4(), Activation::LeakyRelu)
        .conv("conv4", 512, down4(), Activation::LeakyRelu)
        .conv(
            "score",
            1,
            ConvParams::conv_2d(4, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("DiscoGAN discriminator geometry is valid");

    GanModel::new(
        "DiscoGAN",
        2017,
        "Style transfer from one domain to another",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(disco_gan().table_one_row(), (5, 4, 5, 0));
    }

    #[test]
    fn generator_is_image_to_image() {
        let gen = disco_gan().generator;
        assert_eq!(gen.input_shape(), Shape::new_2d(3, 64, 64));
        assert_eq!(gen.output_shape(), Shape::new_2d(3, 64, 64));
    }

    #[test]
    fn encoder_work_is_a_meaningful_share_of_the_generator() {
        let stats = disco_gan().generator.op_stats();
        let conv_macs = stats.total_dense_macs() - stats.tconv_dense_macs();
        let share = conv_macs as f64 / stats.total_dense_macs() as f64;
        assert!(share > 0.15 && share < 0.60, "encoder share = {share}");
    }

    #[test]
    fn tconv_layers_have_stride2_zero_profile() {
        let frac = disco_gan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        assert!(frac > 0.65 && frac < 0.80, "fraction = {frac}");
    }
}
