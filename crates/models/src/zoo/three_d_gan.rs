//! 3D-GAN — probabilistic latent space of 3-D object shapes (Wu et al., 2016).
//!
//! The generator maps a 200-dimensional latent vector to a 64³ occupancy volume
//! through four volumetric, stride-2, 4×4×4 transposed convolutions. Because
//! zero insertion happens along *three* spatial axes, roughly 7/8 of the dense
//! multiply-adds hit inserted zeros — the highest fraction among the evaluated
//! models, matching the ≈80 % figure quoted in Section VI of the paper.

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

/// 4×4×4 transposed convolution doubling every spatial axis.
fn up4_3d() -> ConvParams {
    ConvParams::transposed_3d(4, 2, 1)
}

/// 4×4×4 convolution halving every spatial axis.
fn down4_3d() -> ConvParams {
    ConvParams::conv_3d(4, 2, 1)
}

/// Builds the 3D-GAN workload.
pub fn three_d_gan() -> GanModel {
    let generator = NetworkBuilder::new("3D-GAN-generator", Shape::new(200, 1, 1, 1))
        .projection("project", Shape::new(512, 4, 4, 4), Activation::Relu)
        .tconv("tconv1", 256, up4_3d(), Activation::Relu)
        .tconv("tconv2", 128, up4_3d(), Activation::Relu)
        .tconv("tconv3", 64, up4_3d(), Activation::Relu)
        .tconv("tconv4", 1, up4_3d(), Activation::Sigmoid)
        .build()
        .expect("3D-GAN generator geometry is valid");

    let discriminator = NetworkBuilder::new("3D-GAN-discriminator", Shape::new(1, 64, 64, 64))
        .conv("conv1", 64, down4_3d(), Activation::LeakyRelu)
        .conv("conv2", 128, down4_3d(), Activation::LeakyRelu)
        .conv("conv3", 256, down4_3d(), Activation::LeakyRelu)
        .conv("conv4", 512, down4_3d(), Activation::LeakyRelu)
        .conv(
            "score",
            1,
            ConvParams::conv_3d(4, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("3D-GAN discriminator geometry is valid");

    GanModel::new(
        "3D-GAN",
        2016,
        "3D objects generation",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_64_cubed_volume() {
        let out = three_d_gan().generator.output_shape();
        assert_eq!(
            (out.channels, out.depth, out.height, out.width),
            (1, 64, 64, 64)
        );
    }

    #[test]
    fn zero_fraction_is_the_highest_of_the_zoo() {
        let frac = three_d_gan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        // 3-D zero insertion: ~1 - 1/8 minus border effects.
        assert!(frac > 0.80 && frac < 0.90, "fraction = {frac}");
    }

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(three_d_gan().table_one_row(), (0, 4, 5, 0));
    }

    #[test]
    fn discriminator_is_volumetric() {
        let model = three_d_gan();
        assert!(!model.discriminator.input_shape().is_2d());
        let out = model.discriminator.output_shape();
        assert_eq!(
            (out.channels, out.depth, out.height, out.width),
            (1, 1, 1, 1)
        );
    }
}
