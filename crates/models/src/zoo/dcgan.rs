//! DCGAN — unsupervised representation learning (Radford et al., 2015).
//!
//! The canonical DCGAN generator projects a 100-dimensional latent vector to a
//! 4×4×1024 feature map and upsamples it through four stride-2, 5×5 transposed
//! convolutions to a 64×64×3 image. The discriminator mirrors it with four
//! stride-2, 5×5 convolutions followed by a final scoring convolution
//! (five convolution layers total, matching Table I).

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

/// 5×5 transposed convolution that exactly doubles the spatial extent.
fn up5() -> ConvParams {
    ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1)
}

/// 5×5 convolution that halves the spatial extent.
fn down5() -> ConvParams {
    ConvParams::conv_2d(5, 2, 2)
}

/// Builds the DCGAN workload.
pub fn dcgan() -> GanModel {
    let generator = NetworkBuilder::new("DCGAN-generator", Shape::new_2d(100, 1, 1))
        .projection("project", Shape::new_2d(1024, 4, 4), Activation::Relu)
        .tconv("tconv1", 512, up5(), Activation::Relu)
        .tconv("tconv2", 256, up5(), Activation::Relu)
        .tconv("tconv3", 128, up5(), Activation::Relu)
        .tconv("tconv4", 3, up5(), Activation::Tanh)
        .build()
        .expect("DCGAN generator geometry is valid");

    let discriminator = NetworkBuilder::new("DCGAN-discriminator", Shape::new_2d(3, 64, 64))
        .conv("conv1", 64, down5(), Activation::LeakyRelu)
        .conv("conv2", 128, down5(), Activation::LeakyRelu)
        .conv("conv3", 256, down5(), Activation::LeakyRelu)
        .conv("conv4", 512, down5(), Activation::LeakyRelu)
        .conv(
            "score",
            1,
            ConvParams::conv_2d(4, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("DCGAN discriminator geometry is valid");

    GanModel::new(
        "DCGAN",
        2015,
        "Unsupervised representation learning",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_64x64_rgb() {
        let model = dcgan();
        assert_eq!(model.generator.output_shape(), Shape::new_2d(3, 64, 64));
    }

    #[test]
    fn discriminator_reduces_to_single_score() {
        let model = dcgan();
        let out = model.discriminator.output_shape();
        assert_eq!((out.channels, out.height, out.width), (1, 1, 1));
    }

    #[test]
    fn generator_zero_fraction_near_three_quarters() {
        let frac = dcgan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        assert!(frac > 0.70 && frac < 0.80, "fraction = {frac}");
    }

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(dcgan().table_one_row(), (0, 4, 5, 0));
    }
}
