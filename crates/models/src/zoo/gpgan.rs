//! GP-GAN — high-resolution image blending (Wu et al., 2017).
//!
//! GP-GAN's Blending GAN is an encoder/decoder, but its decoder is the
//! dominant component; Table I lists only the four transposed-convolution
//! layers for the generative model. The reproduction models the generator as a
//! latent projection followed by four stride-2 4×4 transposed convolutions up
//! to a 64×64 RGB image with wide channel counts (GP-GAN operates on wider
//! feature maps than DCGAN, which is what makes it one of the more
//! energy-hungry workloads in Figure 8b).

use ganax_tensor::{ConvParams, Shape};

use crate::gan::GanModel;
use crate::layer::Activation;
use crate::network::NetworkBuilder;

fn up4() -> ConvParams {
    ConvParams::transposed_2d(4, 2, 1)
}

fn down4() -> ConvParams {
    ConvParams::conv_2d(4, 2, 1)
}

/// Builds the GP-GAN workload.
pub fn gp_gan() -> GanModel {
    let generator = NetworkBuilder::new("GP-GAN-generator", Shape::new_2d(100, 1, 1))
        .projection("project", Shape::new_2d(1024, 4, 4), Activation::Relu)
        .tconv("tconv1", 512, up4(), Activation::Relu)
        .tconv("tconv2", 256, up4(), Activation::Relu)
        .tconv("tconv3", 128, up4(), Activation::Relu)
        .tconv("tconv4", 3, up4(), Activation::Tanh)
        .build()
        .expect("GP-GAN generator geometry is valid");

    let discriminator = NetworkBuilder::new("GP-GAN-discriminator", Shape::new_2d(3, 64, 64))
        .conv("conv1", 64, down4(), Activation::LeakyRelu)
        .conv("conv2", 128, down4(), Activation::LeakyRelu)
        .conv("conv3", 256, down4(), Activation::LeakyRelu)
        .conv("conv4", 512, down4(), Activation::LeakyRelu)
        .conv(
            "score",
            1,
            ConvParams::conv_2d(4, 1, 0),
            Activation::Sigmoid,
        )
        .build()
        .expect("GP-GAN discriminator geometry is valid");

    GanModel::new(
        "GP-GAN",
        2017,
        "High-resolution image generation",
        generator,
        discriminator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table_one() {
        assert_eq!(gp_gan().table_one_row(), (0, 4, 5, 0));
    }

    #[test]
    fn generator_produces_64x64_rgb() {
        assert_eq!(gp_gan().generator.output_shape(), Shape::new_2d(3, 64, 64));
    }

    #[test]
    fn zero_fraction_similar_to_dcgan() {
        let frac = gp_gan()
            .generator
            .op_stats()
            .tconv_inconsequential_fraction();
        assert!(frac > 0.65 && frac < 0.80, "fraction = {frac}");
    }
}
