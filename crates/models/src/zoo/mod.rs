//! The six GAN workloads of Table I.
//!
//! Each submodule re-derives one network from the architecture published in the
//! original GAN paper, constrained so that the per-network layer counts match
//! Table I of the GANAX paper. The GANAX paper does not publish the layer
//! hyper-parameters it used, so these are the documented approximations this
//! reproduction evaluates; the properties the evaluation depends on — output
//! resolutions, stride/kernel choices and hence the zero-insertion profiles —
//! follow the original architectures.

mod artgan;
mod dcgan;
mod discogan;
mod gpgan;
mod magan;
mod three_d_gan;

pub use artgan::art_gan;
pub use dcgan::dcgan;
pub use discogan::disco_gan;
pub use gpgan::gp_gan;
pub use magan::magan;
pub use three_d_gan::three_d_gan;

use crate::gan::GanModel;

/// All six evaluated GANs, in the order used throughout the paper's figures.
pub fn all_models() -> Vec<GanModel> {
    vec![
        three_d_gan(),
        art_gan(),
        dcgan(),
        disco_gan(),
        gp_gan(),
        magan(),
    ]
}

/// Looks a model up by its Table I name (case-insensitive).
pub fn by_name(name: &str) -> Option<GanModel> {
    all_models()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

/// A reduced-geometry generator for cycle-level end-to-end execution
/// ([`crate::Network::reduced`]): channel counts capped at `max_channels`,
/// volumetric layers flattened to their 2-D cross-section, the spatial
/// dataflow preserved. Returns `None` for unknown model names.
pub fn reduced_generator(name: &str, max_channels: usize) -> Option<crate::Network> {
    let model = by_name(name)?;
    Some(
        model
            .generator
            .reduced(max_channels)
            .expect("zoo generators have valid 2-D cross-sections"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper: layer counts per model, in the order
    /// (generator conv, generator tconv, discriminator conv, discriminator tconv).
    const TABLE_ONE: &[(&str, u16, (usize, usize, usize, usize))] = &[
        ("3D-GAN", 2016, (0, 4, 5, 0)),
        ("ArtGAN", 2017, (0, 5, 6, 0)),
        ("DCGAN", 2015, (0, 4, 5, 0)),
        ("DiscoGAN", 2017, (5, 4, 5, 0)),
        ("GP-GAN", 2017, (0, 4, 5, 0)),
        ("MAGAN", 2017, (0, 6, 6, 6)),
    ];

    #[test]
    fn zoo_matches_table_one_layer_counts() {
        for (name, year, counts) in TABLE_ONE {
            let model = by_name(name).unwrap_or_else(|| panic!("missing model {name}"));
            assert_eq!(model.year, *year, "{name} year");
            assert_eq!(&model.table_one_row(), counts, "{name} layer counts");
        }
    }

    #[test]
    fn all_models_returns_six_distinct_models() {
        let models = all_models();
        assert_eq!(models.len(), 6);
        let mut names: Vec<_> = models.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        assert!(by_name("dcgan").is_some());
        assert!(by_name("3d-gan").is_some());
        assert!(by_name("NoSuchGAN").is_none());
    }

    #[test]
    fn generators_are_dominated_by_transposed_convolutions() {
        for model in all_models() {
            let stats = model.generator.op_stats();
            assert!(
                stats.tconv_dense_macs() > stats.total_dense_macs() / 2,
                "{} generator should spend most MACs in transposed convolutions",
                model.name
            );
        }
    }

    #[test]
    fn figure_one_zero_fraction_ordering() {
        // The qualitative claims of Figure 1 and Section VI:
        //  * 3D-GAN has the largest fraction of inconsequential operations (~80%),
        //  * MAGAN has the smallest,
        //  * the average across models exceeds 60%.
        let models = all_models();
        let frac = |name: &str| {
            models
                .iter()
                .find(|m| m.name == name)
                .unwrap()
                .generator
                .op_stats()
                .tconv_inconsequential_fraction()
        };
        let three_d = frac("3D-GAN");
        let magan = frac("MAGAN");
        assert!(three_d > 0.78, "3D-GAN fraction = {three_d}");
        for model in &models {
            let f = model.generator.op_stats().tconv_inconsequential_fraction();
            assert!(f <= three_d + 1e-9, "{} exceeds 3D-GAN", model.name);
            assert!(f >= magan - 1e-9, "{} below MAGAN", model.name);
        }
        let avg: f64 = models
            .iter()
            .map(|m| m.generator.op_stats().tconv_inconsequential_fraction())
            .sum::<f64>()
            / models.len() as f64;
        assert!(avg > 0.60, "average fraction = {avg}");
        assert!(magan < 0.40, "MAGAN fraction = {magan}");
    }

    #[test]
    fn discriminators_contain_no_inserted_zeros_except_magan() {
        for model in all_models() {
            let stats = model.discriminator.op_stats();
            if model.name == "MAGAN" {
                // MAGAN's discriminator is an auto-encoder and does contain
                // transposed convolutions (Table I lists 6).
                assert!(stats.tconv_dense_macs() > 0);
            } else {
                assert_eq!(stats.tconv_dense_macs(), 0, "{}", model.name);
            }
        }
    }

    #[test]
    fn every_generator_reduces_to_a_2d_machine_workload() {
        for model in all_models() {
            let reduced = reduced_generator(&model.name, 4)
                .unwrap_or_else(|| panic!("missing model {}", model.name));
            for layer in reduced.layers() {
                assert!(layer.input.depth <= 1, "{}: {}", model.name, layer.name);
                assert!(layer.output.channels <= 4, "{}: {}", model.name, layer.name);
            }
            // Spatial output resolution is preserved.
            assert_eq!(
                reduced.output_shape().height,
                model.generator.output_shape().height,
                "{}",
                model.name
            );
        }
        assert!(reduced_generator("NoSuchGAN", 4).is_none());
    }

    #[test]
    fn output_resolutions_are_plausible() {
        let models = all_models();
        for model in &models {
            let out = model.generator.output_shape();
            assert!(
                out.height >= 32 && out.height <= 128,
                "{} output {}",
                model.name,
                out
            );
        }
        // 3D-GAN generates 64^3 volumes.
        let three_d = models.iter().find(|m| m.name == "3D-GAN").unwrap();
        let out = three_d.generator.output_shape();
        assert_eq!((out.depth, out.height, out.width), (64, 64, 64));
    }
}
