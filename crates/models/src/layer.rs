//! Individual layers of a GAN generator or discriminator.

use ganax_tensor::{ConvParams, Result as TensorResult, Shape};

/// Non-linearity applied after a layer's main operation.
///
/// The accelerator models only need to know whether an activation pass exists
/// (it costs one pass through the non-linear unit per output element); the
/// specific function does not change the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// No activation (e.g. the final layer before a loss).
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit (common in GAN discriminators).
    LeakyRelu,
    /// Hyperbolic tangent (common on generator outputs).
    Tanh,
    /// Logistic sigmoid (common on discriminator outputs).
    Sigmoid,
}

impl Activation {
    /// Whether an activation pass is performed at all.
    pub fn is_some(self) -> bool {
        self != Activation::None
    }
}

/// The main operation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerOp {
    /// A fully-connected projection (e.g. latent vector → initial feature map).
    /// The input is flattened; the output shape is given by the layer.
    Projection,
    /// A conventional, data-reducing convolution.
    Conv(ConvParams),
    /// A data-expanding transposed convolution.
    TConv(ConvParams),
}

impl LayerOp {
    /// Whether the operation is a transposed convolution.
    pub fn is_tconv(&self) -> bool {
        matches!(self, LayerOp::TConv(_))
    }

    /// Whether the operation is a conventional convolution.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerOp::Conv(_))
    }

    /// The convolution parameters, when the operation has them.
    pub fn conv_params(&self) -> Option<ConvParams> {
        match self {
            LayerOp::Conv(p) | LayerOp::TConv(p) => Some(*p),
            LayerOp::Projection => None,
        }
    }
}

/// One layer of a generator or discriminator network.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable layer name (unique within a network).
    pub name: String,
    /// The operation performed.
    pub op: LayerOp,
    /// Input feature-map shape.
    pub input: Shape,
    /// Output feature-map shape.
    pub output: Shape,
    /// Activation applied to the output.
    pub activation: Activation,
}

impl Layer {
    /// Creates a convolution layer, computing its output shape.
    ///
    /// # Errors
    /// Propagates geometry errors when the convolution would produce an empty
    /// output.
    pub fn conv(
        name: impl Into<String>,
        input: Shape,
        out_channels: usize,
        params: ConvParams,
        activation: Activation,
    ) -> TensorResult<Self> {
        let output = params.output_shape(input, out_channels)?;
        Ok(Layer {
            name: name.into(),
            op: if params.is_transposed() {
                LayerOp::TConv(params)
            } else {
                LayerOp::Conv(params)
            },
            input,
            output,
            activation,
        })
    }

    /// Creates a fully-connected projection layer with an explicit output shape.
    pub fn projection(
        name: impl Into<String>,
        input: Shape,
        output: Shape,
        activation: Activation,
    ) -> Self {
        Layer {
            name: name.into(),
            op: LayerOp::Projection,
            input,
            output,
            activation,
        }
    }

    /// Whether the layer is a transposed convolution.
    pub fn is_tconv(&self) -> bool {
        self.op.is_tconv()
    }

    /// Whether the layer is a conventional convolution.
    pub fn is_conv(&self) -> bool {
        self.op.is_conv()
    }

    /// Number of weight parameters in the layer.
    pub fn weight_count(&self) -> u64 {
        match &self.op {
            LayerOp::Projection => self.input.volume() as u64 * self.output.volume() as u64,
            LayerOp::Conv(p) | LayerOp::TConv(p) => {
                self.output.channels as u64
                    * self.input.channels as u64
                    * p.kernel.0 as u64
                    * p.kernel.1 as u64
                    * p.kernel.2 as u64
            }
        }
    }

    /// Multiply-accumulate operations a dense execution performs. For
    /// transposed convolutions this is counted over the zero-inserted input,
    /// matching the "conventional convolution dataflow" of the paper.
    pub fn dense_macs(&self) -> u64 {
        match &self.op {
            LayerOp::Projection => self.input.volume() as u64 * self.output.volume() as u64,
            LayerOp::Conv(p) | LayerOp::TConv(p) => p
                .dense_macs(self.input, self.output.channels)
                .expect("layer geometry validated at construction"),
        }
    }

    /// Multiply-accumulate operations whose input operand is an original
    /// (non-inserted) element — the work GANAX actually performs.
    pub fn consequential_macs(&self) -> u64 {
        match &self.op {
            LayerOp::Projection => self.dense_macs(),
            LayerOp::Conv(p) | LayerOp::TConv(p) => p
                .consequential_macs(self.input, self.output.channels)
                .expect("layer geometry validated at construction"),
        }
    }

    /// Fraction of dense multiply-adds that are inconsequential (hit inserted
    /// zeros). Zero for conventional convolutions and projections.
    pub fn inconsequential_fraction(&self) -> f64 {
        let dense = self.dense_macs();
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.consequential_macs() as f64 / dense as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input_4x4x1024() -> Shape {
        Shape::new_2d(1024, 4, 4)
    }

    #[test]
    fn conv_layer_shapes_and_counts() {
        let params = ConvParams::conv_2d(5, 2, 2);
        let layer = Layer::conv(
            "disc1",
            Shape::new_2d(3, 64, 64),
            64,
            params,
            Activation::LeakyRelu,
        )
        .unwrap();
        assert!(layer.is_conv());
        assert!(!layer.is_tconv());
        assert_eq!(layer.output, Shape::new_2d(64, 32, 32));
        assert_eq!(layer.weight_count(), 64 * 3 * 25);
        assert_eq!(layer.dense_macs(), layer.consequential_macs());
        assert_eq!(layer.inconsequential_fraction(), 0.0);
    }

    #[test]
    fn tconv_layer_inconsequential_fraction() {
        let params = ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1);
        let layer = Layer::conv("gen1", input_4x4x1024(), 512, params, Activation::Relu).unwrap();
        assert!(layer.is_tconv());
        assert_eq!(layer.output, Shape::new_2d(512, 8, 8));
        let frac = layer.inconsequential_fraction();
        assert!(frac > 0.6 && frac < 0.85, "fraction = {frac}");
    }

    #[test]
    fn projection_layer_counts() {
        let layer = Layer::projection(
            "project",
            Shape::new_2d(100, 1, 1),
            input_4x4x1024(),
            Activation::Relu,
        );
        assert_eq!(layer.dense_macs(), 100 * 1024 * 16);
        assert_eq!(layer.consequential_macs(), layer.dense_macs());
        assert_eq!(layer.weight_count(), 100 * 1024 * 16);
        assert_eq!(layer.inconsequential_fraction(), 0.0);
    }

    #[test]
    fn stride_one_tconv_has_only_border_inconsequentials() {
        let params = ConvParams::transposed_2d(3, 1, 1);
        let layer = Layer::conv(
            "refine",
            Shape::new_2d(64, 32, 32),
            64,
            params,
            Activation::Relu,
        )
        .unwrap();
        // No inserted zeros; only the implicit border makes a few taps fall
        // outside, so the fraction is small but non-negative.
        let frac = layer.inconsequential_fraction();
        assert!(frac >= 0.0 && frac < 0.1, "fraction = {frac}");
    }

    #[test]
    fn layer_op_accessors() {
        let p = ConvParams::transposed_2d(4, 2, 1);
        assert!(LayerOp::TConv(p).is_tconv());
        assert!(!LayerOp::TConv(p).is_conv());
        assert_eq!(LayerOp::TConv(p).conv_params(), Some(p));
        assert_eq!(LayerOp::Projection.conv_params(), None);
    }

    #[test]
    fn activation_is_some() {
        assert!(!Activation::None.is_some());
        assert!(Activation::Relu.is_some());
        assert!(Activation::Tanh.is_some());
    }
}
