//! Operation counting for networks (drives Figure 1 of the paper).

use crate::layer::Layer;

/// Per-layer multiply-accumulate counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerOpCounts {
    /// Layer name.
    pub name: String,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Dense MACs (over the zero-inserted input for transposed convolutions).
    pub dense_macs: u64,
    /// Consequential MACs (operands drawn from original data).
    pub consequential_macs: u64,
}

impl LayerOpCounts {
    /// MACs wasted on inserted zeros or padding.
    pub fn inconsequential_macs(&self) -> u64 {
        self.dense_macs - self.consequential_macs
    }
}

/// Aggregated operation statistics for a network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkOpStats {
    /// Per-layer counts in execution order.
    pub layers: Vec<LayerOpCounts>,
}

impl NetworkOpStats {
    /// Computes statistics from a slice of layers.
    pub fn from_layers(layers: &[Layer]) -> Self {
        NetworkOpStats {
            layers: layers
                .iter()
                .map(|l| LayerOpCounts {
                    name: l.name.clone(),
                    is_tconv: l.is_tconv(),
                    dense_macs: l.dense_macs(),
                    consequential_macs: l.consequential_macs(),
                })
                .collect(),
        }
    }

    /// Total dense MACs over every layer.
    pub fn total_dense_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.dense_macs).sum()
    }

    /// Total consequential MACs over every layer.
    pub fn total_consequential_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.consequential_macs).sum()
    }

    /// Dense MACs restricted to transposed-convolution layers.
    pub fn tconv_dense_macs(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_tconv)
            .map(|l| l.dense_macs)
            .sum()
    }

    /// Consequential MACs restricted to transposed-convolution layers.
    pub fn tconv_consequential_macs(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_tconv)
            .map(|l| l.consequential_macs)
            .sum()
    }

    /// Figure 1 of the paper: the fraction of multiply-adds in transposed
    /// convolution layers that are inconsequential due to inserted zeros.
    /// Returns zero for networks without transposed convolutions.
    pub fn tconv_inconsequential_fraction(&self) -> f64 {
        let dense = self.tconv_dense_macs();
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.tconv_consequential_macs() as f64 / dense as f64
    }

    /// Fraction of all dense MACs (any layer type) that are inconsequential.
    pub fn overall_inconsequential_fraction(&self) -> f64 {
        let dense = self.total_dense_macs();
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.total_consequential_macs() as f64 / dense as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use ganax_tensor::{ConvParams, Shape};

    fn stats_for_toy_network() -> NetworkOpStats {
        let conv = Layer::conv(
            "conv",
            Shape::new_2d(8, 8, 8),
            8,
            ConvParams::conv_2d(3, 1, 1),
            Activation::Relu,
        )
        .unwrap();
        let tconv = Layer::conv(
            "tconv",
            Shape::new_2d(8, 8, 8),
            8,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::Relu,
        )
        .unwrap();
        NetworkOpStats::from_layers(&[conv, tconv])
    }

    #[test]
    fn totals_sum_layer_counts() {
        let stats = stats_for_toy_network();
        assert_eq!(stats.layers.len(), 2);
        assert_eq!(
            stats.total_dense_macs(),
            stats.layers.iter().map(|l| l.dense_macs).sum::<u64>()
        );
        assert!(stats.total_dense_macs() > stats.total_consequential_macs());
    }

    #[test]
    fn tconv_fraction_only_counts_tconv_layers() {
        let stats = stats_for_toy_network();
        let conv_only = NetworkOpStats {
            layers: vec![stats.layers[0].clone()],
        };
        assert_eq!(conv_only.tconv_inconsequential_fraction(), 0.0);
        let frac = stats.tconv_inconsequential_fraction();
        assert!(frac > 0.5 && frac < 0.9, "fraction = {frac}");
    }

    #[test]
    fn inconsequential_macs_is_difference() {
        let stats = stats_for_toy_network();
        for layer in &stats.layers {
            assert_eq!(
                layer.inconsequential_macs(),
                layer.dense_macs - layer.consequential_macs
            );
        }
    }

    #[test]
    fn overall_fraction_between_zero_and_tconv_fraction() {
        let stats = stats_for_toy_network();
        let overall = stats.overall_inconsequential_fraction();
        let tconv = stats.tconv_inconsequential_fraction();
        assert!(overall > 0.0);
        assert!(overall <= tconv);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = NetworkOpStats::default();
        assert_eq!(stats.total_dense_macs(), 0);
        assert_eq!(stats.tconv_inconsequential_fraction(), 0.0);
        assert_eq!(stats.overall_inconsequential_fraction(), 0.0);
    }
}
