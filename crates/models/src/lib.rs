//! GAN workload models for the GANAX reproduction.
//!
//! The GANAX paper evaluates six generative adversarial networks (Table I):
//! 3D-GAN, ArtGAN, DCGAN, DiscoGAN, GP-GAN and MAGAN. This crate describes each
//! of them as a sequence of layers — projections, conventional convolutions and
//! transposed convolutions — together with the operation-counting machinery that
//! drives Figure 1 (the fraction of inconsequential multiply-adds) and the
//! workload definitions consumed by the accelerator models.
//!
//! The exact hyper-parameters of the six networks are not listed in the GANAX
//! paper; they are re-derived here from the publicly described architectures of
//! the original GAN papers, with layer counts constrained to match Table I.
//! Where an original architecture admits multiple variants, the variant whose
//! zero-insertion profile matches the qualitative description in the GANAX text
//! (e.g. 3D-GAN ≈ 80 % inserted zeros, MAGAN the lowest) is chosen; each zoo
//! module documents its choices.
//!
//! # Example
//!
//! ```
//! use ganax_models::zoo;
//!
//! let dcgan = zoo::dcgan();
//! assert_eq!(dcgan.generator.tconv_layer_count(), 4);
//! assert_eq!(dcgan.discriminator.conv_layer_count(), 5);
//!
//! let stats = dcgan.generator.op_stats();
//! // Roughly three quarters of the transposed-convolution multiply-adds hit
//! // inserted zeros for a stride-2 DCGAN generator.
//! assert!(stats.tconv_inconsequential_fraction() > 0.70);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gan;
mod layer;
mod network;
mod stats;
pub mod zoo;

pub use gan::GanModel;
pub use layer::{Activation, Layer, LayerOp};
pub use network::{Network, NetworkBuilder, NetworkError};
pub use stats::{LayerOpCounts, NetworkOpStats};
