//! A GAN: a generative model paired with a discriminative model.

use crate::network::Network;

/// A generative adversarial network as evaluated in the paper: a generator
/// (dominated by transposed convolutions) and a discriminator (dominated by
/// conventional convolutions), plus the Table I metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct GanModel {
    /// Model name as it appears in Table I (e.g. `"DCGAN"`).
    pub name: String,
    /// Publication year from Table I.
    pub year: u16,
    /// One-line description from Table I.
    pub description: String,
    /// The generative model.
    pub generator: Network,
    /// The discriminative model.
    pub discriminator: Network,
}

impl GanModel {
    /// Creates a GAN model from its two networks and Table I metadata.
    pub fn new(
        name: impl Into<String>,
        year: u16,
        description: impl Into<String>,
        generator: Network,
        discriminator: Network,
    ) -> Self {
        GanModel {
            name: name.into(),
            year,
            description: description.into(),
            generator,
            discriminator,
        }
    }

    /// Layer counts in Table I order:
    /// (generator conv, generator tconv, discriminator conv, discriminator tconv).
    pub fn table_one_row(&self) -> (usize, usize, usize, usize) {
        (
            self.generator.conv_layer_count(),
            self.generator.tconv_layer_count(),
            self.discriminator.conv_layer_count(),
            self.discriminator.tconv_layer_count(),
        )
    }

    /// Total dense MACs across generator and discriminator.
    pub fn total_dense_macs(&self) -> u64 {
        self.generator.op_stats().total_dense_macs()
            + self.discriminator.op_stats().total_dense_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::NetworkBuilder;
    use ganax_tensor::{ConvParams, Shape};

    fn toy_gan() -> GanModel {
        let generator = NetworkBuilder::new("toy-gen", Shape::new_2d(16, 1, 1))
            .projection("project", Shape::new_2d(32, 4, 4), Activation::Relu)
            .tconv(
                "up",
                3,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Tanh,
            )
            .build()
            .unwrap();
        let discriminator = NetworkBuilder::new("toy-disc", Shape::new_2d(3, 8, 8))
            .conv(
                "down",
                32,
                ConvParams::conv_2d(4, 2, 1),
                Activation::LeakyRelu,
            )
            .conv(
                "score",
                1,
                ConvParams::conv_2d(4, 1, 0),
                Activation::Sigmoid,
            )
            .build()
            .unwrap();
        GanModel::new("ToyGAN", 2024, "test model", generator, discriminator)
    }

    #[test]
    fn table_one_row_counts_layers() {
        let gan = toy_gan();
        assert_eq!(gan.table_one_row(), (0, 1, 2, 0));
    }

    #[test]
    fn total_macs_sum_both_networks() {
        let gan = toy_gan();
        let gen = gan.generator.op_stats().total_dense_macs();
        let disc = gan.discriminator.op_stats().total_dense_macs();
        assert_eq!(gan.total_dense_macs(), gen + disc);
        assert!(gen > 0 && disc > 0);
    }
}
