//! Shared helpers for the GANAX benchmark harness.
//!
//! The `figures` binary and the Criterion benches both need the same
//! machinery: run every Table I GAN on both accelerator models and format the
//! results the way the paper's tables and figures report them. This crate
//! collects that machinery so the harness entry points stay small.
//!
//! ```
//! // Figure 1: fraction of transposed-convolution MACs that are
//! // inconsequential (multiply-by-zero), per GAN plus the zoo average.
//! let (rows, average) = ganax_bench::figure1();
//! assert_eq!(rows.len(), 6);
//! assert!(average > 0.5 && average < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ganax::compare::{compare_all, geometric_mean, ModelComparison};
use ganax_energy::EnergyCategory;
use ganax_models::zoo;
use serde::Serialize;

/// One row of the Figure 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// GAN name.
    pub model: String,
    /// Fraction of transposed-convolution MACs that are inconsequential.
    pub inconsequential_fraction: f64,
}

/// One row of the Figure 8 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// GAN name.
    pub model: String,
    /// Generator speedup of GANAX over Eyeriss (Figure 8a).
    pub speedup: f64,
    /// Generator energy reduction of GANAX over Eyeriss (Figure 8b).
    pub energy_reduction: f64,
}

/// One row of the Figure 9 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss discriminator share.
    pub eyeriss_discriminative: f64,
    /// Eyeriss generator share.
    pub eyeriss_generative: f64,
    /// GANAX discriminator share.
    pub ganax_discriminative: f64,
    /// GANAX generator share.
    pub ganax_generative: f64,
}

/// One row of the Figure 10 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// GAN name.
    pub model: String,
    /// Unit label (PE, RegF, NoC, GBuf, DRAM).
    pub unit: &'static str,
    /// Eyeriss share of its own total.
    pub eyeriss: f64,
    /// GANAX share of the Eyeriss total.
    pub ganax: f64,
}

/// One row of the Figure 11 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss average PE utilization on the generator.
    pub eyeriss_utilization: f64,
    /// GANAX average PE utilization on the generator.
    pub ganax_utilization: f64,
}

/// Runs the full zoo comparison once (shared by several figures).
pub fn all_comparisons() -> Vec<ModelComparison> {
    compare_all()
}

/// Figure 1 data: per-model inconsequential-MAC fractions plus the average.
pub fn figure1() -> (Vec<Fig1Row>, f64) {
    let rows: Vec<Fig1Row> = zoo::all_models()
        .iter()
        .map(|gan| Fig1Row {
            model: gan.name.clone(),
            inconsequential_fraction: gan.generator.op_stats().tconv_inconsequential_fraction(),
        })
        .collect();
    let average = rows.iter().map(|r| r.inconsequential_fraction).sum::<f64>() / rows.len() as f64;
    (rows, average)
}

/// Figure 8 data plus the geometric means.
pub fn figure8(comparisons: &[ModelComparison]) -> (Vec<Fig8Row>, f64, f64) {
    let rows: Vec<Fig8Row> = comparisons
        .iter()
        .map(|c| Fig8Row {
            model: c.gan_name.clone(),
            speedup: c.generator_speedup(),
            energy_reduction: c.generator_energy_reduction(),
        })
        .collect();
    let speedup_geomean = geometric_mean(rows.iter().map(|r| r.speedup));
    let energy_geomean = geometric_mean(rows.iter().map(|r| r.energy_reduction));
    (rows, speedup_geomean, energy_geomean)
}

/// Figure 9 data: runtime (`energy = false`) or energy (`energy = true`)
/// breakdown between discriminative and generative models.
pub fn figure9(comparisons: &[ModelComparison], energy: bool) -> Vec<Fig9Row> {
    comparisons
        .iter()
        .map(|c| {
            let ((e_disc, e_gen), (g_disc, g_gen)) = if energy {
                c.energy_breakdown()
            } else {
                c.runtime_breakdown()
            };
            Fig9Row {
                model: c.gan_name.clone(),
                eyeriss_discriminative: e_disc,
                eyeriss_generative: e_gen,
                ganax_discriminative: g_disc,
                ganax_generative: g_gen,
            }
        })
        .collect()
}

/// Figure 10 data: per-unit energy of the generators, normalized to Eyeriss.
pub fn figure10(comparisons: &[ModelComparison]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for c in comparisons {
        for (category, eyeriss, ganax) in c.generator_unit_energy() {
            rows.push(Fig10Row {
                model: c.gan_name.clone(),
                unit: category.label(),
                eyeriss,
                ganax,
            });
        }
    }
    rows
}

/// Figure 11 data: generator PE utilization on both accelerators.
pub fn figure11(comparisons: &[ModelComparison]) -> Vec<Fig11Row> {
    comparisons
        .iter()
        .map(|c| {
            let (eyeriss, ganax) = c.generator_utilization();
            Fig11Row {
                model: c.gan_name.clone(),
                eyeriss_utilization: eyeriss,
                ganax_utilization: ganax,
            }
        })
        .collect()
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Formats a ratio with an `x` suffix.
pub fn ratio(x: f64) -> String {
    format!("{x:4.2}x")
}

/// All five energy-category labels (Figure 10 legend).
pub fn energy_labels() -> Vec<&'static str> {
    EnergyCategory::ALL.iter().map(|c| c.label()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_six_rows_and_sensible_average() {
        let (rows, average) = figure1();
        assert_eq!(rows.len(), 6);
        assert!(average > 0.6 && average < 0.9, "average = {average}");
    }

    #[test]
    fn figure8_geomeans_are_in_paper_ballpark() {
        let comparisons = all_comparisons();
        let (rows, speedup, energy) = figure8(&comparisons);
        assert_eq!(rows.len(), 6);
        assert!(
            speedup > 2.0 && speedup < 6.0,
            "speedup geomean = {speedup}"
        );
        assert!(energy > 1.8 && energy < 6.0, "energy geomean = {energy}");
    }

    #[test]
    fn figure9_rows_are_normalized() {
        let comparisons = all_comparisons();
        for row in figure9(&comparisons, false) {
            assert!((row.eyeriss_discriminative + row.eyeriss_generative - 1.0).abs() < 1e-9);
            assert!(row.ganax_discriminative + row.ganax_generative <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn figure10_has_five_units_per_model() {
        let comparisons = all_comparisons();
        let rows = figure10(&comparisons);
        assert_eq!(rows.len(), 6 * 5);
        assert_eq!(energy_labels().len(), 5);
    }

    #[test]
    fn figure11_shows_ganax_above_eyeriss() {
        let comparisons = all_comparisons();
        for row in figure11(&comparisons) {
            assert!(
                row.ganax_utilization > row.eyeriss_utilization,
                "{}",
                row.model
            );
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(ratio(3.61), "3.61x");
    }
}
