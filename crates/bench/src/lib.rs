//! Shared helpers for the GANAX benchmark harness.
//!
//! The `figures` binary and the Criterion benches both need the same
//! machinery: run every Table I GAN on both accelerator models and format the
//! results the way the paper's tables and figures report them. This crate
//! collects that machinery so the harness entry points stay small.
//!
//! ```
//! // Figure 1: fraction of transposed-convolution MACs that are
//! // inconsequential (multiply-by-zero), per GAN plus the zoo average.
//! let (rows, average) = ganax_bench::figure1();
//! assert_eq!(rows.len(), 6);
//! assert!(average > 0.5 && average < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use ganax::compare::{compare_all, geometric_mean, ModelComparison, SimulatedComparison};
use ganax::serve::{ServeConfig, Server};
use ganax::sweep::MachineSweepCell;
use ganax::{
    DesignSummary, FaultKind, FaultSpec, GanaxConfig, GanaxMachine, InferenceEngine, IntegrityMode,
    NetworkWeights, SweepCell, SweepSpec,
};
use ganax_energy::EnergyCategory;
use ganax_models::{zoo, Layer, Network};
use ganax_tensor::{Shape, Tensor};
use serde::Serialize;

/// One row of the Figure 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// GAN name.
    pub model: String,
    /// Fraction of transposed-convolution MACs that are inconsequential.
    pub inconsequential_fraction: f64,
}

/// One row of the Figure 8 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// GAN name.
    pub model: String,
    /// Generator speedup of GANAX over Eyeriss (Figure 8a).
    pub speedup: f64,
    /// Generator energy reduction of GANAX over Eyeriss (Figure 8b).
    pub energy_reduction: f64,
}

/// One row of the Figure 9 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss discriminator share.
    pub eyeriss_discriminative: f64,
    /// Eyeriss generator share.
    pub eyeriss_generative: f64,
    /// GANAX discriminator share.
    pub ganax_discriminative: f64,
    /// GANAX generator share.
    pub ganax_generative: f64,
}

/// One row of the Figure 10 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// GAN name.
    pub model: String,
    /// Unit label (PE, RegF, NoC, GBuf, DRAM).
    pub unit: &'static str,
    /// Eyeriss share of its own total.
    pub eyeriss: f64,
    /// GANAX share of the Eyeriss total.
    pub ganax: f64,
}

/// One row of the Figure 11 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss average PE utilization on the generator.
    pub eyeriss_utilization: f64,
    /// GANAX average PE utilization on the generator.
    pub ganax_utilization: f64,
}

/// Runs the full zoo comparison once (shared by several figures).
pub fn all_comparisons() -> Vec<ModelComparison> {
    compare_all()
}

/// Figure 1 data: per-model inconsequential-MAC fractions plus the average.
pub fn figure1() -> (Vec<Fig1Row>, f64) {
    let rows: Vec<Fig1Row> = zoo::all_models()
        .iter()
        .map(|gan| Fig1Row {
            model: gan.name.clone(),
            inconsequential_fraction: gan.generator.op_stats().tconv_inconsequential_fraction(),
        })
        .collect();
    let average = rows.iter().map(|r| r.inconsequential_fraction).sum::<f64>() / rows.len() as f64;
    (rows, average)
}

/// Figure 8 data plus the geometric means.
pub fn figure8(comparisons: &[ModelComparison]) -> (Vec<Fig8Row>, f64, f64) {
    let rows: Vec<Fig8Row> = comparisons
        .iter()
        .map(|c| Fig8Row {
            model: c.gan_name.clone(),
            speedup: c.generator_speedup(),
            energy_reduction: c.generator_energy_reduction(),
        })
        .collect();
    let speedup_geomean = geometric_mean(rows.iter().map(|r| r.speedup));
    let energy_geomean = geometric_mean(rows.iter().map(|r| r.energy_reduction));
    (rows, speedup_geomean, energy_geomean)
}

/// Figure 9 data: runtime (`energy = false`) or energy (`energy = true`)
/// breakdown between discriminative and generative models.
pub fn figure9(comparisons: &[ModelComparison], energy: bool) -> Vec<Fig9Row> {
    comparisons
        .iter()
        .map(|c| {
            let ((e_disc, e_gen), (g_disc, g_gen)) = if energy {
                c.energy_breakdown()
            } else {
                c.runtime_breakdown()
            };
            Fig9Row {
                model: c.gan_name.clone(),
                eyeriss_discriminative: e_disc,
                eyeriss_generative: e_gen,
                ganax_discriminative: g_disc,
                ganax_generative: g_gen,
            }
        })
        .collect()
}

/// Figure 10 data: per-unit energy of the generators, normalized to Eyeriss.
pub fn figure10(comparisons: &[ModelComparison]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for c in comparisons {
        for (category, eyeriss, ganax) in c.generator_unit_energy() {
            rows.push(Fig10Row {
                model: c.gan_name.clone(),
                unit: category.label(),
                eyeriss,
                ganax,
            });
        }
    }
    rows
}

/// Figure 11 data: generator PE utilization on both accelerators.
pub fn figure11(comparisons: &[ModelComparison]) -> Vec<Fig11Row> {
    comparisons
        .iter()
        .map(|c| {
            let (eyeriss, ganax) = c.generator_utilization();
            Fig11Row {
                model: c.gan_name.clone(),
                eyeriss_utilization: eyeriss,
                ganax_utilization: ganax,
            }
        })
        .collect()
}

/// The worker-thread counts a bench sweeps.
///
/// Resolution order: an explicit `--threads a,b,c` argument, the
/// `GANAX_BENCH_THREADS` environment variable (same comma-separated format),
/// then the default `[1, 2, 4, available_parallelism]`. The list is sorted
/// and deduplicated. Forcing counts above the host's parallelism is
/// deliberate — the schedulers are thread-count invariant, so oversubscribed
/// sweeps still measure the sharding machinery even on single-core runners
/// (where the old benches silently collapsed every row to `threads == 1`).
///
/// # Panics
/// Panics on an explicitly provided but unparseable spec (e.g. `--threads
/// l6`) instead of silently sweeping the default counts; a blank spec falls
/// back to the default.
pub fn bench_thread_counts(arg: Option<&str>) -> Vec<usize> {
    let spec = arg
        .map(str::to_string)
        .or_else(|| std::env::var("GANAX_BENCH_THREADS").ok());
    let mut counts: Vec<usize> = match spec.as_deref().map(str::trim).filter(|s| !s.is_empty()) {
        Some(list) => list
            .split(',')
            .map(|s| match s.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                // An explicitly requested sweep must not silently fall back
                // to the default: a typo (`l6` for 16) would otherwise
                // record a sweep the user never asked for.
                _ => panic!("invalid thread count `{s}` in `{list}`: expected positive integers separated by commas"),
            })
            .collect(),
        None => vec![1, 2, 4, available_parallelism()],
    };
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The value following a `--flag value` pair in a bench binary's argument
/// list (`None` when the flag is absent or dangling).
///
/// Every bench binary shares this tiny CLI grammar; parsing it here keeps
/// the binaries from each hand-rolling (and subtly diverging on) the same
/// position-scan.
pub fn cli_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The output path of a bench report: `--out path` or the bench's default.
pub fn cli_out_path(args: &[String], default: &str) -> String {
    cli_value(args, "--out").unwrap_or(default).to_string()
}

/// The thread-count sweep of a bench invocation: `--threads a,b,c`, the
/// `GANAX_BENCH_THREADS` environment variable, or the default — the CLI
/// front half of [`bench_thread_counts`] (see there for panics).
pub fn cli_thread_counts(args: &[String]) -> Vec<usize> {
    bench_thread_counts(cli_value(args, "--threads"))
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One point of a thread-count sweep: wall-clock of the same workload at one
/// worker count (results are bit-identical across the sweep; only time moves).
#[derive(Debug, Clone, Serialize)]
pub struct ThreadTiming {
    /// Worker threads requested.
    pub threads: usize,
    /// Wall-clock milliseconds at this count.
    pub ms: f64,
    /// Speedup over the workload's single-threaded measurement: the
    /// independently timed serial fast path for `machine_bench` rows, and
    /// the sweep's `threads == 1` point for `network_bench` rows (1.0 there
    /// when no single-threaded point was swept).
    pub speedup_vs_serial: f64,
}

/// One row of the cycle-level machine performance benchmark
/// (`BENCH_machine.json`): wall-clock time of the seed single-step serial
/// path versus the burst-stepped fast path (serial and threaded) on one layer
/// geometry.
#[derive(Debug, Clone, Serialize)]
pub struct MachineBenchRow {
    /// Layer name.
    pub layer: String,
    /// Human-readable geometry (`in → out, kernel/stride`).
    pub geometry: String,
    /// Work units the machine executed.
    pub work_units: u64,
    /// Busy PE cycles the run simulated (equals consequential MACs).
    pub busy_pe_cycles: u64,
    /// Wall-clock milliseconds of the seed single-step serial path.
    pub reference_ms: f64,
    /// Wall-clock milliseconds of the burst-stepped serial fast path.
    pub fast_serial_ms: f64,
    /// Wall-clock milliseconds of the threaded fast path at the best swept
    /// thread count.
    pub threaded_ms: f64,
    /// Worker threads used for `threaded_ms` (the best-performing swept
    /// count).
    pub threads: usize,
    /// The full thread-count sweep behind `threaded_ms` (see
    /// [`bench_thread_counts`]): every swept count with its wall-clock and
    /// its speedup over the sweep's serial point.
    pub thread_sweep: Vec<ThreadTiming>,
    /// Simulated busy cycles per wall-clock second on the serial fast path.
    pub fast_serial_cycles_per_sec: f64,
    /// `reference_ms / fast_serial_ms`.
    pub speedup_fast_serial: f64,
    /// `reference_ms / threaded_ms`.
    pub speedup_threaded: f64,
}

/// A deterministic pseudo-random tensor (xorshift over the flat index) shared
/// by the machine benches and the scale tests — an alias for
/// [`Tensor::deterministic`], the workspace's single source of reproducible
/// operands.
pub fn deterministic_tensor(shape: Shape, seed: u64) -> Tensor {
    Tensor::deterministic(shape, seed)
}

/// A deterministic pseudo-random tensor of *small integers* (stored as
/// `f32`): values drawn from `{-1, 0, +1}` with roughly one non-zero in four.
///
/// Small-integer operands are the conformance suite's exactness trick: every
/// product is `±1` or `0` and every partial sum stays a small integer, so all
/// f32 accumulation orders produce *bit-identical* results as long as
/// magnitudes stay below 2^24 — which the sparse ternary distribution
/// guarantees for every reduced Table I generator.
pub fn small_integer_tensor(shape: Shape, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let mut t = Tensor::zeros(shape);
    for v in t.data_mut() {
        *v = match splitmix64(&mut state) % 8 {
            0 => -1.0f32,
            1 => 1.0,
            _ => 0.0,
        };
    }
    t
}

/// One step of the splitmix64 stream behind the deterministic integer
/// generators: advances `state` and returns the mixed output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic float weights (and no biases) for every layer of a network,
/// shaped per [`NetworkWeights::expected_shape`]. Used by the network benches.
pub fn network_weights(network: &Network, seed: u64) -> NetworkWeights {
    let tensors = network
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| deterministic_tensor(NetworkWeights::expected_shape(l), seed + i as u64))
        .collect();
    NetworkWeights::new(network, tensors).expect("weights generated from the network's own shapes")
}

/// Deterministic *small-integer* weights plus integer per-channel biases for
/// every layer of a network — the operand set of the bit-exact conformance
/// suite (see [`small_integer_tensor`]).
pub fn conformance_weights(network: &Network, seed: u64) -> NetworkWeights {
    let tensors: Vec<Tensor> = network
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| small_integer_tensor(NetworkWeights::expected_shape(l), seed + i as u64))
        .collect();
    let mut weights = NetworkWeights::new(network, tensors)
        .expect("weights generated from the network's own shapes");
    for (i, layer) in network.layers().iter().enumerate() {
        let bias = small_integer_tensor(
            Shape::new_2d(layer.output.channels, 1, 1),
            seed + 1000 + i as u64,
        );
        weights = weights
            .with_bias(i, bias.data().to_vec())
            .expect("bias sized from the layer's own channels");
    }
    weights
}

/// Deterministic small-integer input matching a network's input shape.
pub fn conformance_input(network: &Network, seed: u64) -> Tensor {
    small_integer_tensor(network.input_shape(), seed)
}

/// Random input and weight tensors matching one conv/tconv layer.
pub fn layer_tensors(layer: &Layer, seed: u64) -> (Tensor, Tensor) {
    let params = layer.op.conv_params().expect("conv/tconv layer");
    let input = deterministic_tensor(layer.input, seed);
    let weights = deterministic_tensor(
        Shape::filter(
            layer.output.channels,
            layer.input.channels,
            params.kernel.0,
            params.kernel.1,
            params.kernel.2,
        ),
        seed + 1,
    );
    (input, weights)
}

/// The geometries the machine bench covers: the paper's Figure 4 example, a
/// mid-size multi-channel transposed convolution, and a full-size Table I
/// DCGAN generator layer (`tconv3`, 256 → 128 channels). With `quick`, the
/// DCGAN layer is swapped for a half-width stand-in so CI smoke runs stay
/// short.
pub fn machine_bench_layers(quick: bool) -> Vec<Layer> {
    use ganax_models::Activation;
    use ganax_tensor::ConvParams;

    let tconv3 = zoo::dcgan()
        .generator
        .layers()
        .iter()
        .find(|l| l.name == "tconv3")
        .expect("DCGAN generator has tconv3")
        .clone();
    let dcgan_kernel = tconv3.op.conv_params().expect("tconv3 is a tconv");
    let mut layers = vec![
        Layer::conv(
            "paper-example",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .expect("paper example geometry is valid"),
        Layer::conv(
            "tconv-mid",
            Shape::new_2d(16, 8, 8),
            16,
            dcgan_kernel,
            Activation::None,
        )
        .expect("mid geometry is valid"),
    ];
    if quick {
        layers.push(
            Layer::conv(
                "dcgan-tconv3-half",
                Shape::new_2d(tconv3.input.channels / 2, 16, 16),
                tconv3.output.channels / 2,
                dcgan_kernel,
                Activation::None,
            )
            .expect("half-width tconv3 geometry is valid"),
        );
    } else {
        layers.push(tconv3);
    }
    layers
}

/// Runs `f` `samples` times and keeps the fastest wall-clock time (the
/// criterion-style noise floor) together with the last result.
fn time_best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let result = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        value = Some(result);
    }
    (value.expect("at least one sample"), best)
}

/// Measures the seed single-step serial path against the burst-stepped fast
/// paths on every [`machine_bench_layers`] geometry, sweeping the threaded
/// scheduler over `thread_counts` (see [`bench_thread_counts`]). Every path
/// is timed best-of-5 so noisy samples cannot skew the recorded speedups,
/// and every swept run is asserted bit-identical to the reference before any
/// timing is reported.
pub fn machine_bench(quick: bool, thread_counts: &[usize]) -> Vec<MachineBenchRow> {
    let machine = GanaxMachine::paper();
    let samples = 5;
    machine_bench_layers(quick)
        .into_iter()
        .enumerate()
        .map(|(i, layer)| {
            let (input, weights) = layer_tensors(&layer, 97 + i as u64);
            let (reference, reference_ms) = time_best_of(samples, || {
                machine
                    .execute_layer_reference(&layer, &input, &weights)
                    .expect("reference path executes the bench layer")
            });
            let (fast, fast_serial_ms) = time_best_of(samples, || {
                machine
                    .execute_layer_threaded(&layer, &input, &weights, 1)
                    .expect("fast path executes the bench layer")
            });
            assert_eq!(reference, fast, "fast path diverged from the reference");
            let thread_sweep: Vec<ThreadTiming> = thread_counts
                .iter()
                .map(|&threads| {
                    let (run, ms) = if threads == 1 {
                        (fast.clone(), fast_serial_ms)
                    } else {
                        time_best_of(samples, || {
                            machine
                                .execute_layer_threaded(&layer, &input, &weights, threads)
                                .expect("threaded path executes the bench layer")
                        })
                    };
                    assert_eq!(reference, run, "{threads}-thread run diverged");
                    ThreadTiming {
                        threads,
                        ms,
                        speedup_vs_serial: fast_serial_ms / ms,
                    }
                })
                .collect();
            // The headline threaded numbers come from the best-performing
            // swept count (serial included, so a single-core host records an
            // honest 1.0x instead of scheduler-overhead noise).
            let best = thread_sweep
                .iter()
                .min_by(|a, b| a.ms.total_cmp(&b.ms))
                .expect("thread sweep is never empty");
            let (threads, threaded_ms) = (best.threads, best.ms);
            let params = layer.op.conv_params().expect("conv/tconv layer");
            MachineBenchRow {
                layer: layer.name.clone(),
                geometry: format!(
                    "{} -> {}, {}x{}/s{}",
                    layer.input, layer.output, params.kernel.1, params.kernel.2, params.stride.1
                ),
                work_units: fast.work_units,
                busy_pe_cycles: fast.busy_pe_cycles,
                reference_ms,
                fast_serial_ms,
                threaded_ms,
                threads,
                thread_sweep,
                fast_serial_cycles_per_sec: fast.busy_pe_cycles as f64 / (fast_serial_ms / 1e3),
                speedup_fast_serial: reference_ms / fast_serial_ms,
                speedup_threaded: reference_ms / threaded_ms,
            }
        })
        .collect()
}

/// One per-layer row of the end-to-end network benchmark
/// (`BENCH_network.json`).
#[derive(Debug, Clone, Serialize)]
pub struct NetworkBenchRow {
    /// Layer name.
    pub layer: String,
    /// Human-readable I/O shapes (`input -> output`).
    pub geometry: String,
    /// Whether the layer ran on the host (projection) instead of the PE array.
    pub host: bool,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Busy PE cycles the layer simulated (its in-bounds MACs).
    pub busy_pe_cycles: u64,
    /// Work units executed.
    pub work_units: u64,
    /// Load balance of the threaded PE-array scheduler (1.0 = perfect).
    pub balance: f64,
    /// Wall-clock milliseconds of the layer (including staged planning).
    pub wall_ms: f64,
}

/// The end-to-end network benchmark report behind `BENCH_network.json`: the
/// DCGAN generator executed layer by layer on the cycle-level machine, with
/// the simulated-vs-analytic cross-check and the Eyeriss-baseline direction.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkBenchReport {
    /// Benchmark family name.
    pub bench: String,
    /// Network executed.
    pub network: String,
    /// Whether the quick (reduced-geometry) variant was used.
    pub quick: bool,
    /// Worker threads used for the PE-array layers.
    pub threads: usize,
    /// Per-layer measurements.
    pub rows: Vec<NetworkBenchRow>,
    /// Total busy PE cycles simulated.
    pub total_busy_pe_cycles: u64,
    /// Total wall-clock milliseconds.
    pub total_wall_ms: f64,
    /// Wall-clock milliseconds spent planning layers during the primary run.
    pub plan_ms: f64,
    /// Simulated busy cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// One-shot (`execute_network_threaded`: compile + run) wall-clock over
    /// the swept worker counts (see [`bench_thread_counts`]); every swept
    /// run's output is asserted identical to the primary run's.
    pub thread_scaling: Vec<ThreadTiming>,
    /// Whether every layer's measured MACs agree with the analytic model.
    pub cross_check_consistent: bool,
    /// Simulated speedup over the Eyeriss baseline (machine layers only).
    pub simulated_speedup: f64,
    /// Simulated energy reduction over the Eyeriss baseline.
    pub simulated_energy_reduction: f64,
}

/// Runs the DCGAN generator end to end on the cycle-level machine — full
/// size, or channel-capped at 64 with `quick` for CI smoke runs — and
/// packages the [`SimulatedComparison`] into a serializable report, plus a
/// one-shot thread-count sweep over `thread_counts`.
pub fn network_bench(quick: bool, thread_counts: &[usize]) -> NetworkBenchReport {
    let generator = zoo::dcgan().generator;
    let network = if quick {
        generator
            .reduced(64)
            .expect("DCGAN generator reduces cleanly")
    } else {
        generator
    };
    let weights = network_weights(&network, 2027);
    let input = deterministic_tensor(network.input_shape(), 4099);
    let report =
        SimulatedComparison::run(&network, &input, &weights).expect("DCGAN generator executes");
    let execution = &report.execution;
    let machine = GanaxMachine::paper();
    let thread_scaling: Vec<ThreadTiming> = {
        let timed: Vec<(usize, f64)> = thread_counts
            .iter()
            .map(|&threads| {
                let start = Instant::now();
                let run = machine
                    .execute_network_threaded(&network, &input, &weights, threads)
                    .expect("swept run executes");
                let ms = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    run.output, execution.output,
                    "{threads}-thread sweep diverged from the primary run"
                );
                (threads, ms)
            })
            .collect();
        // Normalize to the sweep's true single-threaded point (matching
        // `machine_bench`'s semantics); without one the rows report 1.0.
        let serial_ms = timed.iter().find(|(t, _)| *t == 1).map(|&(_, ms)| ms);
        timed
            .into_iter()
            .map(|(threads, ms)| ThreadTiming {
                threads,
                ms,
                speedup_vs_serial: serial_ms.map_or(1.0, |serial| serial / ms),
            })
            .collect()
    };
    let rows = network
        .layer_shapes()
        .into_iter()
        .zip(&execution.layers)
        .map(|((_, input, output), l)| NetworkBenchRow {
            layer: l.name.clone(),
            geometry: format!("{input} -> {output}"),
            host: l.host,
            is_tconv: l.is_tconv,
            busy_pe_cycles: l.busy_pe_cycles,
            work_units: l.work_units,
            balance: l.balance,
            wall_ms: l.wall_seconds * 1e3,
        })
        .collect();
    NetworkBenchReport {
        bench: "network".to_string(),
        network: execution.network.clone(),
        quick,
        threads: execution.threads,
        rows,
        total_busy_pe_cycles: execution.total_busy_pe_cycles(),
        total_wall_ms: execution.wall_seconds * 1e3,
        plan_ms: execution.plan_seconds * 1e3,
        cycles_per_sec: execution.cycles_per_second(),
        thread_scaling,
        cross_check_consistent: report.is_consistent(),
        simulated_speedup: report.simulated_speedup(),
        simulated_energy_reduction: report.simulated_energy_reduction(),
    }
}

/// One warm-path thread-scaling row of `BENCH_serve.json`: single-inference
/// latency on a cached [`ganax::CompiledNetwork`] at one pool size.
#[derive(Debug, Clone, Serialize)]
pub struct ServeThreadRow {
    /// Pool workers in the engine.
    pub threads: usize,
    /// Warm single-inference wall-clock milliseconds (best of 2).
    pub warm_ms: f64,
    /// Warm single-inference throughput (`1e3 / warm_ms`).
    pub inferences_per_sec: f64,
}

/// One batched-execution row of `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBatchRow {
    /// Inferences in the batch.
    pub batch: usize,
    /// Pool workers in the engine.
    pub threads: usize,
    /// Batch wall-clock milliseconds.
    pub wall_ms: f64,
    /// Batch throughput in inferences per second.
    pub inferences_per_sec: f64,
    /// Batch throughput over the **same pool's** warm serial throughput
    /// (one inference at a time on the batch pool): > 1.0 means a server
    /// holding this pool gains by batching instead of serving sequentially.
    pub speedup_vs_warm_serial: f64,
    /// Batch throughput over the **best** warm serial throughput across the
    /// swept pool sizes (`thread_rows`) — the honest cross-configuration
    /// comparison; on a single-core host this can dip below 1.0 even when
    /// same-pool batching wins.
    pub speedup_vs_best_serial: f64,
}

/// One offered-load row of `BENCH_serve.json`: a [`ganax::serve::Server`]
/// under a seeded Poisson arrival schedule at one arrival rate, in one
/// dispatch mode.
#[derive(Debug, Clone, Serialize)]
pub struct OfferedLoadRow {
    /// Dispatch mode: `"batched"` (wave coalescing, `max_batch` 8) or
    /// `"serial"` (`max_batch` 1 — per-request dispatch on the same pool).
    pub mode: String,
    /// Pool workers behind the server.
    pub threads: usize,
    /// Offered load in requests per second (the Poisson arrival rate).
    pub arrival_rate_per_sec: f64,
    /// Offered load relative to the pool's measured serial capacity.
    pub load_factor: f64,
    /// Requests in the schedule (all completed — asserted).
    pub requests: usize,
    /// Waves the server dispatched.
    pub waves: u64,
    /// Mean requests per wave (1.0 in serial mode).
    pub mean_wave: f64,
    /// Largest wave dispatched.
    pub max_wave: usize,
    /// Median end-to-end latency (submit → resolve) in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile end-to-end latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Completed requests per second, first submission to last resolution.
    pub throughput_per_sec: f64,
    /// Whether every response matched the engine baseline bit for bit
    /// (asserted, so a recorded row always says `true`).
    pub bit_identical: bool,
}

/// One fault-tolerance row of `BENCH_serve.json`: the async server serving a
/// fixed burst of requests while the machine injects **maskable** faults
/// (NaN poison, worker panics, worker stalls) at one seeded rate. Recovery
/// is exercised end to end — retried waves, respawned workers, requeued
/// shards — and every response is asserted bit-identical to the fault-free
/// baseline before the row is recorded.
#[derive(Debug, Clone, Serialize)]
pub struct FaultToleranceRow {
    /// Injection rate in faults per million candidate sites (0 = the clean
    /// baseline row every other row is normalized against).
    pub rate_ppm: u32,
    /// Requests served (all completed — asserted; masked faults never
    /// surface as failures).
    pub requests: usize,
    /// Wave retries the server spent absorbing detected faults.
    pub retries: u64,
    /// Workers the engine supervisor respawned after injected panics.
    pub respawns: u64,
    /// Shards requeued onto the pool after worker deaths.
    pub requeued_shards: u64,
    /// Median end-to-end latency (submit → resolve) in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile end-to-end latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Completed requests per second, first submission to last resolution.
    pub throughput_per_sec: f64,
    /// Throughput relative to the clean row — the degradation curve
    /// (1.0 at rate 0, falling as the fault rate rises).
    pub throughput_vs_clean: f64,
    /// p99 latency relative to the clean row (1.0 at rate 0, rising with
    /// the fault rate).
    pub p99_vs_clean: f64,
    /// Whether every response matched the fault-free baseline bit for bit
    /// (asserted, so a recorded row always says `true`).
    pub bit_identical: bool,
}

/// The serving benchmark report behind `BENCH_serve.json`: cold (uncompiled,
/// pre-engine staged path) versus warm (cached-plan engine) single-inference
/// latency, warm thread scaling, batched throughput, and an offered-load
/// sweep of the async [`ganax::serve::Server`] — all on the DCGAN generator,
/// all bit-identical to the staged baseline (asserted before any number is
/// reported).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Benchmark family name.
    pub bench: String,
    /// Whether the quick (channel-capped) variant was used.
    pub quick: bool,
    /// Network served.
    pub network: String,
    /// Pool workers behind the headline cold/warm numbers
    /// (`available_parallelism`).
    pub threads: usize,
    /// Cold request latency in milliseconds (best of 2): the pre-engine
    /// staged path — plans rebuilt, per-layer scoped worker spawns, fresh
    /// PEs, operand streams re-gathered per output row.
    pub cold_ms: f64,
    /// Planning milliseconds inside the cold request.
    pub cold_plan_ms: f64,
    /// One-time [`ganax::CompiledNetwork::compile`] milliseconds.
    pub compile_ms: f64,
    /// First request on a fresh engine (pool spawn + compile + run), in
    /// milliseconds.
    pub first_request_ms: f64,
    /// Warm request latency in milliseconds (best of 3): cached plans,
    /// persistent pool, PEs and buffers reset in place.
    pub warm_ms: f64,
    /// Planning milliseconds during warm runs — asserted to be exactly zero
    /// (the plan cache was hit).
    pub warm_plan_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup_warm_vs_cold: f64,
    /// Warm single-inference throughput at the headline pool size.
    pub warm_inferences_per_sec: f64,
    /// Busy PE cycles of one inference.
    pub busy_pe_cycles: u64,
    /// Simulated busy cycles per wall-clock second on the warm path.
    pub warm_cycles_per_sec: f64,
    /// Whether every engine path reproduced the staged baseline bit for bit
    /// (outputs, busy cycles and counters) — asserted, so a recorded report
    /// always says `true`.
    pub bit_identical: bool,
    /// Warm latency across the swept pool sizes.
    pub thread_rows: Vec<ServeThreadRow>,
    /// Batched throughput rows (pool of `max(4, available)` workers).
    pub batch_rows: Vec<ServeBatchRow>,
    /// Offered-load sweep: `"batched"` and `"serial"` dispatch at each
    /// arrival rate, on same-sized pools.
    pub offered_load: Vec<OfferedLoadRow>,
    /// Batched-wave throughput over serial per-request throughput at the
    /// highest recorded arrival rate — the dynamic-batching payoff under
    /// saturation.
    pub offered_load_peak_speedup: f64,
    /// Fault-tolerance sweep (`--faults`): throughput and tail-latency
    /// degradation versus seeded fault rate, with recovery activity per
    /// row. Empty when the sweep was not requested.
    pub fault_tolerance: Vec<FaultToleranceRow>,
    /// Computation-integrity report: the ABFT verification tax on the warm
    /// path, and — with `--faults` — the silent-corruption sweep.
    pub integrity: IntegrityReport,
}

/// One silent-corruption row of the `integrity` section: a fresh
/// `VerifyAndHeal` [`Server`] serving one request while a seeded, sparse,
/// layer-targeted finite-bit-flip schedule corrupts operand or weight
/// streams. Every consequential flip must be flagged by the ABFT checksums
/// and healed by surgical re-execution: the response is asserted
/// bit-identical to the clean baseline and the undetected counter asserted
/// zero before the row is recorded — zero silent escapes, end to end.
#[derive(Debug, Clone, Serialize)]
pub struct SilentCorruptionRow {
    /// Flip kind: `"input-flip"` (gathered operand streams) or
    /// `"weight-flip"` (staged weight streams, shared across rows).
    pub kind: String,
    /// Seed of the flip schedule (empirically chosen — see
    /// [`integrity_bench`]).
    pub seed: u64,
    /// Machine layer index the schedule targets.
    pub layer: i64,
    /// Per-site firing rate in parts per million.
    pub rate_ppm: u32,
    /// Bit flips actually injected while serving the request.
    pub injected: u64,
    /// Checksum verifications performed.
    pub checks: u64,
    /// Row-slice checksum violations flagged (detections).
    pub detected: u64,
    /// Output-row slices re-executed and healed back to the clean result.
    pub rows_healed: u64,
    /// Corruption that escaped the checksums and was caught only by the
    /// downstream finite-value screen — asserted zero.
    pub undetected: u64,
    /// Whether the served response matched the fault-free baseline bit for
    /// bit (asserted, so a recorded row always says `true`).
    pub bit_identical: bool,
}

/// The `integrity` section of `BENCH_serve.json`: what ABFT verification
/// costs on the warm path, and what it catches under seeded silent
/// corruption.
#[derive(Debug, Clone, Serialize)]
pub struct IntegrityReport {
    /// Warm request latency with integrity checking off, in milliseconds
    /// (best of 3), measured on a fresh engine immediately before the
    /// `Verify`-mode twin — a paired measurement, so host-load drift over
    /// the bench run cannot masquerade as checksum cost.
    pub off_warm_ms: f64,
    /// Warm request latency in `Verify` mode, in milliseconds (best of 3),
    /// on an identical fresh engine.
    pub verify_warm_ms: f64,
    /// `verify_warm_ms / off_warm_ms - 1.0`: the verification tax. Asserted
    /// ≤ 0.15 on the full-size network (quick timings on shared CI hosts
    /// are too jittery to gate).
    pub verify_overhead: f64,
    /// Checksum verifications one `Verify`-mode inference performs.
    pub checks_per_inference: u64,
    /// Silent-corruption sweep (`--faults`): seeded finite-bit-flip
    /// schedules served under `VerifyAndHeal`, each asserted to end
    /// bit-identical with zero undetected escapes. Empty when the sweep was
    /// not requested.
    pub corruption: Vec<SilentCorruptionRow>,
    /// Total flips injected across the sweep.
    pub flips_injected: u64,
    /// Total checksum violations flagged across the sweep.
    pub flips_detected: u64,
    /// Detected over injected — the recorded detection coverage. The
    /// sweep's schedules are chosen so every consequential flip sits above
    /// the checksum tolerance (asserted via bit-identity), so coverage
    /// below 1.0 reflects flips that perturbed no output bit, not escapes.
    pub detection_coverage: f64,
}

/// Runs the serving benchmark on the DCGAN generator (channel-capped at 64
/// with `quick`): cold staged baseline, warm engine requests, a warm
/// thread-scaling sweep over `thread_counts`, and batched execution of
/// `batch_size` inferences on a `max(4, available)`-worker pool.
///
/// Every engine run is asserted bit-identical (output, busy cycles,
/// counters) to the staged baseline before its timing is reported, and warm
/// runs are asserted to perform zero planning.
///
/// With `faults`, the report additionally carries the fault-tolerance sweep
/// ([`fault_tolerance_bench`]): the async server under seeded maskable
/// fault schedules at increasing rates, recording the throughput and p99
/// degradation curve.
///
/// The `integrity` section ([`integrity_bench`]) always records the ABFT
/// verification tax; with `faults` it additionally runs the
/// silent-corruption sweep — seeded finite-bit-flip schedules served under
/// `VerifyAndHeal`, asserted to end bit-identical with zero undetected
/// escapes.
pub fn serve_bench(
    quick: bool,
    thread_counts: &[usize],
    batch_size: usize,
    faults: bool,
) -> ServeBenchReport {
    let generator = zoo::dcgan().generator;
    let network = if quick {
        generator
            .reduced(64)
            .expect("DCGAN generator reduces cleanly")
    } else {
        generator
    };
    let weights = network_weights(&network, 2027);
    let input = deterministic_tensor(network.input_shape(), 4099);
    let machine = GanaxMachine::paper();
    let threads = available_parallelism();

    // Cold: what one request costs without a compiled artifact.
    let (cold, cold_ms) = time_best_of(2, || {
        machine
            .execute_network_staged(&network, &input, &weights, threads)
            .expect("staged path executes the generator")
    });

    // Warm: compile once, serve from the cached artifact.
    let engine = InferenceEngine::new(machine, threads);
    let compile_start = Instant::now();
    let compiled = engine
        .compile(&network, &weights)
        .expect("network compiles");
    let compile_ms = compile_start.elapsed().as_secs_f64() * 1e3;
    let mut warm_plan_ms = 0.0f64;
    let (warm, warm_ms) = time_best_of(3, || {
        let run = engine
            .execute(&compiled, &input)
            .expect("warm request executes");
        warm_plan_ms = warm_plan_ms.max(run.plan_seconds * 1e3);
        run
    });
    assert_eq!(
        warm_plan_ms, 0.0,
        "warm runs must not plan: the plan cache was missed"
    );
    // The planning work must actually exist and land at compile time — this
    // keeps the zero-warm-planning gate above from being satisfiable by a
    // path that simply stopped accounting for planning altogether.
    assert!(
        compile_ms > 0.0 && cold.plan_seconds > 0.0,
        "planning cost vanished: compile {compile_ms} ms, cold plan {} s",
        cold.plan_seconds
    );
    assert_eq!(warm.output, cold.output, "warm output diverged from cold");
    assert_eq!(warm.total_counts(), cold.total_counts(), "counter drift");
    assert_eq!(warm.total_busy_pe_cycles(), cold.total_busy_pe_cycles());

    // First request on a fresh engine: pool spawn + compile + run.
    let (_, first_request_ms) = time_best_of(1, || {
        let fresh = InferenceEngine::new(machine, threads);
        let artifact = fresh.compile(&network, &weights).expect("network compiles");
        fresh
            .execute(&artifact, &input)
            .expect("first request executes")
    });

    // Warm thread scaling: the artifact is engine-independent, so one
    // compile serves every pool size.
    let thread_rows: Vec<ServeThreadRow> = thread_counts
        .iter()
        .map(|&t| {
            let pool = InferenceEngine::new(machine, t);
            let (run, ms) = time_best_of(2, || {
                pool.execute(&compiled, &input).expect("swept run executes")
            });
            assert_eq!(run.output, cold.output, "{t}-thread output diverged");
            ServeThreadRow {
                threads: t,
                warm_ms: ms,
                inferences_per_sec: 1e3 / ms,
            }
        })
        .collect();

    // Batched throughput on a 4+-worker pool, versus the same pool serving
    // the batch one inference at a time.
    let batch_threads = threads.max(4);
    let batch_pool = InferenceEngine::new(machine, batch_threads);
    let (_, serial_ms) = time_best_of(2, || {
        batch_pool
            .execute(&compiled, &input)
            .expect("serial baseline executes")
    });
    let inputs: Vec<Tensor> = (0..batch_size.max(1))
        .map(|k| deterministic_tensor(network.input_shape(), 4099 + 31 * k as u64))
        .collect();
    let singles: Vec<Tensor> = inputs
        .iter()
        .map(|one| {
            batch_pool
                .execute(&compiled, one)
                .expect("per-element baseline executes")
                .output
        })
        .collect();
    let (batch, batch_wall_ms) = time_best_of(1, || {
        batch_pool
            .execute_batch(&compiled, &inputs)
            .expect("batch executes")
    });
    for (b, single) in batch.outputs.iter().zip(&singles) {
        assert_eq!(b, single, "batched element diverged from serial execution");
    }
    let batch_throughput = inputs.len() as f64 / (batch_wall_ms / 1e3);
    let best_serial_throughput = thread_rows
        .iter()
        .map(|r| r.inferences_per_sec)
        .fold(1e3 / serial_ms, f64::max);
    let batch_rows = vec![ServeBatchRow {
        batch: inputs.len(),
        threads: batch_threads,
        wall_ms: batch_wall_ms,
        inferences_per_sec: batch_throughput,
        speedup_vs_warm_serial: batch_throughput / (1e3 / serial_ms),
        speedup_vs_best_serial: batch_throughput / best_serial_throughput,
    }];

    // Offered load: the async server under seeded Poisson arrivals —
    // batched wave dispatch versus serial per-request dispatch, on
    // same-sized pools.
    let (offered_load, offered_load_peak_speedup) =
        offered_load_sweep(machine, &network, &weights, batch_threads);

    let fault_tolerance = if faults {
        fault_tolerance_bench(&network, &weights, batch_threads, quick)
    } else {
        Vec::new()
    };

    let integrity = integrity_bench(&network, &weights, &warm.output, threads, quick, faults);

    ServeBenchReport {
        bench: "serve".to_string(),
        quick,
        network: network.name().to_string(),
        threads,
        cold_ms,
        cold_plan_ms: cold.plan_seconds * 1e3,
        compile_ms,
        first_request_ms,
        warm_ms,
        warm_plan_ms,
        speedup_warm_vs_cold: cold_ms / warm_ms,
        warm_inferences_per_sec: 1e3 / warm_ms,
        busy_pe_cycles: warm.total_busy_pe_cycles(),
        warm_cycles_per_sec: warm.total_busy_pe_cycles() as f64 / (warm_ms / 1e3),
        bit_identical: true,
        thread_rows,
        batch_rows,
        offered_load,
        offered_load_peak_speedup,
        fault_tolerance,
        integrity,
    }
}

/// The fault-injection rates of the fault-tolerance sweep, in faults per
/// million candidate sites. Rate 0 is the clean baseline row.
pub const FAULT_SWEEP_RATES_PPM: [u32; 3] = [0, 20_000, 100_000];

/// Runs the fault-tolerance sweep behind `bench_serve --faults`: for each
/// rate in [`FAULT_SWEEP_RATES_PPM`], a fresh async [`Server`] over a
/// machine injecting seeded **maskable** faults (NaN poison, worker panics,
/// worker stalls) serves the same burst of requests. The self-healing stack
/// absorbs every fault — retried waves run on a clean epoch, panicked
/// workers are respawned and their shards requeued — so every response is
/// asserted bit-identical to the fault-free baseline and zero requests fail;
/// the rows record what the absorption *costs* in throughput and p99.
pub fn fault_tolerance_bench(
    network: &Network,
    weights: &NetworkWeights,
    pool_threads: usize,
    quick: bool,
) -> Vec<FaultToleranceRow> {
    let n = if quick { 6 } else { 10 };
    let inputs: Vec<Tensor> = (0..n as u64)
        .map(|i| deterministic_tensor(network.input_shape(), 70_001 + 31 * i))
        .collect();
    let probe = InferenceEngine::new(GanaxMachine::paper(), pool_threads);
    let compiled = probe.compile(network, weights).expect("network compiles");
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|input| {
            probe
                .execute(&compiled, input)
                .expect("baseline executes")
                .output
        })
        .collect();
    drop(probe);

    let kinds = FaultKind::NAN_POISON | FaultKind::WORKER_PANIC | FaultKind::WORKER_STALL;
    // Each detected-NaN retry advances the armed-site frontier by at least
    // one layer, and a shard-requeue cap exhaustion can burn one more
    // attempt — budget generously so masked faults never become failures.
    let max_retries = network.layers().len() as u32 + 3;
    let mut rows: Vec<FaultToleranceRow> = Vec::new();
    for &rate_ppm in &FAULT_SWEEP_RATES_PPM {
        let spec = FaultSpec::seeded(0xFA017 + rate_ppm as u64, rate_ppm, kinds);
        let machine = GanaxMachine::new(
            GanaxConfig::paper()
                .with_fault(spec)
                .expect("sweep spec is valid"),
        );
        let config = ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(2),
            max_retries,
            retry_backoff: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let server = Server::new(InferenceEngine::new(machine, pool_threads), config)
            .expect("server builds");
        let model = server
            .register(network, weights)
            .expect("the network registers");

        let start = Instant::now();
        let tickets: Vec<_> = inputs
            .iter()
            .map(|input| server.submit(model, input.clone()).expect("queue has room"))
            .collect();
        let mut latencies_ms = Vec::with_capacity(n);
        for (ticket, expected) in tickets.into_iter().zip(&expected) {
            let response = ticket.wait().expect("masked faults never fail requests");
            assert_eq!(
                &response.output, expected,
                "a masked fault leaked into the output at {rate_ppm} ppm"
            );
            latencies_ms.push(response.latency_seconds * 1e3);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let stats = server.stats();
        assert_eq!(stats.failed, 0, "masked faults must not fail: {stats:?}");
        assert_eq!(stats.completed, n as u64);
        latencies_ms.sort_by(f64::total_cmp);
        let throughput = n as f64 / elapsed;
        let p99 = percentile(&latencies_ms, 0.99);
        let (clean_throughput, clean_p99) = rows
            .first()
            .map(|clean: &FaultToleranceRow| (clean.throughput_per_sec, clean.p99_latency_ms))
            .unwrap_or((throughput, p99));
        rows.push(FaultToleranceRow {
            rate_ppm,
            requests: n,
            retries: stats.retries,
            respawns: stats.respawns,
            requeued_shards: stats.requeued_shards,
            p50_latency_ms: percentile(&latencies_ms, 0.50),
            p99_latency_ms: p99,
            throughput_per_sec: throughput,
            throughput_vs_clean: throughput / clean_throughput,
            p99_vs_clean: p99 / clean_p99,
            bit_identical: true,
        });
    }
    rows
}

/// The silent-corruption schedules of the `integrity` section, per
/// geometry: `(kind, seed, layer, rate_ppm)`. Each is a sparse,
/// layer-targeted finite-bit-flip schedule that was empirically verified
/// (see the seed-scan helper in `tests/integrity_scan.rs`) to inject at least
/// one flip, flag at least one checksum violation, and heal back to the
/// bit-exact clean output — a flip below the checksum tolerance that still
/// flipped an output bit would fail the sweep's bit-identity assertion, so
/// the hard-coded choice is re-proven on every run. The targeted layers are
/// DCGAN's `tconv1`/`tconv4` (machine layers 1 and 4), whose short
/// accumulation chains give the tightest tolerances.
const CORRUPTION_SCHEDULES_QUICK: [(u32, u64, i64, u32); 4] = [
    (FaultKind::INPUT_FLIP, 13, 1, 100),
    (FaultKind::INPUT_FLIP, 11, 4, 100),
    (FaultKind::WEIGHT_FLIP, 2, 4, 100),
    (FaultKind::WEIGHT_FLIP, 6, 4, 100),
];
/// Full-size counterpart of [`CORRUPTION_SCHEDULES_QUICK`]; the geometry
/// changes every site hash, so the seeds differ.
const CORRUPTION_SCHEDULES_FULL: [(u32, u64, i64, u32); 4] = [
    (FaultKind::INPUT_FLIP, 3, 4, 100),
    (FaultKind::INPUT_FLIP, 11, 4, 100),
    (FaultKind::WEIGHT_FLIP, 10, 4, 100),
    (FaultKind::INPUT_FLIP, 19, 4, 100),
];

/// Runs the `integrity` section of `BENCH_serve.json`.
///
/// Always measures the ABFT verification tax as a **paired** comparison:
/// fresh `Off`- and `Verify`-mode engines are timed back to back on the
/// same warm request (best of 3 each), so host-load drift over the long
/// bench run cannot masquerade as checksum cost. The verified output is
/// asserted bit-identical to `expected` and the ratio asserted ≤ 1.15 on
/// the full-size network.
///
/// With `faults`, additionally runs the silent-corruption sweep: for each
/// schedule in `CORRUPTION_SCHEDULES_QUICK` / `CORRUPTION_SCHEDULES_FULL`,
/// a fresh `VerifyAndHeal` [`Server`] over a flip-injecting machine serves
/// one request. Detected violations heal below the serve retry layer
/// (asserted: zero retries, zero failures); the response is asserted
/// bit-identical to the clean baseline and the undetected counter asserted
/// zero — no corruption reaches the client, loudly or silently.
pub fn integrity_bench(
    network: &Network,
    weights: &NetworkWeights,
    expected: &Tensor,
    pool_threads: usize,
    quick: bool,
    faults: bool,
) -> IntegrityReport {
    let input = deterministic_tensor(network.input_shape(), 4099);

    // The verification tax: identical fresh engines, timed back to back,
    // differing only in IntegrityMode.
    let off_engine = InferenceEngine::new(GanaxMachine::paper(), pool_threads);
    let off_compiled = off_engine
        .compile(network, weights)
        .expect("network compiles");
    let (off_run, off_warm_ms) = time_best_of(3, || {
        off_engine
            .execute(&off_compiled, &input)
            .expect("off-mode warm request executes")
    });
    assert_eq!(&off_run.output, expected, "Off mode diverged from headline");
    drop(off_engine);

    let verify_engine = InferenceEngine::new(
        GanaxMachine::new(
            GanaxConfig::paper()
                .with_integrity(IntegrityMode::Verify)
                .expect("integrity mode is valid"),
        ),
        pool_threads,
    );
    let compiled = verify_engine
        .compile(network, weights)
        .expect("network compiles");
    let (verify_run, verify_warm_ms) = time_best_of(3, || {
        verify_engine
            .execute(&compiled, &input)
            .expect("verified warm request executes")
    });
    assert_eq!(
        &verify_run.output, expected,
        "Verify mode changed the served output"
    );
    assert!(
        verify_engine.integrity_violations() == 0 && verify_engine.integrity_undetected() == 0,
        "clean verified runs must not flag violations"
    );
    let checks = verify_engine.integrity_checks();
    assert!(checks > 0, "Verify mode performed no checksum checks");
    let checks_per_inference = checks / 3;
    let verify_overhead = verify_warm_ms / off_warm_ms - 1.0;
    if !quick {
        assert!(
            verify_overhead <= 0.15,
            "verification tax {verify_overhead:.3} exceeds the 15% budget \
             (off {off_warm_ms:.1} ms, verify {verify_warm_ms:.1} ms)"
        );
    }
    drop(verify_engine);

    let schedules: &[(u32, u64, i64, u32)] = if quick {
        &CORRUPTION_SCHEDULES_QUICK
    } else {
        &CORRUPTION_SCHEDULES_FULL
    };
    let mut corruption = Vec::new();
    if faults {
        for &(kind, seed, layer, rate_ppm) in schedules {
            let spec = FaultSpec {
                layer,
                ..FaultSpec::seeded(seed, rate_ppm, kind)
            };
            let machine = GanaxMachine::new(
                GanaxConfig::paper()
                    .with_fault(spec)
                    .expect("flip spec is valid"),
            );
            let config = ServeConfig {
                integrity: IntegrityMode::VerifyAndHeal,
                ..ServeConfig::default()
            };
            let server = Server::new(InferenceEngine::new(machine, pool_threads), config)
                .expect("server builds");
            let model = server
                .register(network, weights)
                .expect("the network registers");
            let response = server
                .submit(model, input.clone())
                .expect("queue has room")
                .wait()
                .expect("healed corruption must not fail the request");
            assert_eq!(
                &response.output, expected,
                "corruption escaped into the served response (seed {seed})"
            );
            let stats = server.stats();
            assert_eq!(stats.failed, 0, "no request may fail: {stats:?}");
            assert_eq!(
                stats.retries, 0,
                "healing must happen below the serve retry layer"
            );
            assert!(
                stats.rows_healed > 0,
                "schedule (seed {seed}) detected nothing — stale seed choice?"
            );
            assert_eq!(
                stats.integrity_undetected, 0,
                "corruption escaped the checksums (seed {seed})"
            );
            let injected = server.engine().injected_faults();
            assert!(injected > 0, "schedule (seed {seed}) is inert");
            corruption.push(SilentCorruptionRow {
                kind: if kind == FaultKind::INPUT_FLIP {
                    "input-flip".to_string()
                } else {
                    "weight-flip".to_string()
                },
                seed,
                layer,
                rate_ppm,
                injected,
                checks: stats.integrity_checks,
                detected: stats.integrity_violations,
                rows_healed: stats.rows_healed,
                undetected: stats.integrity_undetected,
                bit_identical: true,
            });
        }
    }

    let flips_injected: u64 = corruption.iter().map(|r| r.injected).sum();
    let flips_detected: u64 = corruption.iter().map(|r| r.detected).sum();
    IntegrityReport {
        off_warm_ms,
        verify_warm_ms,
        verify_overhead,
        checks_per_inference,
        corruption,
        flips_injected,
        flips_detected,
        detection_coverage: if flips_injected > 0 {
            flips_detected as f64 / flips_injected as f64
        } else {
            0.0
        },
    }
}

/// Base seed of the offered-load input stream; request `i` of every
/// offered-load case reuses input `i`, so one set of engine baselines
/// validates every row.
const OFFERED_INPUT_SEED: u64 = 90_001;

/// `n` seeded exponential interarrival gaps (a Poisson process) at `rate`
/// requests per second, in seconds.
fn exponential_interarrivals(rate_per_sec: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            // A 53-bit mantissa draw in [0, 1); the (1 - u) flip keeps ln
            // away from zero.
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            -(1.0 - u).ln() / rate_per_sec
        })
        .collect()
}

/// Nearest-rank percentile of an ascending latency list.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs one offered-load case: a fresh [`Server`] over a
/// `pool_threads`-worker engine, driven by the seeded arrival schedule, with
/// every response asserted bit-identical to `expected` and plan-free.
#[allow(clippy::too_many_arguments)]
fn offered_load_case(
    machine: GanaxMachine,
    network: &Network,
    weights: &NetworkWeights,
    expected: &[Tensor],
    pool_threads: usize,
    batched: bool,
    rate_per_sec: f64,
    load_factor: f64,
    window: Duration,
    seed: u64,
) -> OfferedLoadRow {
    let n = expected.len();
    let config = if batched {
        ServeConfig {
            max_batch: 8,
            batch_window: window,
            ..ServeConfig::default()
        }
    } else {
        // Serial per-request dispatch on the same pool: every wave is one
        // request, exactly what a server without coalescing would do.
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        }
    };
    let server =
        Server::new(InferenceEngine::new(machine, pool_threads), config).expect("server builds");
    let model = server
        .register(network, weights)
        .expect("the generator registers");

    let gaps = exponential_interarrivals(rate_per_sec, n, seed);
    let start = Instant::now();
    let mut due = 0.0f64;
    let mut tickets = Vec::with_capacity(n);
    for (i, gap) in gaps.into_iter().enumerate() {
        due += gap;
        if let Some(wait) = Duration::from_secs_f64(due).checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let input = deterministic_tensor(network.input_shape(), OFFERED_INPUT_SEED + 31 * i as u64);
        tickets.push(server.submit(model, input).expect("queue has room"));
    }
    let mut latencies_ms = Vec::with_capacity(n);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().expect("request succeeds");
        assert_eq!(
            response.output, expected[i],
            "offered-load response {i} diverged from the engine baseline"
        );
        assert_eq!(response.plan_seconds, 0.0, "warm serving must not plan");
        latencies_ms.push(response.latency_seconds * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.completed, n as u64, "every request completes");
    latencies_ms.sort_by(f64::total_cmp);
    OfferedLoadRow {
        mode: if batched { "batched" } else { "serial" }.to_string(),
        threads: pool_threads,
        arrival_rate_per_sec: rate_per_sec,
        load_factor,
        requests: n,
        waves: stats.waves,
        mean_wave: stats.mean_wave(),
        max_wave: stats.max_wave,
        p50_latency_ms: percentile(&latencies_ms, 0.50),
        p99_latency_ms: percentile(&latencies_ms, 0.99),
        throughput_per_sec: n as f64 / elapsed,
        bit_identical: true,
    }
}

/// The offered-load sweep behind `BENCH_serve.json`: calibrates the pool's
/// serial capacity, then drives batched and serial servers through the same
/// seeded arrival schedules at sub-capacity, near-capacity and saturating
/// rates. Returns the rows plus the batched-over-serial throughput ratio at
/// the highest rate.
fn offered_load_sweep(
    machine: GanaxMachine,
    network: &Network,
    weights: &NetworkWeights,
    pool_threads: usize,
) -> (Vec<OfferedLoadRow>, f64) {
    // Calibration doubles as baseline collection: each timed probe run is
    // also the expected output the served responses must reproduce.
    let probe = InferenceEngine::new(machine, pool_threads);
    let compiled = probe.compile(network, weights).expect("network compiles");
    let load_points = [(0.8, 4usize), (1.5, 6), (4.0, 12)];
    let n_max = load_points.iter().map(|&(_, n)| n).max().unwrap_or(0);
    let mut serial_seconds = 0.0;
    let expected: Vec<Tensor> = (0..n_max)
        .map(|i| {
            let input =
                deterministic_tensor(network.input_shape(), OFFERED_INPUT_SEED + 31 * i as u64);
            let run_start = Instant::now();
            let run = probe.execute(&compiled, &input).expect("baseline executes");
            serial_seconds += run_start.elapsed().as_secs_f64();
            run.output
        })
        .collect();
    drop(probe);
    let serial_latency = serial_seconds / n_max as f64;
    let capacity_per_sec = 1.0 / serial_latency;
    // The coalescing budget scales with service time: long enough to form
    // waves under load, short enough to stay invisible next to one service.
    let window = Duration::from_secs_f64((serial_latency * 0.02).clamp(0.002, 0.050));

    let mut rows = Vec::new();
    for (k, &(load_factor, n)) in load_points.iter().enumerate() {
        let rate = load_factor * capacity_per_sec;
        for batched in [true, false] {
            rows.push(offered_load_case(
                machine,
                network,
                weights,
                &expected[..n],
                pool_threads,
                batched,
                rate,
                load_factor,
                window,
                // Both modes replay the identical arrival schedule.
                0xA11CE + 1_000 * k as u64,
            ));
        }
    }
    let peak = rows.len() - 2;
    let peak_speedup = rows[peak].throughput_per_sec / rows[peak + 1].throughput_per_sec;
    (rows, peak_speedup)
}

/// The design-space geometries the sweep bench covers: the paper's 16 × 16
/// point plus wide/tall/small/large variations of the PV (MIMD) and lane
/// (SIMD) dimensions — 8 points in total.
pub fn sweep_bench_geometries() -> Vec<(usize, usize)> {
    vec![
        (16, 16),
        (8, 8),
        (8, 16),
        (16, 8),
        (8, 32),
        (32, 8),
        (16, 32),
        (32, 16),
    ]
}

/// The design-space sweep report behind `BENCH_sweep.json`: every design
/// point × network cell, the per-point summaries with the Pareto front over
/// (geomean speedup, geomean energy reduction), and — outside `--quick` —
/// cycle-level machine spot checks on reduced generators.
#[derive(Debug, Clone, Serialize)]
pub struct SweepBenchReport {
    /// Benchmark family name.
    pub bench: String,
    /// Whether the quick variant was used (fewer networks, no machine spot
    /// checks).
    pub quick: bool,
    /// Networks swept (canonical Table I names).
    pub networks: Vec<String>,
    /// Every (design point, network) cell.
    pub cells: Vec<SweepCell>,
    /// Per-design-point summaries, Pareto-flagged.
    pub designs: Vec<DesignSummary>,
    /// Labels of the Pareto-optimal design points.
    pub pareto_front: Vec<String>,
    /// Cycle-level spot checks (empty with `quick`).
    pub machine_spot_checks: Vec<MachineSweepCell>,
    /// Total wall-clock milliseconds of the sweep.
    pub wall_ms: f64,
}

/// Runs the design-space sweep: [`sweep_bench_geometries`] × two zoo
/// networks with `quick` (the analytic sweep only), or × the whole Table I
/// zoo plus cycle-level machine spot checks (reduced generators, channel cap
/// 8) without it.
pub fn sweep_bench(quick: bool) -> SweepBenchReport {
    let start = Instant::now();
    let networks: Vec<&str> = if quick {
        vec!["DCGAN", "3D-GAN"]
    } else {
        vec!["3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN"]
    };
    let spec = SweepSpec::geometry_grid(&sweep_bench_geometries(), &networks)
        .expect("bench sweep spec is valid");
    let result = spec.run();
    let machine_spot_checks = if quick {
        Vec::new()
    } else {
        // Ground the extreme geometries (and the paper point) in the
        // cycle-level machine on the reduced DCGAN generator.
        let spot_spec = SweepSpec::geometry_grid(&[(16, 16), (8, 8), (32, 16)], &["DCGAN"])
            .expect("spot-check spec is valid");
        spot_spec
            .machine_spot_checks(8)
            .expect("reduced generators execute on the machine")
    };
    SweepBenchReport {
        bench: "sweep".to_string(),
        quick,
        networks: result.networks.clone(),
        pareto_front: result
            .pareto_front()
            .iter()
            .map(|d| d.design.clone())
            .collect(),
        cells: result.cells,
        designs: result.designs,
        machine_spot_checks,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Profiling aid for `bench_machine --fast-only`: repeatedly runs the serial
/// fast path on the largest bench geometry so a sampling profiler sees only
/// the hot path.
pub fn machine_fast_only_loop(quick: bool) {
    let machine = GanaxMachine::paper();
    let layer = machine_bench_layers(quick).pop().expect("bench layers");
    let (input, weights) = layer_tensors(&layer, 99);
    for _ in 0..5 {
        let run = machine
            .execute_layer_threaded(&layer, &input, &weights, 1)
            .expect("fast path executes the bench layer");
        std::hint::black_box(run.busy_pe_cycles);
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Formats a ratio with an `x` suffix.
pub fn ratio(x: f64) -> String {
    format!("{x:4.2}x")
}

/// All five energy-category labels (Figure 10 legend).
pub fn energy_labels() -> Vec<&'static str> {
    EnergyCategory::ALL.iter().map(|c| c.label()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_six_rows_and_sensible_average() {
        let (rows, average) = figure1();
        assert_eq!(rows.len(), 6);
        assert!(average > 0.6 && average < 0.9, "average = {average}");
    }

    #[test]
    fn figure8_geomeans_are_in_paper_ballpark() {
        let comparisons = all_comparisons();
        let (rows, speedup, energy) = figure8(&comparisons);
        assert_eq!(rows.len(), 6);
        assert!(
            speedup > 2.0 && speedup < 6.0,
            "speedup geomean = {speedup}"
        );
        assert!(energy > 1.8 && energy < 6.0, "energy geomean = {energy}");
    }

    #[test]
    fn figure9_rows_are_normalized() {
        let comparisons = all_comparisons();
        for row in figure9(&comparisons, false) {
            assert!((row.eyeriss_discriminative + row.eyeriss_generative - 1.0).abs() < 1e-9);
            assert!(row.ganax_discriminative + row.ganax_generative <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn figure10_has_five_units_per_model() {
        let comparisons = all_comparisons();
        let rows = figure10(&comparisons);
        assert_eq!(rows.len(), 6 * 5);
        assert_eq!(energy_labels().len(), 5);
    }

    #[test]
    fn figure11_shows_ganax_above_eyeriss() {
        let comparisons = all_comparisons();
        for row in figure11(&comparisons) {
            assert!(
                row.ganax_utilization > row.eyeriss_utilization,
                "{}",
                row.model
            );
        }
    }

    #[test]
    fn sweep_bench_quick_covers_the_acceptance_grid() {
        let report = sweep_bench(true);
        assert!(report.designs.len() >= 6, "need >= 6 design points");
        assert!(report.networks.len() >= 2, "need >= 2 zoo networks");
        assert_eq!(
            report.cells.len(),
            report.designs.len() * report.networks.len()
        );
        assert!(!report.pareto_front.is_empty());
        for cell in &report.cells {
            assert!(cell.speedup > 1.0, "{} on {}", cell.design, cell.network);
            assert!(cell.energy_reduction > 1.0);
        }
        assert!(report.machine_spot_checks.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(ratio(3.61), "3.61x");
    }
}
