//! Shared helpers for the GANAX benchmark harness.
//!
//! The `figures` binary and the Criterion benches both need the same
//! machinery: run every Table I GAN on both accelerator models and format the
//! results the way the paper's tables and figures report them. This crate
//! collects that machinery so the harness entry points stay small.
//!
//! ```
//! // Figure 1: fraction of transposed-convolution MACs that are
//! // inconsequential (multiply-by-zero), per GAN plus the zoo average.
//! let (rows, average) = ganax_bench::figure1();
//! assert_eq!(rows.len(), 6);
//! assert!(average > 0.5 && average < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use ganax::compare::{compare_all, geometric_mean, ModelComparison, SimulatedComparison};
use ganax::sweep::MachineSweepCell;
use ganax::{DesignSummary, GanaxMachine, NetworkWeights, SweepCell, SweepSpec};
use ganax_energy::EnergyCategory;
use ganax_models::{zoo, Layer, Network};
use ganax_tensor::{Shape, Tensor};
use serde::Serialize;

/// One row of the Figure 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// GAN name.
    pub model: String,
    /// Fraction of transposed-convolution MACs that are inconsequential.
    pub inconsequential_fraction: f64,
}

/// One row of the Figure 8 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// GAN name.
    pub model: String,
    /// Generator speedup of GANAX over Eyeriss (Figure 8a).
    pub speedup: f64,
    /// Generator energy reduction of GANAX over Eyeriss (Figure 8b).
    pub energy_reduction: f64,
}

/// One row of the Figure 9 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss discriminator share.
    pub eyeriss_discriminative: f64,
    /// Eyeriss generator share.
    pub eyeriss_generative: f64,
    /// GANAX discriminator share.
    pub ganax_discriminative: f64,
    /// GANAX generator share.
    pub ganax_generative: f64,
}

/// One row of the Figure 10 reproduction (normalized to the Eyeriss total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// GAN name.
    pub model: String,
    /// Unit label (PE, RegF, NoC, GBuf, DRAM).
    pub unit: &'static str,
    /// Eyeriss share of its own total.
    pub eyeriss: f64,
    /// GANAX share of the Eyeriss total.
    pub ganax: f64,
}

/// One row of the Figure 11 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// GAN name.
    pub model: String,
    /// Eyeriss average PE utilization on the generator.
    pub eyeriss_utilization: f64,
    /// GANAX average PE utilization on the generator.
    pub ganax_utilization: f64,
}

/// Runs the full zoo comparison once (shared by several figures).
pub fn all_comparisons() -> Vec<ModelComparison> {
    compare_all()
}

/// Figure 1 data: per-model inconsequential-MAC fractions plus the average.
pub fn figure1() -> (Vec<Fig1Row>, f64) {
    let rows: Vec<Fig1Row> = zoo::all_models()
        .iter()
        .map(|gan| Fig1Row {
            model: gan.name.clone(),
            inconsequential_fraction: gan.generator.op_stats().tconv_inconsequential_fraction(),
        })
        .collect();
    let average = rows.iter().map(|r| r.inconsequential_fraction).sum::<f64>() / rows.len() as f64;
    (rows, average)
}

/// Figure 8 data plus the geometric means.
pub fn figure8(comparisons: &[ModelComparison]) -> (Vec<Fig8Row>, f64, f64) {
    let rows: Vec<Fig8Row> = comparisons
        .iter()
        .map(|c| Fig8Row {
            model: c.gan_name.clone(),
            speedup: c.generator_speedup(),
            energy_reduction: c.generator_energy_reduction(),
        })
        .collect();
    let speedup_geomean = geometric_mean(rows.iter().map(|r| r.speedup));
    let energy_geomean = geometric_mean(rows.iter().map(|r| r.energy_reduction));
    (rows, speedup_geomean, energy_geomean)
}

/// Figure 9 data: runtime (`energy = false`) or energy (`energy = true`)
/// breakdown between discriminative and generative models.
pub fn figure9(comparisons: &[ModelComparison], energy: bool) -> Vec<Fig9Row> {
    comparisons
        .iter()
        .map(|c| {
            let ((e_disc, e_gen), (g_disc, g_gen)) = if energy {
                c.energy_breakdown()
            } else {
                c.runtime_breakdown()
            };
            Fig9Row {
                model: c.gan_name.clone(),
                eyeriss_discriminative: e_disc,
                eyeriss_generative: e_gen,
                ganax_discriminative: g_disc,
                ganax_generative: g_gen,
            }
        })
        .collect()
}

/// Figure 10 data: per-unit energy of the generators, normalized to Eyeriss.
pub fn figure10(comparisons: &[ModelComparison]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for c in comparisons {
        for (category, eyeriss, ganax) in c.generator_unit_energy() {
            rows.push(Fig10Row {
                model: c.gan_name.clone(),
                unit: category.label(),
                eyeriss,
                ganax,
            });
        }
    }
    rows
}

/// Figure 11 data: generator PE utilization on both accelerators.
pub fn figure11(comparisons: &[ModelComparison]) -> Vec<Fig11Row> {
    comparisons
        .iter()
        .map(|c| {
            let (eyeriss, ganax) = c.generator_utilization();
            Fig11Row {
                model: c.gan_name.clone(),
                eyeriss_utilization: eyeriss,
                ganax_utilization: ganax,
            }
        })
        .collect()
}

/// One row of the cycle-level machine performance benchmark
/// (`BENCH_machine.json`): wall-clock time of the seed single-step serial
/// path versus the burst-stepped fast path (serial and threaded) on one layer
/// geometry.
#[derive(Debug, Clone, Serialize)]
pub struct MachineBenchRow {
    /// Layer name.
    pub layer: String,
    /// Human-readable geometry (`in → out, kernel/stride`).
    pub geometry: String,
    /// Work units the machine executed.
    pub work_units: u64,
    /// Busy PE cycles the run simulated (equals consequential MACs).
    pub busy_pe_cycles: u64,
    /// Wall-clock milliseconds of the seed single-step serial path.
    pub reference_ms: f64,
    /// Wall-clock milliseconds of the burst-stepped serial fast path.
    pub fast_serial_ms: f64,
    /// Wall-clock milliseconds of the threaded fast path.
    pub threaded_ms: f64,
    /// Worker threads used for `threaded_ms`.
    pub threads: usize,
    /// Simulated busy cycles per wall-clock second on the serial fast path.
    pub fast_serial_cycles_per_sec: f64,
    /// `reference_ms / fast_serial_ms`.
    pub speedup_fast_serial: f64,
    /// `reference_ms / threaded_ms`.
    pub speedup_threaded: f64,
}

/// A deterministic pseudo-random tensor (xorshift over the flat index) shared
/// by the machine benches and the scale tests — an alias for
/// [`Tensor::deterministic`], the workspace's single source of reproducible
/// operands.
pub fn deterministic_tensor(shape: Shape, seed: u64) -> Tensor {
    Tensor::deterministic(shape, seed)
}

/// A deterministic pseudo-random tensor of *small integers* (stored as
/// `f32`): values drawn from `{-1, 0, +1}` with roughly one non-zero in four.
///
/// Small-integer operands are the conformance suite's exactness trick: every
/// product is `±1` or `0` and every partial sum stays a small integer, so all
/// f32 accumulation orders produce *bit-identical* results as long as
/// magnitudes stay below 2^24 — which the sparse ternary distribution
/// guarantees for every reduced Table I generator.
pub fn small_integer_tensor(shape: Shape, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let mut t = Tensor::zeros(shape);
    for v in t.data_mut() {
        *v = match splitmix64(&mut state) % 8 {
            0 => -1.0f32,
            1 => 1.0,
            _ => 0.0,
        };
    }
    t
}

/// One step of the splitmix64 stream behind the deterministic integer
/// generators: advances `state` and returns the mixed output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic float weights (and no biases) for every layer of a network,
/// shaped per [`NetworkWeights::expected_shape`]. Used by the network benches.
pub fn network_weights(network: &Network, seed: u64) -> NetworkWeights {
    let tensors = network
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| deterministic_tensor(NetworkWeights::expected_shape(l), seed + i as u64))
        .collect();
    NetworkWeights::new(network, tensors).expect("weights generated from the network's own shapes")
}

/// Deterministic *small-integer* weights plus integer per-channel biases for
/// every layer of a network — the operand set of the bit-exact conformance
/// suite (see [`small_integer_tensor`]).
pub fn conformance_weights(network: &Network, seed: u64) -> NetworkWeights {
    let tensors: Vec<Tensor> = network
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| small_integer_tensor(NetworkWeights::expected_shape(l), seed + i as u64))
        .collect();
    let mut weights = NetworkWeights::new(network, tensors)
        .expect("weights generated from the network's own shapes");
    for (i, layer) in network.layers().iter().enumerate() {
        let bias = small_integer_tensor(
            Shape::new_2d(layer.output.channels, 1, 1),
            seed + 1000 + i as u64,
        );
        weights = weights
            .with_bias(i, bias.data().to_vec())
            .expect("bias sized from the layer's own channels");
    }
    weights
}

/// Deterministic small-integer input matching a network's input shape.
pub fn conformance_input(network: &Network, seed: u64) -> Tensor {
    small_integer_tensor(network.input_shape(), seed)
}

/// Random input and weight tensors matching one conv/tconv layer.
pub fn layer_tensors(layer: &Layer, seed: u64) -> (Tensor, Tensor) {
    let params = layer.op.conv_params().expect("conv/tconv layer");
    let input = deterministic_tensor(layer.input, seed);
    let weights = deterministic_tensor(
        Shape::filter(
            layer.output.channels,
            layer.input.channels,
            params.kernel.0,
            params.kernel.1,
            params.kernel.2,
        ),
        seed + 1,
    );
    (input, weights)
}

/// The geometries the machine bench covers: the paper's Figure 4 example, a
/// mid-size multi-channel transposed convolution, and a full-size Table I
/// DCGAN generator layer (`tconv3`, 256 → 128 channels). With `quick`, the
/// DCGAN layer is swapped for a half-width stand-in so CI smoke runs stay
/// short.
pub fn machine_bench_layers(quick: bool) -> Vec<Layer> {
    use ganax_models::Activation;
    use ganax_tensor::ConvParams;

    let tconv3 = zoo::dcgan()
        .generator
        .layers()
        .iter()
        .find(|l| l.name == "tconv3")
        .expect("DCGAN generator has tconv3")
        .clone();
    let dcgan_kernel = tconv3.op.conv_params().expect("tconv3 is a tconv");
    let mut layers = vec![
        Layer::conv(
            "paper-example",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .expect("paper example geometry is valid"),
        Layer::conv(
            "tconv-mid",
            Shape::new_2d(16, 8, 8),
            16,
            dcgan_kernel,
            Activation::None,
        )
        .expect("mid geometry is valid"),
    ];
    if quick {
        layers.push(
            Layer::conv(
                "dcgan-tconv3-half",
                Shape::new_2d(tconv3.input.channels / 2, 16, 16),
                tconv3.output.channels / 2,
                dcgan_kernel,
                Activation::None,
            )
            .expect("half-width tconv3 geometry is valid"),
        );
    } else {
        layers.push(tconv3);
    }
    layers
}

/// Runs `f` `samples` times and keeps the fastest wall-clock time (the
/// criterion-style noise floor) together with the last result.
fn time_best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let result = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        value = Some(result);
    }
    (value.expect("at least one sample"), best)
}

/// Measures the seed single-step serial path against the burst-stepped fast
/// paths on every [`machine_bench_layers`] geometry. Every path is timed
/// best-of-5 so noisy samples cannot skew the recorded speedups.
pub fn machine_bench(quick: bool) -> Vec<MachineBenchRow> {
    let machine = GanaxMachine::paper();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let samples = 5;
    machine_bench_layers(quick)
        .into_iter()
        .enumerate()
        .map(|(i, layer)| {
            let (input, weights) = layer_tensors(&layer, 97 + i as u64);
            let (reference, reference_ms) = time_best_of(samples, || {
                machine
                    .execute_layer_reference(&layer, &input, &weights)
                    .expect("reference path executes the bench layer")
            });
            let (fast, fast_serial_ms) = time_best_of(samples, || {
                machine
                    .execute_layer_threaded(&layer, &input, &weights, 1)
                    .expect("fast path executes the bench layer")
            });
            assert_eq!(reference, fast, "fast path diverged from the reference");
            // On a single-core host the "threaded" run would re-time the
            // identical serial path; reuse the serial number instead of
            // recording noise as a threading result.
            let threaded_ms = if threads > 1 {
                time_best_of(samples, || {
                    machine
                        .execute_layer_threaded(&layer, &input, &weights, threads)
                        .expect("threaded path executes the bench layer")
                })
                .1
            } else {
                fast_serial_ms
            };
            let params = layer.op.conv_params().expect("conv/tconv layer");
            MachineBenchRow {
                layer: layer.name.clone(),
                geometry: format!(
                    "{} -> {}, {}x{}/s{}",
                    layer.input, layer.output, params.kernel.1, params.kernel.2, params.stride.1
                ),
                work_units: fast.work_units,
                busy_pe_cycles: fast.busy_pe_cycles,
                reference_ms,
                fast_serial_ms,
                threaded_ms,
                threads,
                fast_serial_cycles_per_sec: fast.busy_pe_cycles as f64 / (fast_serial_ms / 1e3),
                speedup_fast_serial: reference_ms / fast_serial_ms,
                speedup_threaded: reference_ms / threaded_ms,
            }
        })
        .collect()
}

/// One per-layer row of the end-to-end network benchmark
/// (`BENCH_network.json`).
#[derive(Debug, Clone, Serialize)]
pub struct NetworkBenchRow {
    /// Layer name.
    pub layer: String,
    /// Human-readable I/O shapes (`input -> output`).
    pub geometry: String,
    /// Whether the layer ran on the host (projection) instead of the PE array.
    pub host: bool,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Busy PE cycles the layer simulated (its in-bounds MACs).
    pub busy_pe_cycles: u64,
    /// Work units executed.
    pub work_units: u64,
    /// Load balance of the threaded PE-array scheduler (1.0 = perfect).
    pub balance: f64,
    /// Wall-clock milliseconds of the layer (including staged planning).
    pub wall_ms: f64,
}

/// The end-to-end network benchmark report behind `BENCH_network.json`: the
/// DCGAN generator executed layer by layer on the cycle-level machine, with
/// the simulated-vs-analytic cross-check and the Eyeriss-baseline direction.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkBenchReport {
    /// Benchmark family name.
    pub bench: String,
    /// Network executed.
    pub network: String,
    /// Whether the quick (reduced-geometry) variant was used.
    pub quick: bool,
    /// Worker threads used for the PE-array layers.
    pub threads: usize,
    /// Per-layer measurements.
    pub rows: Vec<NetworkBenchRow>,
    /// Total busy PE cycles simulated.
    pub total_busy_pe_cycles: u64,
    /// Total wall-clock milliseconds.
    pub total_wall_ms: f64,
    /// Simulated busy cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Whether every layer's measured MACs agree with the analytic model.
    pub cross_check_consistent: bool,
    /// Simulated speedup over the Eyeriss baseline (machine layers only).
    pub simulated_speedup: f64,
    /// Simulated energy reduction over the Eyeriss baseline.
    pub simulated_energy_reduction: f64,
}

/// Runs the DCGAN generator end to end on the cycle-level machine — full
/// size, or channel-capped at 64 with `quick` for CI smoke runs — and
/// packages the [`SimulatedComparison`] into a serializable report.
pub fn network_bench(quick: bool) -> NetworkBenchReport {
    let generator = zoo::dcgan().generator;
    let network = if quick {
        generator
            .reduced(64)
            .expect("DCGAN generator reduces cleanly")
    } else {
        generator
    };
    let weights = network_weights(&network, 2027);
    let input = deterministic_tensor(network.input_shape(), 4099);
    let report =
        SimulatedComparison::run(&network, &input, &weights).expect("DCGAN generator executes");
    let execution = &report.execution;
    let rows = network
        .layer_shapes()
        .into_iter()
        .zip(&execution.layers)
        .map(|((_, input, output), l)| NetworkBenchRow {
            layer: l.name.clone(),
            geometry: format!("{input} -> {output}"),
            host: l.host,
            is_tconv: l.is_tconv,
            busy_pe_cycles: l.busy_pe_cycles,
            work_units: l.work_units,
            balance: l.balance,
            wall_ms: l.wall_seconds * 1e3,
        })
        .collect();
    NetworkBenchReport {
        bench: "network".to_string(),
        network: execution.network.clone(),
        quick,
        threads: execution.threads,
        rows,
        total_busy_pe_cycles: execution.total_busy_pe_cycles(),
        total_wall_ms: execution.wall_seconds * 1e3,
        cycles_per_sec: execution.cycles_per_second(),
        cross_check_consistent: report.is_consistent(),
        simulated_speedup: report.simulated_speedup(),
        simulated_energy_reduction: report.simulated_energy_reduction(),
    }
}

/// The design-space geometries the sweep bench covers: the paper's 16 × 16
/// point plus wide/tall/small/large variations of the PV (MIMD) and lane
/// (SIMD) dimensions — 8 points in total.
pub fn sweep_bench_geometries() -> Vec<(usize, usize)> {
    vec![
        (16, 16),
        (8, 8),
        (8, 16),
        (16, 8),
        (8, 32),
        (32, 8),
        (16, 32),
        (32, 16),
    ]
}

/// The design-space sweep report behind `BENCH_sweep.json`: every design
/// point × network cell, the per-point summaries with the Pareto front over
/// (geomean speedup, geomean energy reduction), and — outside `--quick` —
/// cycle-level machine spot checks on reduced generators.
#[derive(Debug, Clone, Serialize)]
pub struct SweepBenchReport {
    /// Benchmark family name.
    pub bench: String,
    /// Whether the quick variant was used (fewer networks, no machine spot
    /// checks).
    pub quick: bool,
    /// Networks swept (canonical Table I names).
    pub networks: Vec<String>,
    /// Every (design point, network) cell.
    pub cells: Vec<SweepCell>,
    /// Per-design-point summaries, Pareto-flagged.
    pub designs: Vec<DesignSummary>,
    /// Labels of the Pareto-optimal design points.
    pub pareto_front: Vec<String>,
    /// Cycle-level spot checks (empty with `quick`).
    pub machine_spot_checks: Vec<MachineSweepCell>,
    /// Total wall-clock milliseconds of the sweep.
    pub wall_ms: f64,
}

/// Runs the design-space sweep: [`sweep_bench_geometries`] × two zoo
/// networks with `quick` (the analytic sweep only), or × the whole Table I
/// zoo plus cycle-level machine spot checks (reduced generators, channel cap
/// 8) without it.
pub fn sweep_bench(quick: bool) -> SweepBenchReport {
    let start = Instant::now();
    let networks: Vec<&str> = if quick {
        vec!["DCGAN", "3D-GAN"]
    } else {
        vec!["3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN"]
    };
    let spec = SweepSpec::geometry_grid(&sweep_bench_geometries(), &networks)
        .expect("bench sweep spec is valid");
    let result = spec.run();
    let machine_spot_checks = if quick {
        Vec::new()
    } else {
        // Ground the extreme geometries (and the paper point) in the
        // cycle-level machine on the reduced DCGAN generator.
        let spot_spec = SweepSpec::geometry_grid(&[(16, 16), (8, 8), (32, 16)], &["DCGAN"])
            .expect("spot-check spec is valid");
        spot_spec
            .machine_spot_checks(8)
            .expect("reduced generators execute on the machine")
    };
    SweepBenchReport {
        bench: "sweep".to_string(),
        quick,
        networks: result.networks.clone(),
        pareto_front: result
            .pareto_front()
            .iter()
            .map(|d| d.design.clone())
            .collect(),
        cells: result.cells,
        designs: result.designs,
        machine_spot_checks,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Profiling aid for `bench_machine --fast-only`: repeatedly runs the serial
/// fast path on the largest bench geometry so a sampling profiler sees only
/// the hot path.
pub fn machine_fast_only_loop(quick: bool) {
    let machine = GanaxMachine::paper();
    let layer = machine_bench_layers(quick).pop().expect("bench layers");
    let (input, weights) = layer_tensors(&layer, 99);
    for _ in 0..5 {
        let run = machine
            .execute_layer_threaded(&layer, &input, &weights, 1)
            .expect("fast path executes the bench layer");
        std::hint::black_box(run.busy_pe_cycles);
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Formats a ratio with an `x` suffix.
pub fn ratio(x: f64) -> String {
    format!("{x:4.2}x")
}

/// All five energy-category labels (Figure 10 legend).
pub fn energy_labels() -> Vec<&'static str> {
    EnergyCategory::ALL.iter().map(|c| c.label()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_six_rows_and_sensible_average() {
        let (rows, average) = figure1();
        assert_eq!(rows.len(), 6);
        assert!(average > 0.6 && average < 0.9, "average = {average}");
    }

    #[test]
    fn figure8_geomeans_are_in_paper_ballpark() {
        let comparisons = all_comparisons();
        let (rows, speedup, energy) = figure8(&comparisons);
        assert_eq!(rows.len(), 6);
        assert!(
            speedup > 2.0 && speedup < 6.0,
            "speedup geomean = {speedup}"
        );
        assert!(energy > 1.8 && energy < 6.0, "energy geomean = {energy}");
    }

    #[test]
    fn figure9_rows_are_normalized() {
        let comparisons = all_comparisons();
        for row in figure9(&comparisons, false) {
            assert!((row.eyeriss_discriminative + row.eyeriss_generative - 1.0).abs() < 1e-9);
            assert!(row.ganax_discriminative + row.ganax_generative <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn figure10_has_five_units_per_model() {
        let comparisons = all_comparisons();
        let rows = figure10(&comparisons);
        assert_eq!(rows.len(), 6 * 5);
        assert_eq!(energy_labels().len(), 5);
    }

    #[test]
    fn figure11_shows_ganax_above_eyeriss() {
        let comparisons = all_comparisons();
        for row in figure11(&comparisons) {
            assert!(
                row.ganax_utilization > row.eyeriss_utilization,
                "{}",
                row.model
            );
        }
    }

    #[test]
    fn sweep_bench_quick_covers_the_acceptance_grid() {
        let report = sweep_bench(true);
        assert!(report.designs.len() >= 6, "need >= 6 design points");
        assert!(report.networks.len() >= 2, "need >= 2 zoo networks");
        assert_eq!(
            report.cells.len(),
            report.designs.len() * report.networks.len()
        );
        assert!(!report.pareto_front.is_empty());
        for cell in &report.cells {
            assert!(cell.speedup > 1.0, "{} on {}", cell.design, cell.network);
            assert!(cell.energy_reduction > 1.0);
        }
        assert!(report.machine_spot_checks.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(ratio(3.61), "3.61x");
    }
}
