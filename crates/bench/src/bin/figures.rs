//! Regenerates every table and figure of the GANAX paper's evaluation section.
//!
//! ```text
//! cargo run -p ganax-bench --bin figures            # everything
//! cargo run -p ganax-bench --bin figures -- fig8a   # one figure
//! cargo run -p ganax-bench --bin figures -- --json  # machine-readable dump
//! ```

use ganax::compare::ModelComparison;
use ganax::GanaxConfig;
use ganax_bench::{all_comparisons, figure1, figure10, figure11, figure8, figure9, pct, ratio};
use ganax_energy::{AreaModel, EnergyModel};
use ganax_models::zoo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let selections: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = selections.is_empty() || selections.contains(&"all");
    let wants = |name: &str| all || selections.contains(&name);

    let needs_comparisons = ["fig8a", "fig8b", "fig9a", "fig9b", "fig10", "fig11"]
        .iter()
        .any(|f| wants(f));
    let comparisons: Vec<ModelComparison> = if needs_comparisons {
        all_comparisons()
    } else {
        Vec::new()
    };

    if wants("table1") {
        print_table1();
    }
    if wants("fig1") {
        print_fig1(json);
    }
    if wants("table2") {
        print_table2();
    }
    if wants("table3") {
        print_table3();
    }
    if wants("fig5") {
        print_fig5();
    }
    if wants("fig8a") || wants("fig8b") {
        print_fig8(&comparisons, json);
    }
    if wants("fig9a") {
        print_fig9(&comparisons, false);
    }
    if wants("fig9b") {
        print_fig9(&comparisons, true);
    }
    if wants("fig10") {
        print_fig10(&comparisons);
    }
    if wants("fig11") {
        print_fig11(&comparisons);
    }
}

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

fn print_table1() {
    header("Table I: evaluated GAN models");
    println!(
        "{:<10} {:>5} {:>9} {:>10} {:>9} {:>10}  {}",
        "Model", "Year", "Gen Conv", "Gen TConv", "Dis Conv", "Dis TConv", "Description"
    );
    for gan in zoo::all_models() {
        let (gc, gt, dc, dt) = gan.table_one_row();
        println!(
            "{:<10} {:>5} {:>9} {:>10} {:>9} {:>10}  {}",
            gan.name, gan.year, gc, gt, dc, dt, gan.description
        );
    }
}

fn print_fig1(json: bool) {
    header("Figure 1: inconsequential operations in transposed convolution layers");
    let (rows, average) = figure1();
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        return;
    }
    for row in &rows {
        println!("{:<10} {}", row.model, pct(row.inconsequential_fraction));
    }
    println!("{:<10} {}", "Average", pct(average));
}

fn print_table2() {
    header("Table II: energy model (pJ/bit and relative cost)");
    let model = EnergyModel::table_ii();
    println!("{:<26} {:>10} {:>14}", "Operation", "pJ/bit", "Relative");
    for (name, relative) in model.relative_costs() {
        let pj = match name {
            "Register File Access" => model.register_file_pj_per_bit,
            "16-bit Fixed Point PE" => model.pe_pj_per_bit,
            "Inter-PE Communication" => model.inter_pe_pj_per_bit,
            "Global Buffer Access" => model.global_buffer_pj_per_bit,
            _ => model.dram_pj_per_bit,
        };
        println!("{name:<26} {pj:>10.2} {relative:>13.1}x");
    }
}

fn print_table3() {
    header("Table III: area model (TSMC 45 nm)");
    let area = AreaModel::table_iii();
    println!("{:<28} {:>14}", "Unit", "Area (um^2)");
    for (name, value) in area.pe.entries() {
        println!("{name:<28} {value:>14.1}");
    }
    println!("{:<28} {:>14.1}", "Total area / PE", area.pe.total());
    println!(
        "{:<28} {:>14.1}",
        "Total PE array (16x16)",
        area.pe_array_area()
    );
    println!(
        "{:<28} {:>14.1}",
        "Global uOp buffer", area.global_uop_buffer
    );
    println!(
        "{:<28} {:>14.1}",
        "Global data buffer", area.global_data_buffer
    );
    println!(
        "{:<28} {:>14.1}",
        "Global instruction buffer", area.global_instruction_buffer
    );
    println!(
        "{:<28} {:>14.1}",
        "NoC + config buffers", area.noc_and_config
    );
    println!(
        "{:<28} {:>14.1}",
        "Global controller", area.global_controller
    );
    println!("{:<28} {:>14.1}", "GANAX total", area.ganax_total());
    println!(
        "{:<28} {:>14.1}",
        "Eyeriss baseline total",
        area.eyeriss_total()
    );
    println!(
        "{:<28} {:>13.1}%",
        "GANAX area overhead",
        GanaxConfig::paper().area_overhead() * 100.0
    );
}

fn print_fig5() {
    header("Figure 4/5 worked example: 4x4 input, 5x5 filter, 2x upsampling");
    use ganax_dataflow::{AxisPhases, OutputRowGroups};
    use ganax_tensor::ConvParams;
    let params = ConvParams::transposed_2d(5, 2, 2);
    let phases = AxisPhases::vertical(&params, 4);
    let groups = OutputRowGroups::new(&phases, phases.output_extent());
    println!(
        "conventional compute-node utilization: {}",
        pct(groups.conventional_utilization())
    );
    println!(
        "reorganized  compute-node utilization: {}",
        pct(groups.reorganized_utilization())
    );
    println!(
        "conventional accumulation depth: {} cycles",
        groups.conventional_accumulation_depth()
    );
    println!(
        "reorganized accumulation depths: {:?} cycles",
        groups.reorganized_accumulation_depths()
    );
    for group in groups.groups() {
        println!(
            "  phase {}: output rows {:?} use filter rows {:?}",
            group.phase,
            group.rows,
            group.filter_rows.iter().map(|r| r + 1).collect::<Vec<_>>()
        );
    }
}

fn print_fig8(comparisons: &[ModelComparison], json: bool) {
    header("Figure 8: generative-model speedup and energy reduction over EYERISS");
    let (rows, speedup_geomean, energy_geomean) = figure8(comparisons);
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        return;
    }
    println!(
        "{:<10} {:>10} {:>18}",
        "Model", "Speedup", "Energy reduction"
    );
    for row in &rows {
        println!(
            "{:<10} {:>10} {:>18}",
            row.model,
            ratio(row.speedup),
            ratio(row.energy_reduction)
        );
    }
    println!(
        "{:<10} {:>10} {:>18}",
        "Geomean",
        ratio(speedup_geomean),
        ratio(energy_geomean)
    );
}

fn print_fig9(comparisons: &[ModelComparison], energy: bool) {
    header(if energy {
        "Figure 9b: energy breakdown (normalized to EYERISS)"
    } else {
        "Figure 9a: runtime breakdown (normalized to EYERISS)"
    });
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "Model", "Eyeriss disc", "Eyeriss gen", "GANAX disc", "GANAX gen"
    );
    for row in figure9(comparisons, energy) {
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            row.model,
            pct(row.eyeriss_discriminative),
            pct(row.eyeriss_generative),
            pct(row.ganax_discriminative),
            pct(row.ganax_generative)
        );
    }
}

fn print_fig10(comparisons: &[ModelComparison]) {
    header("Figure 10: generator energy by unit (normalized to EYERISS total)");
    println!(
        "{:<10} {:>6} {:>12} {:>12}",
        "Model", "Unit", "Eyeriss", "GANAX"
    );
    for row in figure10(comparisons) {
        println!(
            "{:<10} {:>6} {:>12} {:>12}",
            row.model,
            row.unit,
            pct(row.eyeriss),
            pct(row.ganax)
        );
    }
}

fn print_fig11(comparisons: &[ModelComparison]) {
    header("Figure 11: generator PE utilization");
    println!("{:<10} {:>10} {:>10}", "Model", "Eyeriss", "GANAX");
    let rows = figure11(comparisons);
    for row in &rows {
        println!(
            "{:<10} {:>10} {:>10}",
            row.model,
            pct(row.eyeriss_utilization),
            pct(row.ganax_utilization)
        );
    }
    let avg_e = rows.iter().map(|r| r.eyeriss_utilization).sum::<f64>() / rows.len() as f64;
    let avg_g = rows.iter().map(|r| r.ganax_utilization).sum::<f64>() / rows.len() as f64;
    println!("{:<10} {:>10} {:>10}", "Average", pct(avg_e), pct(avg_g));
}
