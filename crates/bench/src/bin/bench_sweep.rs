//! Runs the design-space sweep (accelerator geometries × Table I networks)
//! and emits `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p ganax-bench --bin bench_sweep             # full zoo + machine spot checks
//! cargo run --release -p ganax-bench --bin bench_sweep -- --quick  # 2 networks, analytic only (CI)
//! cargo run --release -p ganax-bench --bin bench_sweep -- --out path.json
//! ```
//!
//! Every design point is compared against a *same-budget* Eyeriss baseline
//! (identical array geometry, clock and energy constants); the report
//! carries per-cell speedup/energy/utilization, per-point geometric means,
//! the Pareto front over (geomean speedup, geomean energy reduction), and —
//! outside `--quick` — cycle-level machine spot checks on the reduced DCGAN
//! generator. See `docs/HANDBOOK.md` ("Design-space sweeps") for how to
//! read and extend it.

use ganax_bench::sweep_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let report = sweep_bench(quick);

    println!(
        "{:>7}  {:>5}  {:>9}  {:>9}  {:>7}",
        "design", "PEs", "speedup", "energy", "pareto"
    );
    for design in &report.designs {
        println!(
            "{:>7}  {:>5}  {:>8.2}x  {:>8.2}x  {:>7}",
            design.design,
            design.total_pes,
            design.geomean_speedup,
            design.geomean_energy_reduction,
            if design.pareto_optimal { "*" } else { "" },
        );
    }
    println!(
        "\n{} design points x {} networks ({}); Pareto front: {}",
        report.designs.len(),
        report.networks.len(),
        report.networks.join(", "),
        report.pareto_front.join(", "),
    );
    for check in &report.machine_spot_checks {
        println!(
            "machine spot check {:>7} on reduced {}: {} busy cycles, speedup {:.2}x, \
             energy {:.2}x, cross-check {}",
            check.design,
            check.network,
            check.busy_pe_cycles,
            check.simulated_speedup,
            check.simulated_energy_reduction,
            if check.consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            },
        );
    }

    // Write the report before asserting, so failing invariants still leave
    // the per-cell evidence on disk (and in the CI artifact).
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("sweep report is writable");
    println!("wrote {out_path} in {:.0} ms", report.wall_ms);

    assert!(
        report.designs.len() >= 6 && report.networks.len() >= 2,
        "sweep must cover >= 6 design points x >= 2 networks"
    );
    assert!(!report.pareto_front.is_empty(), "empty Pareto front");
    assert!(
        report.machine_spot_checks.iter().all(|c| c.consistent),
        "a machine spot check diverged from the analytic model"
    );
}
