//! Benchmarks the cycle-level machine's fast path against the seed
//! single-step serial path and emits `BENCH_machine.json`.
//!
//! ```text
//! cargo run --release -p ganax-bench --bin bench_machine             # full run
//! cargo run --release -p ganax-bench --bin bench_machine -- --quick  # CI smoke
//! cargo run --release -p ganax-bench --bin bench_machine -- --out path.json
//! cargo run --release -p ganax-bench --bin bench_machine -- --threads 1,2,4,8
//! GANAX_BENCH_THREADS=1,2,4 cargo run --release -p ganax-bench --bin bench_machine
//! ```
//!
//! Each row records the wall-clock time of the seed single-step path, the
//! burst-stepped serial fast path and the threaded fast path on one layer
//! geometry, plus simulated-cycles-per-second, the resulting speedups, and a
//! full sweep over the requested thread counts (`--threads` /
//! `GANAX_BENCH_THREADS`, defaulting to `1,2,4,available`). The fast-path
//! results are asserted bit-identical to the reference before any timing is
//! reported.

use ganax_bench::{cli_out_path, cli_thread_counts, machine_bench, MachineBenchRow};
use serde::Serialize;

/// The emitted `BENCH_machine.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Benchmark family name.
    bench: String,
    /// Whether the quick (CI smoke) geometry set was used.
    quick: bool,
    /// Worker-thread counts the threaded scheduler was swept over.
    thread_counts: Vec<usize>,
    /// Per-geometry measurements.
    rows: Vec<MachineBenchRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Profiling aid: loop only the serial fast path on the largest geometry.
    if args.iter().any(|a| a == "--fast-only") {
        ganax_bench::machine_fast_only_loop(quick);
        return;
    }
    let out_path = cli_out_path(&args, "BENCH_machine.json");
    let thread_counts = cli_thread_counts(&args);

    let rows = machine_bench(quick, &thread_counts);
    for row in &rows {
        println!(
            "{:<20} {:>12} cycles  ref {:>9.1} ms  fast {:>8.1} ms ({:>5.1}x)  threaded {:>8.1} ms ({:>5.1}x @ {}t)",
            row.layer,
            row.busy_pe_cycles,
            row.reference_ms,
            row.fast_serial_ms,
            row.speedup_fast_serial,
            row.threaded_ms,
            row.speedup_threaded,
            row.threads,
        );
        for timing in &row.thread_sweep {
            println!(
                "    {:>2} threads  {:>8.1} ms  ({:>5.2}x vs serial)",
                timing.threads, timing.ms, timing.speedup_vs_serial,
            );
        }
    }

    let report = BenchReport {
        bench: "machine".to_string(),
        quick,
        thread_counts,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("BENCH_machine.json is writable");
    println!("wrote {out_path}");
}
