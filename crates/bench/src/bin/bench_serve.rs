//! Benchmarks the compile-once inference engine as a serving system on the
//! DCGAN generator and emits `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p ganax-bench --bin bench_serve             # full size
//! cargo run --release -p ganax-bench --bin bench_serve -- --quick  # CI smoke
//! cargo run --release -p ganax-bench --bin bench_serve -- --out path.json
//! cargo run --release -p ganax-bench --bin bench_serve -- --threads 1,2,4 --batch 8
//! cargo run --release -p ganax-bench --bin bench_serve -- --faults # fault sweep
//! ```
//!
//! The report compares three ways of serving one request:
//!
//! * **cold** — the pre-engine staged path: plans rebuilt on every call,
//!   per-layer scoped worker spawns with fresh PEs, operand streams
//!   re-gathered per output row;
//! * **warm** — a cached [`ganax::CompiledNetwork`] on the engine's
//!   persistent pool (PEs and buffers reset in place, zero planning —
//!   asserted);
//! * **batched** — [`ganax::InferenceEngine::execute_batch`] amortizing
//!   staged weight streams across batch × rows on a 4+-worker pool.
//!
//! On top of the single-request paths, the offered-load sweep drives the
//! async [`ganax::serve::Server`] through seeded Poisson arrival schedules
//! at sub-capacity, near-capacity and saturating rates — batched wave
//! dispatch versus serial per-request dispatch on same-sized pools — and
//! records p50/p99 latency and throughput per rate.
//!
//! With `--faults`, the report additionally records the fault-tolerance
//! sweep: the server absorbing seeded maskable fault schedules (NaN poison,
//! worker panics, worker stalls) at increasing rates — every response still
//! bit-identical to the fault-free baseline, with the throughput and p99
//! degradation curve plus the recovery activity (retries, respawns,
//! requeued shards) per rate.
//!
//! The `integrity` section records the ABFT verification tax (a
//! `Verify`-mode engine versus the `Off`-mode headline, asserted ≤ 15% on
//! the full-size network) and — with `--faults` — the silent-corruption
//! sweep: seeded finite-bit-flip schedules served under `VerifyAndHeal`,
//! each asserted to detect, heal and return the bit-exact clean response
//! with zero undetected escapes.
//!
//! Every path is asserted bit-identical to the staged baseline before its
//! timing is reported.

use ganax_bench::{cli_out_path, cli_thread_counts, cli_value, serve_bench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let faults = args.iter().any(|a| a == "--faults");
    let out_path = cli_out_path(&args, "BENCH_serve.json");
    let thread_counts = cli_thread_counts(&args);
    let batch_size = cli_value(&args, "--batch")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let report = serve_bench(quick, &thread_counts, batch_size, faults);
    println!(
        "{} ({} threads): cold {:.1} ms (plan {:.1} ms)  warm {:.1} ms  -> {:.2}x",
        report.network,
        report.threads,
        report.cold_ms,
        report.cold_plan_ms,
        report.warm_ms,
        report.speedup_warm_vs_cold,
    );
    println!(
        "compile {:.1} ms  first request {:.1} ms  warm plan {:.1} ms  {:.1}M cycles/s warm",
        report.compile_ms,
        report.first_request_ms,
        report.warm_plan_ms,
        report.warm_cycles_per_sec / 1e6,
    );
    for row in &report.thread_rows {
        println!(
            "  warm @ {:>2} threads  {:>9.1} ms  {:.3} inf/s",
            row.threads, row.warm_ms, row.inferences_per_sec,
        );
    }
    for row in &report.batch_rows {
        println!(
            "  batch {} @ {:>2} threads  {:>9.1} ms  {:.3} inf/s  ({:.2}x vs same-pool serial, {:.2}x vs best serial)",
            row.batch,
            row.threads,
            row.wall_ms,
            row.inferences_per_sec,
            row.speedup_vs_warm_serial,
            row.speedup_vs_best_serial,
        );
    }

    for row in &report.offered_load {
        println!(
            "  offered {:>7} @ {:>6.3} req/s ({:.1}x cap)  p50 {:>9.1} ms  p99 {:>9.1} ms  {:.3} req/s  waves {} (mean {:.2})",
            row.mode,
            row.arrival_rate_per_sec,
            row.load_factor,
            row.p50_latency_ms,
            row.p99_latency_ms,
            row.throughput_per_sec,
            row.waves,
            row.mean_wave,
        );
        assert!(
            row.p50_latency_ms.is_finite() && row.p99_latency_ms.is_finite(),
            "offered-load tail latency must be finite: {row:?}"
        );
        assert!(row.bit_identical, "offered-load row lost bit-identity");
    }
    println!(
        "  offered-load peak: batched waves {:.2}x serial dispatch",
        report.offered_load_peak_speedup,
    );

    for row in &report.fault_tolerance {
        println!(
            "  faults {:>7} ppm  p50 {:>9.1} ms  p99 {:>9.1} ms ({:.2}x clean)  {:.3} req/s ({:.2}x clean)  retries {} respawns {} requeued {}",
            row.rate_ppm,
            row.p50_latency_ms,
            row.p99_latency_ms,
            row.p99_vs_clean,
            row.throughput_per_sec,
            row.throughput_vs_clean,
            row.retries,
            row.respawns,
            row.requeued_shards,
        );
        assert!(row.bit_identical, "fault-tolerance row lost bit-identity");
    }

    let integrity = &report.integrity;
    println!(
        "  integrity: off {:.1} ms  verify {:.1} ms  tax {:+.2}%  ({} checks/inference)",
        integrity.off_warm_ms,
        integrity.verify_warm_ms,
        integrity.verify_overhead * 100.0,
        integrity.checks_per_inference,
    );
    for row in &integrity.corruption {
        println!(
            "  corruption {:>11} seed {:>3} layer {}  injected {:>4}  detected {:>3}  healed {:>3}  undetected {}",
            row.kind, row.seed, row.layer, row.injected, row.detected, row.rows_healed, row.undetected,
        );
        assert!(row.bit_identical, "silent-corruption row lost bit-identity");
        assert_eq!(row.undetected, 0, "silent corruption escaped the checksums");
    }
    if !integrity.corruption.is_empty() {
        println!(
            "  corruption sweep: {} flips injected, {} detected ({:.1}% coverage), zero escapes",
            integrity.flips_injected,
            integrity.flips_detected,
            integrity.detection_coverage * 100.0,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("BENCH_serve.json is writable");
    println!("wrote {out_path}");
}
