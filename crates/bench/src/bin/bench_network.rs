//! Executes the DCGAN generator end to end on the cycle-level machine and
//! emits `BENCH_network.json`.
//!
//! ```text
//! cargo run --release -p ganax-bench --bin bench_network             # full size
//! cargo run --release -p ganax-bench --bin bench_network -- --quick  # CI smoke
//! cargo run --release -p ganax-bench --bin bench_network -- --out path.json
//! cargo run --release -p ganax-bench --bin bench_network -- --threads 1,2,4
//! ```
//!
//! The report records per-layer busy cycles, load balance and wall-clock,
//! total simulated-cycles-per-second, a one-shot thread-count sweep
//! (`--threads` / `GANAX_BENCH_THREADS`, default `1,2,4,available`), the
//! machine-vs-analytic cross-check, and the simulated speedup/energy
//! direction against the Eyeriss baseline.

use ganax_bench::{cli_out_path, cli_thread_counts, network_bench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = cli_out_path(&args, "BENCH_network.json");
    let thread_counts = cli_thread_counts(&args);

    let report = network_bench(quick, &thread_counts);
    for row in &report.rows {
        println!(
            "{:<12} {}  {:>12} cycles  balance {:>5.3}  {:>9.1} ms",
            row.layer,
            if row.host { "host " } else { "array" },
            row.busy_pe_cycles,
            row.balance,
            row.wall_ms,
        );
    }
    println!(
        "{}: {} busy cycles in {:.1} ms ({:.1}M cycles/s, {} threads, plan {:.1} ms)",
        report.network,
        report.total_busy_pe_cycles,
        report.total_wall_ms,
        report.cycles_per_sec / 1e6,
        report.threads,
        report.plan_ms,
    );
    for timing in &report.thread_scaling {
        println!(
            "  one-shot @ {:>2} threads  {:>9.1} ms  ({:>5.2}x vs serial)",
            timing.threads, timing.ms, timing.speedup_vs_serial,
        );
    }
    println!(
        "cross-check {}  simulated speedup {:.2}x  energy reduction {:.2}x",
        if report.cross_check_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        },
        report.simulated_speedup,
        report.simulated_energy_reduction,
    );
    // Write the report before asserting, so a failing cross-check still
    // leaves the per-layer evidence on disk (and in the CI artifact).
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("BENCH_network.json is writable");
    println!("wrote {out_path}");
    assert!(
        report.cross_check_consistent,
        "machine activity diverged from the analytic model"
    );
}
