//! End-to-end network execution bench: a reduced-geometry DCGAN generator
//! chained through the cycle-level machine's fast path.
//!
//! The full-size wall-clock report lives in the `bench_network` binary (it
//! needs a JSON emitter); this bench tracks the end-to-end path under
//! Criterion so regressions show up in `cargo bench network`.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::GanaxMachine;
use ganax_bench::{deterministic_tensor, network_weights};
use ganax_models::zoo;

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");

    let network = zoo::reduced_generator("DCGAN", 8).expect("DCGAN is in the zoo");
    let weights = network_weights(&network, 7);
    let input = deterministic_tensor(network.input_shape(), 13);
    let machine = GanaxMachine::paper();

    group.bench_function("dcgan_generator_reduced8_serial", |b| {
        b.iter(|| {
            let run = machine
                .execute_network_threaded(&network, &input, &weights, 1)
                .expect("reduced generator executes");
            std::hint::black_box(run.total_busy_pe_cycles())
        })
    });

    group.bench_function("dcgan_generator_reduced8_threaded", |b| {
        b.iter(|| {
            let run = machine
                .execute_network(&network, &input, &weights)
                .expect("reduced generator executes");
            std::hint::black_box(run.total_busy_pe_cycles())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
