//! Machine-focused benches: the burst-stepped fast path versus the seed
//! single-step serial path, plus a micro-bench of the PE chunk-retire loop.
//!
//! The wall-clock comparison that feeds `BENCH_machine.json` lives in the
//! `bench_machine` binary (it needs a JSON emitter, not Criterion's report);
//! this bench tracks the same hot paths under Criterion so regressions show
//! up in `cargo bench machine`.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::GanaxMachine;
use ganax_bench::{layer_tensors, machine_bench_layers};
use ganax_isa::{AddrGenKind, ExecUop};
use ganax_sim::{PeConfig, ProcessingEngine};

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");

    // One chunk of 8 columns x 3 taps dispatched the way the machine's fast
    // path issues it: gathered linear operand streams, strided output, one
    // `repeat`+`mac` pair per column, retired as a single burst.
    group.bench_function("pe_chunk_retire_8x3", |b| {
        let cols = 8u16;
        let taps = 3u16;
        let total = cols * taps;
        let inputs: Vec<f32> = (0..total).map(|i| i as f32 * 0.25).collect();
        let weights: Vec<f32> = (0..total).map(|i| 1.0 - i as f32 * 0.01).collect();
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        b.iter(|| {
            pe.load_input(&inputs);
            pe.load_weights(&weights);
            pe.configure_linear(AddrGenKind::Input, 0, 1, total, 1);
            pe.configure_linear(AddrGenKind::Weight, 0, 1, total, 1);
            pe.configure_linear(AddrGenKind::Output, 0, 1, cols, 1);
            pe.start_all();
            pe.set_repeat(taps);
            for _ in 0..cols {
                pe.push_uop(ExecUop::Repeat);
                pe.push_uop(ExecUop::Mac);
            }
            pe.run_until_idle_burst(1_000);
            std::hint::black_box(pe.read_output(0))
        })
    });

    // The same program single-stepped: the per-cycle reference cost.
    group.bench_function("pe_chunk_single_step_8x3", |b| {
        let cols = 8u16;
        let taps = 3u16;
        let total = cols * taps;
        let inputs: Vec<f32> = (0..total).map(|i| i as f32 * 0.25).collect();
        let weights: Vec<f32> = (0..total).map(|i| 1.0 - i as f32 * 0.01).collect();
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        b.iter(|| {
            pe.load_input(&inputs);
            pe.load_weights(&weights);
            pe.configure_linear(AddrGenKind::Input, 0, 1, total, 1);
            pe.configure_linear(AddrGenKind::Weight, 0, 1, total, 1);
            pe.configure_linear(AddrGenKind::Output, 0, 1, cols, 1);
            pe.start_all();
            pe.set_repeat(taps);
            for _ in 0..cols {
                pe.push_uop(ExecUop::Repeat);
                pe.push_uop(ExecUop::Mac);
            }
            pe.run_until_idle(1_000);
            std::hint::black_box(pe.read_output(0))
        })
    });

    group.sample_size(10);
    // The mid-size tconv geometry end to end, fast vs reference.
    let layer = machine_bench_layers(true)
        .into_iter()
        .find(|l| l.name == "tconv-mid")
        .expect("bench layers include tconv-mid");
    let (input, weights) = layer_tensors(&layer, 7);
    let machine = GanaxMachine::paper();
    group.bench_function("machine_tconv_mid_fast", |b| {
        b.iter(|| {
            std::hint::black_box(
                machine
                    .execute_layer_threaded(&layer, &input, &weights, 1)
                    .unwrap()
                    .busy_pe_cycles,
            )
        })
    });
    group.bench_function("machine_tconv_mid_reference", |b| {
        b.iter(|| {
            std::hint::black_box(
                machine
                    .execute_layer_reference(&layer, &input, &weights)
                    .unwrap()
                    .busy_pe_cycles,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
