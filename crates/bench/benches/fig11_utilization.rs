//! Figure 11: PE utilization of the generative models on EYERISS and GANAX.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::GanaxModel;
use ganax_bench::{all_comparisons, figure11};
use ganax_eyeriss::EyerissModel;
use ganax_models::zoo;

fn bench_fig11(c: &mut Criterion) {
    let comparisons = all_comparisons();
    println!("\nFigure 11 (generator PE utilization):");
    for row in figure11(&comparisons) {
        println!(
            "  {:<10} eyeriss {:5.1}%  ganax {:5.1}%",
            row.model,
            row.eyeriss_utilization * 100.0,
            row.ganax_utilization * 100.0
        );
    }

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    let gen = zoo::gp_gan().generator;
    group.bench_function("eyeriss_utilization", |b| {
        b.iter(|| {
            std::hint::black_box(
                EyerissModel::paper()
                    .run_network(&gen)
                    .average_utilization(),
            )
        })
    });
    group.bench_function("ganax_utilization", |b| {
        b.iter(|| std::hint::black_box(GanaxModel::paper().run_network(&gen).average_utilization()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
