//! Figures 9a/9b: runtime and energy breakdown between discriminative and
//! generative models, normalized to EYERISS.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::compare::ModelComparison;
use ganax_bench::{all_comparisons, figure9};
use ganax_models::zoo;

fn bench_fig9(c: &mut Criterion) {
    let comparisons = all_comparisons();
    for (energy, title) in [(false, "Figure 9a (runtime)"), (true, "Figure 9b (energy)")] {
        println!("\n{title}: disc/gen shares normalized to EYERISS");
        for row in figure9(&comparisons, energy) {
            println!(
                "  {:<10} eyeriss {:4.1}%/{:4.1}%  ganax {:4.1}%/{:4.1}%",
                row.model,
                row.eyeriss_discriminative * 100.0,
                row.eyeriss_generative * 100.0,
                row.ganax_discriminative * 100.0,
                row.ganax_generative * 100.0
            );
        }
    }

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    let dcgan = zoo::dcgan();
    group.bench_function("dcgan_breakdowns", |b| {
        b.iter(|| {
            let report = ModelComparison::compare(&dcgan);
            std::hint::black_box((report.runtime_breakdown(), report.energy_breakdown()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
