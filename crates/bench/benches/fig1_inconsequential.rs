//! Figure 1: fraction of inconsequential multiply-adds per GAN generator.
//!
//! Benchmarks the operation-counting pass over every Table I generator and
//! prints the regenerated figure once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax_bench::figure1;
use ganax_models::zoo;

fn bench_fig1(c: &mut Criterion) {
    let (rows, average) = figure1();
    println!("\nFigure 1 (fraction of inconsequential MACs in TConv layers):");
    for row in &rows {
        println!(
            "  {:<10} {:5.1}%",
            row.model,
            row.inconsequential_fraction * 100.0
        );
    }
    println!("  {:<10} {:5.1}%", "Average", average * 100.0);

    let mut group = c.benchmark_group("fig1");
    for gan in zoo::all_models() {
        group.bench_function(&gan.name, |b| {
            b.iter(|| {
                std::hint::black_box(gan.generator.op_stats().tconv_inconsequential_fraction())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
