//! Microarchitecture benches: the cycle-level machine and its building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::GanaxMachine;
use ganax_isa::{AddrGenKind, ExecUop};
use ganax_models::{Activation, Layer};
use ganax_sim::{PeConfig, ProcessingEngine};
use ganax_tensor::{ConvParams, Shape, Tensor};

fn bench_microarch(c: &mut Criterion) {
    let mut group = c.benchmark_group("microarch");

    group.bench_function("strided_index_generator_1k_addresses", |b| {
        b.iter(|| {
            let mut pe = ProcessingEngine::new(PeConfig::roomy());
            pe.configure_linear(AddrGenKind::Input, 0, 1, 1000, 1);
            pe.start(AddrGenKind::Input);
            let mut produced = 0u64;
            for _ in 0..1200 {
                pe.step();
                produced += 1;
            }
            std::hint::black_box(produced)
        })
    });

    group.bench_function("pe_dot_product_64", |b| {
        let inputs: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let weights: Vec<f32> = (0..64).map(|i| 1.0 - i as f32 * 0.01).collect();
        b.iter(|| {
            let mut pe = ProcessingEngine::new(PeConfig::roomy());
            pe.load_input(&inputs);
            pe.load_weights(&weights);
            pe.configure_linear(AddrGenKind::Input, 0, 1, 64, 1);
            pe.configure_linear(AddrGenKind::Weight, 0, 1, 64, 1);
            pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
            pe.start_all();
            pe.set_repeat(64);
            pe.push_uop(ExecUop::Repeat);
            pe.push_uop(ExecUop::Mac);
            pe.run_until_idle(10_000);
            std::hint::black_box(pe.read_output(0))
        })
    });

    group.sample_size(10);
    group.bench_function("machine_tconv_8x8", |b| {
        let layer = Layer::conv(
            "bench-tconv",
            Shape::new_2d(2, 8, 8),
            2,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::None,
        )
        .unwrap();
        let input = Tensor::from_fn_2d(2, 8, 8, |c, y, x| (c + y + x) as f32 * 0.1);
        let weights = Tensor::filled(Shape::filter(2, 2, 1, 4, 4), 0.05);
        let machine = GanaxMachine::paper();
        b.iter(|| {
            std::hint::black_box(
                machine
                    .execute_layer(&layer, &input, &weights)
                    .unwrap()
                    .busy_pe_cycles,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_microarch);
criterion_main!(benches);
