//! Serving-path bench: warm cached-plan requests and batched execution on
//! the compile-once inference engine, against the cold staged baseline.
//!
//! The full-size wall-clock report lives in the `bench_serve` binary (it
//! needs a JSON emitter); this bench tracks the engine's hot paths under
//! Criterion so regressions show up in `cargo bench serve`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::serve::{ServeConfig, Server};
use ganax::{GanaxMachine, InferenceEngine};
use ganax_bench::{deterministic_tensor, network_weights};
use ganax_models::zoo;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");

    let network = zoo::reduced_generator("DCGAN", 8).expect("DCGAN is in the zoo");
    let weights = network_weights(&network, 7);
    let input = deterministic_tensor(network.input_shape(), 13);
    let machine = GanaxMachine::paper();
    let engine = InferenceEngine::new(machine, 2);
    let compiled = engine
        .compile(&network, &weights)
        .expect("network compiles");

    group.bench_function("dcgan_reduced8_cold_staged", |b| {
        b.iter(|| {
            let run = machine
                .execute_network_staged(&network, &input, &weights, 2)
                .expect("staged baseline executes");
            std::hint::black_box(run.total_busy_pe_cycles())
        })
    });

    group.bench_function("dcgan_reduced8_warm_engine", |b| {
        b.iter(|| {
            let run = engine
                .execute(&compiled, &input)
                .expect("warm request executes");
            std::hint::black_box(run.total_busy_pe_cycles())
        })
    });

    group.bench_function("dcgan_reduced8_batch4", |b| {
        let inputs: Vec<_> = (0..4)
            .map(|k| deterministic_tensor(network.input_shape(), 13 + k))
            .collect();
        b.iter(|| {
            let run = engine
                .execute_batch(&compiled, &inputs)
                .expect("batch executes");
            std::hint::black_box(run.busy_pe_cycles)
        })
    });

    group.bench_function("dcgan_reduced8_server_wave4", |b| {
        // The full async round trip: admission, wave coalescing, batched
        // execution, ticket retirement — 4 requests through one server.
        let server = Server::new(
            InferenceEngine::new(machine, 2),
            ServeConfig {
                max_batch: 4,
                batch_window: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .expect("server builds");
        let model = server
            .register(&network, &weights)
            .expect("model registers");
        let inputs: Vec<_> = (0..4)
            .map(|k| deterministic_tensor(network.input_shape(), 13 + k))
            .collect();
        b.iter(|| {
            let tickets: Vec<_> = inputs
                .iter()
                .map(|input| server.submit(model, input.clone()).expect("queue has room"))
                .collect();
            for ticket in tickets {
                let response = ticket.wait().expect("request succeeds");
                std::hint::black_box(response.wave_size);
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
