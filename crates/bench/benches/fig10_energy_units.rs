//! Figure 10: per-unit energy breakdown (PE, RegF, NoC, GBuf, DRAM).

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::compare::ModelComparison;
use ganax_bench::{all_comparisons, figure10};
use ganax_models::zoo;

fn bench_fig10(c: &mut Criterion) {
    let comparisons = all_comparisons();
    println!("\nFigure 10 (generator energy by unit, normalized to EYERISS):");
    for row in figure10(&comparisons) {
        println!(
            "  {:<10} {:<5} eyeriss {:5.1}%  ganax {:5.1}%",
            row.model,
            row.unit,
            row.eyeriss * 100.0,
            row.ganax * 100.0
        );
    }

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    let three_d = zoo::three_d_gan();
    group.bench_function("3d_gan_unit_energy", |b| {
        b.iter(|| std::hint::black_box(ModelComparison::compare(&three_d).generator_unit_energy()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
