//! Ablation of the GANAX design choices (Section III): reorganization alone
//! (pure SIMD schedule) vs the full MIMD-SIMD design vs the dense baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::{AblationVariant, GanaxConfig, GanaxModel};
use ganax_models::zoo;

fn bench_ablation(c: &mut Criterion) {
    let config = GanaxConfig::paper();
    let variants = [
        ("dense (Eyeriss-like)", AblationVariant::ConventionalDense),
        ("reorg + SIMD only", AblationVariant::ReorganizedSimdOnly),
        ("full GANAX (MIMD-SIMD)", AblationVariant::Full),
    ];
    println!("\nAblation (DCGAN generator cycles):");
    let gen = zoo::dcgan().generator;
    let dense_cycles = GanaxModel::with_variant(config, AblationVariant::ConventionalDense)
        .run_network(&gen)
        .total_cycles();
    for (name, variant) in variants {
        let cycles = GanaxModel::with_variant(config, variant)
            .run_network(&gen)
            .total_cycles();
        println!(
            "  {:<24} {:>14} cycles  ({:4.2}x vs dense)",
            name,
            cycles,
            dense_cycles as f64 / cycles as f64
        );
    }

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, variant) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    GanaxModel::with_variant(config, variant)
                        .run_network(&gen)
                        .total_cycles(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_array_sweep);
criterion_main!(benches);

// ---------------------------------------------------------------------------
// Design-space sweep: how the GANAX advantage scales with the PE-array shape.
// ---------------------------------------------------------------------------

use ganax_dataflow::ArrayConfig;
use ganax_eyeriss::EyerissModel;

fn bench_array_sweep(c: &mut Criterion) {
    let shapes = [(8usize, 8usize), (8, 16), (16, 16), (16, 32), (32, 16)];
    println!("\nDesign-space sweep (DCGAN generator, speedup vs array shape):");
    let gen = zoo::dcgan().generator;
    for (pvs, pes) in shapes {
        let mut config = GanaxConfig::paper();
        config.base.array = ArrayConfig {
            num_pvs: pvs,
            pes_per_pv: pes,
        };
        let eyeriss = EyerissModel::new(config.base)
            .run_network(&gen)
            .total_cycles();
        let ganax = GanaxModel::new(config).run_network(&gen).total_cycles();
        println!(
            "  {:>2} PVs x {:>2} PEs: speedup {:4.2}x  ({} -> {} cycles)",
            pvs,
            pes,
            eyeriss as f64 / ganax as f64,
            eyeriss,
            ganax
        );
    }

    let mut group = c.benchmark_group("array_sweep");
    group.sample_size(10);
    for (pvs, pes) in shapes {
        let mut config = GanaxConfig::paper();
        config.base.array = ArrayConfig {
            num_pvs: pvs,
            pes_per_pv: pes,
        };
        group.bench_function(format!("{pvs}x{pes}"), |b| {
            b.iter(|| {
                std::hint::black_box(GanaxModel::new(config).run_network(&gen).total_cycles())
            })
        });
    }
    group.finish();
}
