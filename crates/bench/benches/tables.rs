//! Tables I–III: workload inventory, energy model and area model.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::GanaxConfig;
use ganax_energy::{AreaModel, EnergyModel};
use ganax_models::zoo;

fn bench_tables(c: &mut Criterion) {
    println!("\nTable I (layer counts):");
    for gan in zoo::all_models() {
        let (gc, gt, dc, dt) = gan.table_one_row();
        println!(
            "  {:<10} gen {}c/{}t  disc {}c/{}t",
            gan.name, gc, gt, dc, dt
        );
    }
    println!("\nTable II relative costs:");
    for (name, rel) in EnergyModel::table_ii().relative_costs() {
        println!("  {name:<26} {rel:5.1}x");
    }
    let area = AreaModel::table_iii();
    println!("\nTable III:");
    println!("  per-PE area        {:12.1} um^2", area.pe.total());
    println!("  GANAX total        {:12.1} um^2", area.ganax_total());
    println!("  Eyeriss total      {:12.1} um^2", area.eyeriss_total());
    println!(
        "  GANAX area overhead {:10.1}%",
        GanaxConfig::paper().area_overhead() * 100.0
    );

    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_zoo_construction", |b| {
        b.iter(|| std::hint::black_box(zoo::all_models().len()))
    });
    group.bench_function("table3_area_overhead", |b| {
        b.iter(|| std::hint::black_box(AreaModel::table_iii().overhead_fraction()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
