//! Figures 8a/8b: per-GAN generator speedup and energy reduction over EYERISS.

use criterion::{criterion_group, criterion_main, Criterion};
use ganax::compare::ModelComparison;
use ganax_bench::{all_comparisons, figure8};
use ganax_models::zoo;

fn bench_fig8(c: &mut Criterion) {
    let comparisons = all_comparisons();
    let (rows, speedup_geomean, energy_geomean) = figure8(&comparisons);
    println!("\nFigure 8a/8b (GANAX vs EYERISS, generative models):");
    for row in &rows {
        println!(
            "  {:<10} speedup {:4.2}x  energy reduction {:4.2}x",
            row.model, row.speedup, row.energy_reduction
        );
    }
    println!(
        "  {:<10} speedup {:4.2}x  energy reduction {:4.2}x",
        "Geomean", speedup_geomean, energy_geomean
    );

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for gan in zoo::all_models() {
        group.bench_function(&gan.name, |b| {
            b.iter(|| std::hint::black_box(ModelComparison::compare(&gan).generator_speedup()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
