//! Error handling for tensor operations.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and the reference operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the shape's volume.
    LengthMismatch {
        /// Elements expected from the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors (or a tensor and a parameter set) have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of what was being attempted.
        context: &'static str,
        /// Description of the expectation that was violated.
        detail: String,
    },
    /// A convolution would produce an empty or negative-sized output.
    EmptyOutput {
        /// Description of the offending geometry.
        detail: String,
    },
    /// An index was outside the bounds of the tensor.
    OutOfBounds {
        /// The flattened index that was requested.
        index: usize,
        /// The number of elements in the tensor.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { context, detail } => {
                write!(f, "shape mismatch during {context}: {detail}")
            }
            TensorError::EmptyOutput { detail } => {
                write!(f, "operation would produce an empty output: {detail}")
            }
            TensorError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch {
            expected: 12,
            actual: 10,
        };
        assert_eq!(
            err.to_string(),
            "data length 10 does not match shape volume 12"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            context: "convolution",
            detail: "weight channels 3 != input channels 4".to_string(),
        };
        assert!(err.to_string().contains("convolution"));
        assert!(err.to_string().contains("weight channels"));
    }

    #[test]
    fn display_out_of_bounds() {
        let err = TensorError::OutOfBounds { index: 7, len: 4 };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TensorError>();
    }
}
