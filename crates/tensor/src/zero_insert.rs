//! The explicit zero-insertion (input expansion) step of a transposed convolution.
//!
//! A transposed convolution with stride `s` inserts `s - 1` zero rows/columns
//! (and, for volumetric data, zero planes) between adjacent input elements and
//! then applies a border of implicit padding before sliding the kernel with a
//! stride of one. This module materialises that expansion so that the
//! "conventional convolution dataflow" path of the paper can be executed and
//! measured directly.

use crate::error::Result;
use crate::params::{ConvKind, ConvParams};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Description of a zero-insertion expansion along the three spatial axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroInsertion {
    /// Zeros inserted between adjacent elements along (depth, height, width).
    pub inserted: (usize, usize, usize),
    /// Border padding applied after insertion along (depth, height, width).
    pub border: (usize, usize, usize),
    /// Trailing padding appended after the last element (output padding)
    /// along (depth, height, width).
    pub trailing: (usize, usize, usize),
}

impl ZeroInsertion {
    /// Derives the expansion performed by a transposed convolution's
    /// zero-insertion step. For a conventional convolution, the insertion count
    /// is zero and the border equals the convolution padding.
    pub fn from_params(params: &ConvParams) -> Self {
        match params.kind {
            ConvKind::Conventional => ZeroInsertion {
                inserted: (0, 0, 0),
                border: params.padding,
                trailing: (0, 0, 0),
            },
            ConvKind::Transposed => ZeroInsertion {
                inserted: (
                    params.stride.0 - 1,
                    params.stride.1 - 1,
                    params.stride.2 - 1,
                ),
                border: (
                    params.kernel.0 - 1 - params.padding.0,
                    params.kernel.1 - 1 - params.padding.1,
                    params.kernel.2 - 1 - params.padding.2,
                ),
                trailing: params.output_padding,
            },
        }
    }

    /// Expanded extent along one axis for an input of the given extent.
    pub fn extent(&self, axis: usize, input: usize) -> usize {
        let (ins, border, trailing) = match axis {
            0 => (self.inserted.0, self.border.0, self.trailing.0),
            1 => (self.inserted.1, self.border.1, self.trailing.1),
            _ => (self.inserted.2, self.border.2, self.trailing.2),
        };
        if input == 0 {
            return 0;
        }
        (input - 1) * (ins + 1) + 1 + 2 * border + trailing
    }

    /// Maps an expanded-domain coordinate back to the original input
    /// coordinate it holds, if any. Returns `None` for positions that contain
    /// an inserted zero or padding.
    pub fn source(&self, axis: usize, expanded: usize, input: usize) -> Option<usize> {
        let (ins, border) = match axis {
            0 => (self.inserted.0, self.border.0),
            1 => (self.inserted.1, self.border.1),
            _ => (self.inserted.2, self.border.2),
        };
        let step = ins + 1;
        if expanded < border {
            return None;
        }
        let rel = expanded - border;
        if rel % step != 0 {
            return None;
        }
        let idx = rel / step;
        if idx < input {
            Some(idx)
        } else {
            None
        }
    }
}

/// Extent of the zero-inserted input (including the border padding) along the
/// three spatial axes, for the given transposed-convolution geometry.
///
/// For the paper's Figure 4 example (4×4 input, 5×5 kernel, upsampling 2,
/// padding 2) the expanded extent is 11×11.
pub fn zero_inserted_extent(params: &ConvParams, input: Shape) -> (usize, usize, usize) {
    let ins = ZeroInsertion::from_params(params);
    (
        ins.extent(0, input.depth),
        ins.extent(1, input.height),
        ins.extent(2, input.width),
    )
}

/// Materialises the zero-inserted (and border-padded) input of a transposed
/// convolution as an explicit tensor.
///
/// The returned tensor can be convolved with a stride of one and no extra
/// padding to produce exactly the transposed-convolution output (see
/// [`crate::tconv_via_zero_insertion`]).
///
/// # Errors
/// Propagates shape errors from the underlying geometry.
pub fn zero_insert(input: &Tensor, params: &ConvParams) -> Result<Tensor> {
    let ins = ZeroInsertion::from_params(params);
    let shape = input.shape();
    let (ed, eh, ew) = zero_inserted_extent(params, shape);
    let expanded_shape = Shape::new(shape.channels, ed, eh, ew);
    let mut out = Tensor::zeros(expanded_shape);
    for c in 0..shape.channels {
        for z in 0..ed {
            let Some(sz) = ins.source(0, z, shape.depth) else {
                continue;
            };
            for y in 0..eh {
                let Some(sy) = ins.source(1, y, shape.height) else {
                    continue;
                };
                for x in 0..ew {
                    let Some(sx) = ins.source(2, x, shape.width) else {
                        continue;
                    };
                    out.set(c, z, y, x, input.at(c, sz, sy, sx));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_expands_4x4_to_11x11() {
        let params = ConvParams::transposed_2d(5, 2, 2);
        let (d, h, w) = zero_inserted_extent(&params, Shape::new_2d(1, 4, 4));
        assert_eq!((d, h, w), (1, 11, 11));
    }

    #[test]
    fn conventional_expansion_is_just_padding() {
        let params = ConvParams::conv_2d(3, 1, 1);
        let (d, h, w) = zero_inserted_extent(&params, Shape::new_2d(1, 4, 4));
        assert_eq!((d, h, w), (1, 6, 6));
    }

    #[test]
    fn expanded_tensor_preserves_values_and_zero_fraction() {
        let params = ConvParams::transposed_2d(5, 2, 2);
        let input = Tensor::from_fn_2d(1, 4, 4, |_, y, x| (1 + y * 4 + x) as f32);
        let expanded = zero_insert(&input, &params).unwrap();
        assert_eq!(expanded.shape(), Shape::new(1, 1, 11, 11));
        // All 16 original values survive.
        let non_zero = expanded.len() - expanded.zero_count();
        assert_eq!(non_zero, 16);
        // Centre of the border: expanded coordinate (2,2) is input (0,0).
        assert_eq!(expanded.at_2d(0, 2, 2), 1.0);
        assert_eq!(expanded.at_2d(0, 2 + 2, 2 + 2), 6.0);
        // Odd rows inside the border are entirely zero.
        for x in 0..11 {
            assert_eq!(expanded.at_2d(0, 3, x), 0.0);
        }
    }

    #[test]
    fn source_mapping_round_trips() {
        let params = ConvParams::transposed_2d(5, 2, 2);
        let ins = ZeroInsertion::from_params(&params);
        // Border is 2, step is 2: expanded 2 -> 0, 4 -> 1, 6 -> 2, 8 -> 3.
        assert_eq!(ins.source(1, 2, 4), Some(0));
        assert_eq!(ins.source(1, 4, 4), Some(1));
        assert_eq!(ins.source(1, 8, 4), Some(3));
        assert_eq!(ins.source(1, 3, 4), None);
        assert_eq!(ins.source(1, 1, 4), None);
        assert_eq!(ins.source(1, 10, 4), None);
    }

    #[test]
    fn trailing_output_padding_grows_extent() {
        let params = ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1);
        let (_, h, w) = zero_inserted_extent(&params, Shape::new_2d(1, 4, 4));
        assert_eq!((h, w), (12, 12));
    }

    #[test]
    fn volumetric_expansion() {
        let params = ConvParams::transposed_3d(4, 2, 1);
        let input = Tensor::filled(Shape::new(1, 2, 2, 2), 1.0);
        let expanded = zero_insert(&input, &params).unwrap();
        // (2-1)*2 + 1 + 2*(4-1-1) = 7 along each axis.
        assert_eq!(expanded.shape(), Shape::new(1, 7, 7, 7));
        assert_eq!(expanded.len() - expanded.zero_count(), 8);
    }
}
