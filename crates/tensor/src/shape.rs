//! Shapes of feature maps and filters.

use std::fmt;

/// The shape of a dense feature-map or filter tensor.
///
/// Data is always treated volumetrically: a 2-D feature map is a volume with
/// `depth == 1`. Filters additionally carry the number of *input* channels they
/// consume via [`Shape::filter_channels`]; feature maps leave it at zero.
///
/// Storage order is `[channels][filter_channels][depth][height][width]`, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of (output) channels.
    pub channels: usize,
    /// Number of input channels addressed by each filter (0 for feature maps).
    pub filter_channels: usize,
    /// Spatial depth (1 for 2-D data).
    pub depth: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl Shape {
    /// Creates a feature-map shape (no filter-channel axis).
    ///
    /// # Example
    /// ```
    /// let s = ganax_tensor::Shape::new(3, 1, 64, 64);
    /// assert_eq!(s.volume(), 3 * 64 * 64);
    /// ```
    pub fn new(channels: usize, depth: usize, height: usize, width: usize) -> Self {
        Shape {
            channels,
            filter_channels: 0,
            depth,
            height,
            width,
        }
    }

    /// Creates a 2-D feature-map shape (depth of one).
    pub fn new_2d(channels: usize, height: usize, width: usize) -> Self {
        Shape::new(channels, 1, height, width)
    }

    /// Creates a filter shape: `out_channels × in_channels × depth × height × width`.
    pub fn filter(
        out_channels: usize,
        in_channels: usize,
        depth: usize,
        height: usize,
        width: usize,
    ) -> Self {
        Shape {
            channels: out_channels,
            filter_channels: in_channels,
            depth,
            height,
            width,
        }
    }

    /// Returns a copy of this shape with the filter-channel axis set.
    pub fn with_filter_channels(mut self, in_channels: usize) -> Self {
        self.filter_channels = in_channels;
        self
    }

    /// Whether the shape represents a filter (it has an input-channel axis).
    pub fn is_filter(&self) -> bool {
        self.filter_channels > 0
    }

    /// Whether the spatial extent is two dimensional (depth of one).
    pub fn is_2d(&self) -> bool {
        self.depth == 1
    }

    /// Number of elements in one channel's spatial volume.
    pub fn spatial_volume(&self) -> usize {
        self.depth * self.height * self.width
    }

    /// Total number of scalar elements described by the shape.
    pub fn volume(&self) -> usize {
        let filter_axis = if self.filter_channels == 0 {
            1
        } else {
            self.filter_channels
        };
        self.channels * filter_axis * self.spatial_volume()
    }

    /// Flattens a feature-map coordinate to a linear index.
    ///
    /// # Panics
    /// Panics (in debug builds) if any coordinate is out of range.
    pub fn index(&self, c: usize, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels, "channel {c} out of {}", self.channels);
        debug_assert!(z < self.depth, "depth {z} out of {}", self.depth);
        debug_assert!(y < self.height, "row {y} out of {}", self.height);
        debug_assert!(x < self.width, "column {x} out of {}", self.width);
        ((c * self.depth + z) * self.height + y) * self.width + x
    }

    /// Flattens a filter coordinate (output channel, input channel, z, y, x).
    pub fn filter_index(&self, co: usize, ci: usize, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(self.is_filter(), "filter_index on a feature-map shape");
        debug_assert!(co < self.channels && ci < self.filter_channels);
        (((co * self.filter_channels + ci) * self.depth + z) * self.height + y) * self.width + x
    }

    /// Inverse of [`Shape::index`]: recovers `(channel, z, y, x)` from a linear index.
    pub fn coords(&self, mut idx: usize) -> (usize, usize, usize, usize) {
        let x = idx % self.width;
        idx /= self.width;
        let y = idx % self.height;
        idx /= self.height;
        let z = idx % self.depth;
        idx /= self.depth;
        (idx, z, y, x)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_filter() {
            write!(
                f,
                "{}x{}x{}x{}x{}",
                self.channels, self.filter_channels, self.depth, self.height, self.width
            )
        } else if self.is_2d() {
            write!(f, "{}x{}x{}", self.channels, self.height, self.width)
        } else {
            write!(
                f,
                "{}x{}x{}x{}",
                self.channels, self.depth, self.height, self.width
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_map_volume() {
        let s = Shape::new_2d(3, 32, 32);
        assert_eq!(s.volume(), 3 * 32 * 32);
        assert!(s.is_2d());
        assert!(!s.is_filter());
    }

    #[test]
    fn volumetric_shape() {
        let s = Shape::new(8, 4, 4, 4);
        assert!(!s.is_2d());
        assert_eq!(s.spatial_volume(), 64);
        assert_eq!(s.volume(), 8 * 64);
    }

    #[test]
    fn filter_volume_includes_input_channels() {
        let s = Shape::filter(16, 8, 1, 5, 5);
        assert!(s.is_filter());
        assert_eq!(s.volume(), 16 * 8 * 25);
    }

    #[test]
    fn index_round_trip() {
        let s = Shape::new(3, 2, 4, 5);
        for c in 0..3 {
            for z in 0..2 {
                for y in 0..4 {
                    for x in 0..5 {
                        let idx = s.index(c, z, y, x);
                        assert_eq!(s.coords(idx), (c, z, y, x));
                    }
                }
            }
        }
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let s = Shape::new(2, 3, 4, 5);
        let mut seen = vec![false; s.volume()];
        for c in 0..2 {
            for z in 0..3 {
                for y in 0..4 {
                    for x in 0..5 {
                        let idx = s.index(c, z, y, x);
                        assert!(!seen[idx]);
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn filter_index_is_dense() {
        let s = Shape::filter(4, 3, 1, 2, 2);
        let mut seen = vec![false; s.volume()];
        for co in 0..4 {
            for ci in 0..3 {
                for y in 0..2 {
                    for x in 0..2 {
                        let idx = s.filter_index(co, ci, 0, y, x);
                        assert!(!seen[idx]);
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::new_2d(3, 64, 64).to_string(), "3x64x64");
        assert_eq!(Shape::new(1, 4, 4, 4).to_string(), "1x4x4x4");
        assert_eq!(Shape::filter(16, 8, 1, 5, 5).to_string(), "16x8x1x5x5");
    }

    #[test]
    fn with_filter_channels_builder() {
        let s = Shape::new_2d(16, 5, 5).with_filter_channels(8);
        assert!(s.is_filter());
        assert_eq!(s.filter_channels, 8);
    }
}
