//! Dense tensors and reference convolution / transposed-convolution operators.
//!
//! This crate is the *golden functional model* of the GANAX reproduction: every
//! accelerator path (the Eyeriss-style baseline and the GANAX machine itself) is
//! validated against the straightforward, loop-nest implementations defined here.
//!
//! The crate deliberately favours clarity over performance. All spatial data is
//! represented volumetrically (depth × height × width); two-dimensional feature
//! maps are simply volumes with a depth of one, which lets a single convolution
//! implementation serve both the 2-D GANs (DCGAN, ArtGAN, …) and the volumetric
//! 3D-GAN workload.
//!
//! # Example
//!
//! ```
//! use ganax_tensor::{ConvParams, Tensor, conv, tconv};
//!
//! // A tiny 1-channel 4x4 input, upsampled 2x by a 5x5 transposed convolution —
//! // the worked example from Figure 4 of the GANAX paper.
//! let input = Tensor::from_fn_2d(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
//! let weight = Tensor::filled_filter(1, 1, 1, 5, 5, 0.5);
//! let params = ConvParams::transposed_2d(5, 2, 2);
//! let output = tconv(&input, &weight, &params).unwrap();
//! assert_eq!(output.shape().height, 7);
//! assert_eq!(output.shape().width, 7);
//!
//! // The forward convolution of the same geometry reduces 7x7 back to 4x4.
//! let fwd = ConvParams::conv_2d(5, 2, 2);
//! let reduced = conv(&output, &weight, &fwd).unwrap();
//! assert_eq!(reduced.shape().height, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod params;
mod shape;
mod tensor;
mod zero_insert;

pub use conv::{conv, flip_kernel, tconv, tconv_via_zero_insertion};
pub use error::{Result, TensorError};
pub use params::{ConvKind, ConvParams};
pub use shape::Shape;
pub use tensor::Tensor;
pub use zero_insert::{zero_insert, zero_inserted_extent, ZeroInsertion};
