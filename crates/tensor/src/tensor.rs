//! A dense, channel-major tensor of `f32` values.

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense tensor storing `f32` elements in channel-major, row-major order.
///
/// Feature maps are indexed by `(channel, z, y, x)`; filters by
/// `(out_channel, in_channel, z, y, x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a deterministic pseudo-random tensor: an xorshift64 stream
    /// seeded from `seed`, mapped to `[-1, 1)` in steps of 1/1000. The single
    /// source of the reproducible operands used by the benches, the
    /// conformance suites and the sweep engine's machine spot checks — one
    /// definition, so their numbers stay comparable.
    pub fn deterministic(shape: Shape, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 / 1000.0) - 1.0
        };
        let mut tensor = Tensor::zeros(shape);
        for v in tensor.data_mut() {
            *v = next();
        }
        tensor
    }

    /// Creates a tensor with every element set to `value`.
    pub fn filled(shape: Shape, value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a filter tensor with every element set to `value`.
    pub fn filled_filter(
        out_channels: usize,
        in_channels: usize,
        depth: usize,
        height: usize,
        width: usize,
        value: f32,
    ) -> Self {
        Tensor::filled(
            Shape::filter(out_channels, in_channels, depth, height, width),
            value,
        )
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from the
    /// shape's volume.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a feature-map tensor by evaluating `f(channel, z, y, x)`.
    pub fn from_fn<F>(shape: Shape, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut t = Tensor::zeros(shape);
        for c in 0..shape.channels {
            for z in 0..shape.depth {
                for y in 0..shape.height {
                    for x in 0..shape.width {
                        let v = f(c, z, y, x);
                        t.data[shape.index(c, z, y, x)] = v;
                    }
                }
            }
        }
        t
    }

    /// Creates a 2-D feature-map tensor by evaluating `f(channel, y, x)`.
    pub fn from_fn_2d<F>(channels: usize, height: usize, width: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize) -> f32,
    {
        Tensor::from_fn(Shape::new_2d(channels, height, width), |c, _z, y, x| {
            f(c, y, x)
        })
    }

    /// Creates a filter tensor by evaluating `f(out_channel, in_channel, z, y, x)`.
    pub fn from_filter_fn<F>(shape: Shape, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize, usize) -> f32,
    {
        assert!(shape.is_filter(), "from_filter_fn requires a filter shape");
        let mut t = Tensor::zeros(shape);
        for co in 0..shape.channels {
            for ci in 0..shape.filter_channels {
                for z in 0..shape.depth {
                    for y in 0..shape.height {
                        for x in 0..shape.width {
                            t.data[shape.filter_index(co, ci, z, y, x)] = f(co, ci, z, y, x);
                        }
                    }
                }
            }
        }
        t
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The underlying data in storage order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data in storage order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads a feature-map element.
    pub fn at(&self, c: usize, z: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.index(c, z, y, x)]
    }

    /// Reads a 2-D feature-map element (depth index 0).
    pub fn at_2d(&self, c: usize, y: usize, x: usize) -> f32 {
        self.at(c, 0, y, x)
    }

    /// Borrows one contiguous 2-D feature-map row (depth index 0) — the
    /// allocation-free way to stream a row into a PE scratchpad.
    pub fn row_2d(&self, c: usize, y: usize) -> &[f32] {
        let start = self.shape.index(c, 0, y, 0);
        &self.data[start..start + self.shape.width]
    }

    /// Writes a feature-map element.
    pub fn set(&mut self, c: usize, z: usize, y: usize, x: usize, value: f32) {
        let idx = self.shape.index(c, z, y, x);
        self.data[idx] = value;
    }

    /// Adds `value` to a feature-map element.
    pub fn add_at(&mut self, c: usize, z: usize, y: usize, x: usize, value: f32) {
        let idx = self.shape.index(c, z, y, x);
        self.data[idx] += value;
    }

    /// Reads a filter element.
    pub fn at_filter(&self, co: usize, ci: usize, z: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.filter_index(co, ci, z, y, x)]
    }

    /// Writes a filter element.
    pub fn set_filter(&mut self, co: usize, ci: usize, z: usize, y: usize, x: usize, value: f32) {
        let idx = self.shape.filter_index(co, ci, z, y, x);
        self.data[idx] = value;
    }

    /// Number of elements that are exactly zero.
    pub fn zero_count(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of elements that are exactly zero (0.0 for an empty tensor).
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.zero_count() as f64 / self.data.len() as f64
        }
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: "max_abs_diff",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Returns true when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        matches!(self.max_abs_diff(other), Ok(d) if d <= tol)
    }

    /// Applies a scalar function to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Sum of all elements (useful for quick integrity checks in tests).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|v| *v as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(Shape::new_2d(3, 4, 5));
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
        assert_eq!(t.zero_count(), 60);
        assert_eq!(t.zero_fraction(), 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(Shape::new_2d(1, 2, 2), vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
        assert!(Tensor::from_vec(Shape::new_2d(1, 2, 2), vec![1.0; 4]).is_ok());
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut t = Tensor::zeros(Shape::new(2, 2, 3, 3));
        t.set(1, 1, 2, 0, 42.0);
        assert_eq!(t.at(1, 1, 2, 0), 42.0);
        t.add_at(1, 1, 2, 0, 1.0);
        assert_eq!(t.at(1, 1, 2, 0), 43.0);
    }

    #[test]
    fn from_fn_2d_matches_coordinates() {
        let t = Tensor::from_fn_2d(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.at_2d(1, 2, 3), 123.0);
        assert_eq!(t.at_2d(0, 0, 0), 0.0);
    }

    #[test]
    fn row_2d_matches_elementwise_reads() {
        let t = Tensor::from_fn_2d(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let row = t.row_2d(1, 2);
        assert_eq!(row.len(), 4);
        for (x, &v) in row.iter().enumerate() {
            assert_eq!(v, t.at_2d(1, 2, x));
        }
    }

    #[test]
    fn filter_accessors() {
        let shape = Shape::filter(2, 3, 1, 2, 2);
        let mut w = Tensor::zeros(shape);
        w.set_filter(1, 2, 0, 1, 1, 7.0);
        assert_eq!(w.at_filter(1, 2, 0, 1, 1), 7.0);
        let w2 = Tensor::from_filter_fn(shape, |co, ci, _z, y, x| (co + ci + y + x) as f32);
        assert_eq!(w2.at_filter(1, 2, 0, 1, 1), 5.0);
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Tensor::filled(Shape::new_2d(1, 2, 2), 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1, 1, 1.25);
        assert!((a.max_abs_diff(&b).unwrap() - 0.25).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.3));
        assert!(!a.approx_eq(&b, 0.1));
    }

    #[test]
    fn max_abs_diff_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::new_2d(1, 2, 2));
        let b = Tensor::zeros(Shape::new_2d(1, 2, 3));
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn map_and_sum() {
        let t = Tensor::from_fn_2d(1, 2, 2, |_, y, x| (y * 2 + x) as f32);
        assert_eq!(t.sum(), 6.0);
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.sum(), 12.0);
    }
}
