//! Convolution and transposed-convolution geometry parameters.

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// Whether a layer performs a data-reducing convolution or a data-expanding
/// transposed convolution (Figure 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKind {
    /// Conventional convolution: slides a window over the input with a stride,
    /// reducing (or preserving) the spatial extent.
    Conventional,
    /// Transposed convolution: inserts `stride - 1` zeros between input
    /// elements and then convolves, expanding the spatial extent.
    Transposed,
}

/// Geometry of a (transposed) convolution: kernel extent, stride and padding
/// per spatial axis.
///
/// For a conventional convolution the output extent along an axis is
/// `(input + 2 * padding - kernel) / stride + 1`.
///
/// For a transposed convolution the output extent is
/// `(input - 1) * stride - 2 * padding + kernel + output_padding`, matching the
/// common deep-learning framework convention. The equivalent "expanded input"
/// view used throughout the paper inserts `stride - 1` zeros between adjacent
/// input elements and then performs a stride-1 convolution with border padding
/// of `kernel - 1 - padding`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Operation flavour.
    pub kind: ConvKind,
    /// Kernel extent (depth, height, width).
    pub kernel: (usize, usize, usize),
    /// Stride (depth, height, width). For transposed convolutions this is the
    /// upsampling factor, i.e. `stride - 1` zeros are inserted along each axis.
    pub stride: (usize, usize, usize),
    /// Padding (depth, height, width).
    pub padding: (usize, usize, usize),
    /// Extra rows/columns appended to the output of a transposed convolution
    /// (depth, height, width). Ignored for conventional convolutions.
    pub output_padding: (usize, usize, usize),
}

impl ConvParams {
    /// Square 2-D conventional convolution.
    pub fn conv_2d(kernel: usize, stride: usize, padding: usize) -> Self {
        ConvParams {
            kind: ConvKind::Conventional,
            kernel: (1, kernel, kernel),
            stride: (1, stride, stride),
            padding: (0, padding, padding),
            output_padding: (0, 0, 0),
        }
    }

    /// Square 2-D transposed convolution.
    pub fn transposed_2d(kernel: usize, stride: usize, padding: usize) -> Self {
        ConvParams {
            kind: ConvKind::Transposed,
            kernel: (1, kernel, kernel),
            stride: (1, stride, stride),
            padding: (0, padding, padding),
            output_padding: (0, 0, 0),
        }
    }

    /// Cubic 3-D conventional convolution (used by the 3D-GAN discriminator).
    pub fn conv_3d(kernel: usize, stride: usize, padding: usize) -> Self {
        ConvParams {
            kind: ConvKind::Conventional,
            kernel: (kernel, kernel, kernel),
            stride: (stride, stride, stride),
            padding: (padding, padding, padding),
            output_padding: (0, 0, 0),
        }
    }

    /// Cubic 3-D transposed convolution (used by the 3D-GAN generator).
    pub fn transposed_3d(kernel: usize, stride: usize, padding: usize) -> Self {
        ConvParams {
            kind: ConvKind::Transposed,
            kernel: (kernel, kernel, kernel),
            stride: (stride, stride, stride),
            padding: (padding, padding, padding),
            output_padding: (0, 0, 0),
        }
    }

    /// Adds transposed-convolution output padding along (depth, height, width).
    pub fn with_output_padding(mut self, depth: usize, height: usize, width: usize) -> Self {
        self.output_padding = (depth, height, width);
        self
    }

    /// Whether this describes a transposed convolution.
    pub fn is_transposed(&self) -> bool {
        self.kind == ConvKind::Transposed
    }

    /// The number of zeros inserted between adjacent input elements along each
    /// axis by the transposed convolution's expansion step (zero for
    /// conventional convolutions and for stride-1 transposed convolutions).
    pub fn inserted_zeros(&self) -> (usize, usize, usize) {
        match self.kind {
            ConvKind::Conventional => (0, 0, 0),
            ConvKind::Transposed => (self.stride.0 - 1, self.stride.1 - 1, self.stride.2 - 1),
        }
    }

    /// Output spatial extent along one axis.
    fn out_extent_1d(&self, input: usize, axis: usize) -> Result<usize> {
        let (k, s, p, op) = match axis {
            0 => (
                self.kernel.0,
                self.stride.0,
                self.padding.0,
                self.output_padding.0,
            ),
            1 => (
                self.kernel.1,
                self.stride.1,
                self.padding.1,
                self.output_padding.1,
            ),
            _ => (
                self.kernel.2,
                self.stride.2,
                self.padding.2,
                self.output_padding.2,
            ),
        };
        match self.kind {
            ConvKind::Conventional => {
                let padded = input + 2 * p;
                if padded < k {
                    return Err(TensorError::EmptyOutput {
                        detail: format!(
                            "padded input extent {padded} smaller than kernel {k} on axis {axis}"
                        ),
                    });
                }
                Ok((padded - k) / s + 1)
            }
            ConvKind::Transposed => {
                if input == 0 {
                    return Err(TensorError::EmptyOutput {
                        detail: format!("zero input extent on axis {axis}"),
                    });
                }
                let grown = (input - 1) * s + k + op;
                if grown < 2 * p + 1 {
                    return Err(TensorError::EmptyOutput {
                        detail: format!(
                            "padding {p} consumes the whole transposed output on axis {axis}"
                        ),
                    });
                }
                Ok(grown - 2 * p)
            }
        }
    }

    /// Computes the output feature-map shape for an input shape and a filter
    /// with `out_channels` output channels.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyOutput`] if the geometry would produce an
    /// empty output along any axis.
    pub fn output_shape(&self, input: Shape, out_channels: usize) -> Result<Shape> {
        let depth = self.out_extent_1d(input.depth, 0)?;
        let height = self.out_extent_1d(input.height, 1)?;
        let width = self.out_extent_1d(input.width, 2)?;
        Ok(Shape::new(out_channels, depth, height, width))
    }

    /// Number of multiply-accumulate operations a *dense* sliding-window
    /// execution of this layer performs (for transposed convolutions this is
    /// counted over the zero-inserted input — the "conventional dataflow" cost
    /// that Figure 1 of the paper uses as its denominator).
    pub fn dense_macs(&self, input: Shape, out_channels: usize) -> Result<u64> {
        let out = self.output_shape(input, out_channels)?;
        let per_output = self.kernel.0 as u64
            * self.kernel.1 as u64
            * self.kernel.2 as u64
            * input.channels as u64;
        Ok(out.volume() as u64 * per_output)
    }

    /// Number of *consequential* multiply-accumulate operations: products whose
    /// input operand is an original (non-inserted) input element. For
    /// conventional convolutions this equals [`ConvParams::dense_macs`].
    pub fn consequential_macs(&self, input: Shape, out_channels: usize) -> Result<u64> {
        match self.kind {
            ConvKind::Conventional => self.dense_macs(input, out_channels),
            ConvKind::Transposed => {
                // Every original input element is touched by exactly
                // kernel_d * kernel_h * kernel_w * out_channels products in the
                // scatter formulation (minus those scattered outside the output
                // bounds). Count them exactly by walking the scatter extent.
                let out = self.output_shape(input, out_channels)?;
                let mut per_axis = [0u64; 3];
                for (axis, (extent, out_extent)) in [
                    (input.depth, out.depth),
                    (input.height, out.height),
                    (input.width, out.width),
                ]
                .iter()
                .enumerate()
                {
                    let (k, s, p) = match axis {
                        0 => (self.kernel.0, self.stride.0, self.padding.0),
                        1 => (self.kernel.1, self.stride.1, self.padding.1),
                        _ => (self.kernel.2, self.stride.2, self.padding.2),
                    };
                    let mut count = 0u64;
                    for i in 0..*extent {
                        for kk in 0..k {
                            let pos = (i * s + kk) as isize - p as isize;
                            if pos >= 0 && (pos as usize) < *out_extent {
                                count += 1;
                            }
                        }
                    }
                    per_axis[axis] = count;
                }
                Ok(per_axis[0]
                    * per_axis[1]
                    * per_axis[2]
                    * input.channels as u64
                    * out_channels as u64)
            }
        }
    }

    /// Number of multiply-accumulates whose input operand is an original
    /// element *inside* the input bounds — the products a machine that skips
    /// both inserted zeros and implicit zero padding actually executes.
    ///
    /// For transposed convolutions this equals
    /// [`ConvParams::consequential_macs`] (its scatter walk is already
    /// bounds-checked); for conventional convolutions it is
    /// [`ConvParams::dense_macs`] minus the padding taps.
    pub fn in_bounds_macs(&self, input: Shape, out_channels: usize) -> Result<u64> {
        match self.kind {
            ConvKind::Transposed => self.consequential_macs(input, out_channels),
            ConvKind::Conventional => {
                let out = self.output_shape(input, out_channels)?;
                // Bounds are independent per axis, so the tap count factors.
                let mut per_axis = [0u64; 3];
                for (axis, (in_extent, out_extent)) in [
                    (input.depth, out.depth),
                    (input.height, out.height),
                    (input.width, out.width),
                ]
                .iter()
                .enumerate()
                {
                    let (k, s, p) = match axis {
                        0 => (self.kernel.0, self.stride.0, self.padding.0),
                        1 => (self.kernel.1, self.stride.1, self.padding.1),
                        _ => (self.kernel.2, self.stride.2, self.padding.2),
                    };
                    let mut count = 0u64;
                    for o in 0..*out_extent {
                        for kk in 0..k {
                            let pos = (o * s + kk) as isize - p as isize;
                            if pos >= 0 && (pos as usize) < *in_extent {
                                count += 1;
                            }
                        }
                    }
                    per_axis[axis] = count;
                }
                Ok(per_axis[0]
                    * per_axis[1]
                    * per_axis[2]
                    * input.channels as u64
                    * out_channels as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_output_shape() {
        // 64x64 input, 5x5 kernel, stride 2, padding 2 -> 32x32.
        let p = ConvParams::conv_2d(5, 2, 2);
        let out = p.output_shape(Shape::new_2d(3, 64, 64), 16).unwrap();
        assert_eq!((out.channels, out.height, out.width), (16, 32, 32));
    }

    #[test]
    fn transposed_output_shape_paper_example() {
        // The Figure 4 example: 4x4 input, 5x5 filter, upsample 2, padding 2 -> 7x7.
        let p = ConvParams::transposed_2d(5, 2, 2);
        let out = p.output_shape(Shape::new_2d(1, 4, 4), 1).unwrap();
        assert_eq!((out.height, out.width), (7, 7));
    }

    #[test]
    fn transposed_output_shape_dcgan_layer() {
        // DCGAN-style: 4x4 -> 8x8 with k=5, s=2, p=2, output padding 1.
        let p = ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1);
        let out = p.output_shape(Shape::new_2d(1024, 4, 4), 512).unwrap();
        assert_eq!((out.height, out.width), (8, 8));
        assert_eq!(out.channels, 512);
    }

    #[test]
    fn transposed_3d_output_shape() {
        let p = ConvParams::transposed_3d(4, 2, 1);
        let out = p.output_shape(Shape::new(512, 4, 4, 4), 256).unwrap();
        assert_eq!((out.depth, out.height, out.width), (8, 8, 8));
    }

    #[test]
    fn empty_output_is_an_error() {
        let p = ConvParams::conv_2d(7, 1, 0);
        assert!(p.output_shape(Shape::new_2d(1, 4, 4), 1).is_err());
    }

    #[test]
    fn inserted_zero_counts() {
        assert_eq!(ConvParams::conv_2d(3, 2, 1).inserted_zeros(), (0, 0, 0));
        assert_eq!(
            ConvParams::transposed_2d(5, 2, 2).inserted_zeros(),
            (0, 1, 1)
        );
        assert_eq!(
            ConvParams::transposed_3d(4, 2, 1).inserted_zeros(),
            (1, 1, 1)
        );
    }

    #[test]
    fn dense_vs_consequential_macs_conventional() {
        let p = ConvParams::conv_2d(3, 1, 1);
        let shape = Shape::new_2d(4, 16, 16);
        assert_eq!(
            p.dense_macs(shape, 8).unwrap(),
            p.consequential_macs(shape, 8).unwrap()
        );
    }

    #[test]
    fn consequential_fraction_for_stride2_upsampling() {
        // With 2x upsampling roughly 3/4 of the products hit inserted zeros, so
        // the consequential count should be roughly a quarter of the dense count.
        let p = ConvParams::transposed_2d(5, 2, 2);
        let shape = Shape::new_2d(64, 16, 16);
        let dense = p.dense_macs(shape, 32).unwrap() as f64;
        let consequential = p.consequential_macs(shape, 32).unwrap() as f64;
        let ratio = consequential / dense;
        assert!(ratio > 0.2 && ratio < 0.35, "ratio = {ratio}");
    }

    #[test]
    fn in_bounds_macs_subtracts_padding_taps() {
        // Unpadded conventional convolution: every tap is in bounds.
        let p = ConvParams::conv_2d(3, 1, 0);
        let shape = Shape::new_2d(2, 8, 8);
        assert_eq!(
            p.in_bounds_macs(shape, 4).unwrap(),
            p.dense_macs(shape, 4).unwrap()
        );

        // Same-padded 3x3 over 8x8: per axis, the border output positions
        // each lose one tap (8*3 - 2 = 22 in-bounds taps per axis).
        let p = ConvParams::conv_2d(3, 1, 1);
        assert_eq!(p.in_bounds_macs(shape, 4).unwrap(), 22 * 22 * 2 * 4);
        assert!(p.in_bounds_macs(shape, 4).unwrap() < p.dense_macs(shape, 4).unwrap());

        // Transposed convolutions: identical to the consequential count.
        let t = ConvParams::transposed_2d(5, 2, 2);
        let shape = Shape::new_2d(3, 4, 4);
        assert_eq!(
            t.in_bounds_macs(shape, 2).unwrap(),
            t.consequential_macs(shape, 2).unwrap()
        );
    }

    #[test]
    fn consequential_macs_exact_small_case() {
        // 1x1 input, 3x3 kernel, stride 2, no padding: output is 3x3 and every
        // kernel tap lands in-bounds exactly once -> 9 consequential MACs.
        let p = ConvParams::transposed_2d(3, 2, 0);
        let shape = Shape::new_2d(1, 1, 1);
        assert_eq!(p.consequential_macs(shape, 1).unwrap(), 9);
        let out = p.output_shape(shape, 1).unwrap();
        assert_eq!((out.height, out.width), (3, 3));
    }
}
