//! Reference convolution and transposed-convolution implementations.
//!
//! These are direct loop nests over the mathematical definitions. They are not
//! fast; their only job is to be obviously correct so the accelerator models can
//! be validated against them.

use crate::error::{Result, TensorError};
use crate::params::{ConvKind, ConvParams};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::zero_insert::zero_insert;

fn check_filter(input: Shape, weight: Shape, context: &'static str) -> Result<()> {
    if !weight.is_filter() {
        return Err(TensorError::ShapeMismatch {
            context,
            detail: format!("weight {weight} is not a filter shape"),
        });
    }
    if weight.filter_channels != input.channels {
        return Err(TensorError::ShapeMismatch {
            context,
            detail: format!(
                "weight input channels {} != input channels {}",
                weight.filter_channels, input.channels
            ),
        });
    }
    Ok(())
}

fn check_kernel(params: &ConvParams, weight: Shape, context: &'static str) -> Result<()> {
    if params.kernel != (weight.depth, weight.height, weight.width) {
        return Err(TensorError::ShapeMismatch {
            context,
            detail: format!(
                "kernel {:?} does not match weight spatial extent {}x{}x{}",
                params.kernel, weight.depth, weight.height, weight.width
            ),
        });
    }
    Ok(())
}

/// Conventional (data-reducing) convolution.
///
/// `weight` has shape `out_channels × in_channels × kd × kh × kw`. Padding is
/// implicit zero padding around the input.
///
/// # Errors
/// Returns a [`TensorError::ShapeMismatch`] if the weight does not match the
/// input channels or the declared kernel extent, and propagates geometry errors
/// from [`ConvParams::output_shape`].
pub fn conv(input: &Tensor, weight: &Tensor, params: &ConvParams) -> Result<Tensor> {
    let in_shape = input.shape();
    let w_shape = weight.shape();
    check_filter(in_shape, w_shape, "conv")?;
    check_kernel(params, w_shape, "conv")?;
    let conv_params = ConvParams {
        kind: ConvKind::Conventional,
        ..*params
    };
    let out_shape = conv_params.output_shape(in_shape, w_shape.channels)?;
    let mut out = Tensor::zeros(out_shape);
    let (kd, kh, kw) = conv_params.kernel;
    let (sd, sh, sw) = conv_params.stride;
    let (pd, ph, pw) = conv_params.padding;

    for co in 0..out_shape.channels {
        for oz in 0..out_shape.depth {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let mut acc = 0.0f32;
                    for ci in 0..in_shape.channels {
                        for kz in 0..kd {
                            let iz = (oz * sd + kz) as isize - pd as isize;
                            if iz < 0 || iz as usize >= in_shape.depth {
                                continue;
                            }
                            for ky in 0..kh {
                                let iy = (oy * sh + ky) as isize - ph as isize;
                                if iy < 0 || iy as usize >= in_shape.height {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * sw + kx) as isize - pw as isize;
                                    if ix < 0 || ix as usize >= in_shape.width {
                                        continue;
                                    }
                                    acc += input.at(ci, iz as usize, iy as usize, ix as usize)
                                        * weight.at_filter(co, ci, kz, ky, kx);
                                }
                            }
                        }
                    }
                    out.set(co, oz, oy, ox, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Transposed (data-expanding) convolution, computed directly in scatter form.
///
/// `weight` has shape `out_channels × in_channels × kd × kh × kw`, i.e. the
/// same layout as for [`conv`]; each original input element is scattered into
/// the output through every kernel tap.
///
/// # Errors
/// Returns a [`TensorError::ShapeMismatch`] if the weight does not match the
/// input channels or the declared kernel extent, and propagates geometry errors
/// from [`ConvParams::output_shape`].
pub fn tconv(input: &Tensor, weight: &Tensor, params: &ConvParams) -> Result<Tensor> {
    let in_shape = input.shape();
    let w_shape = weight.shape();
    check_filter(in_shape, w_shape, "tconv")?;
    check_kernel(params, w_shape, "tconv")?;
    let t_params = ConvParams {
        kind: ConvKind::Transposed,
        ..*params
    };
    let out_shape = t_params.output_shape(in_shape, w_shape.channels)?;
    let mut out = Tensor::zeros(out_shape);
    let (kd, kh, kw) = t_params.kernel;
    let (sd, sh, sw) = t_params.stride;
    let (pd, ph, pw) = t_params.padding;

    for ci in 0..in_shape.channels {
        for iz in 0..in_shape.depth {
            for iy in 0..in_shape.height {
                for ix in 0..in_shape.width {
                    let v = input.at(ci, iz, iy, ix);
                    if v == 0.0 {
                        // Zero inputs scatter nothing; skipping them changes no
                        // result and keeps the reference usable on large maps.
                        continue;
                    }
                    for co in 0..out_shape.channels {
                        for kz in 0..kd {
                            let oz = (iz * sd + kz) as isize - pd as isize;
                            if oz < 0 || oz as usize >= out_shape.depth {
                                continue;
                            }
                            for ky in 0..kh {
                                let oy = (iy * sh + ky) as isize - ph as isize;
                                if oy < 0 || oy as usize >= out_shape.height {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ox = (ix * sw + kx) as isize - pw as isize;
                                    if ox < 0 || ox as usize >= out_shape.width {
                                        continue;
                                    }
                                    out.add_at(
                                        co,
                                        oz as usize,
                                        oy as usize,
                                        ox as usize,
                                        v * weight.at_filter(co, ci, kz, ky, kx),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Spatially flips a filter along every kernel axis (the classical
/// correlation/convolution adjoint relationship).
pub fn flip_kernel(weight: &Tensor) -> Tensor {
    let shape = weight.shape();
    assert!(shape.is_filter(), "flip_kernel requires a filter tensor");
    Tensor::from_filter_fn(shape, |co, ci, z, y, x| {
        weight.at_filter(
            co,
            ci,
            shape.depth - 1 - z,
            shape.height - 1 - y,
            shape.width - 1 - x,
        )
    })
}

/// Computes a transposed convolution the way the paper's "conventional
/// convolution dataflow" does: materialise the zero-inserted input, then run a
/// stride-1 dense convolution with the spatially flipped kernel over it.
///
/// This is mathematically identical to [`tconv`] (a property test asserts so)
/// but executes every inconsequential multiply-add explicitly, which is exactly
/// the behaviour the Eyeriss baseline model accounts for.
///
/// # Errors
/// Propagates the same shape errors as [`tconv`].
pub fn tconv_via_zero_insertion(
    input: &Tensor,
    weight: &Tensor,
    params: &ConvParams,
) -> Result<Tensor> {
    let t_params = ConvParams {
        kind: ConvKind::Transposed,
        ..*params
    };
    check_filter(input.shape(), weight.shape(), "tconv_via_zero_insertion")?;
    check_kernel(&t_params, weight.shape(), "tconv_via_zero_insertion")?;
    let expanded = zero_insert(input, &t_params)?;
    let flipped = flip_kernel(weight);
    let dense = ConvParams {
        kind: ConvKind::Conventional,
        kernel: t_params.kernel,
        stride: (1, 1, 1),
        padding: (0, 0, 0),
        output_padding: (0, 0, 0),
    };
    conv(&expanded, &flipped, &dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simple_input(h: usize, w: usize) -> Tensor {
        Tensor::from_fn_2d(1, h, w, |_, y, x| (1 + y * w + x) as f32)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = simple_input(4, 4);
        let mut weight = Tensor::zeros(Shape::filter(1, 1, 1, 3, 3));
        weight.set_filter(0, 0, 0, 1, 1, 1.0);
        let params = ConvParams::conv_2d(3, 1, 1);
        let out = conv(&input, &weight, &params).unwrap();
        assert!(out.approx_eq(&input, 1e-6));
    }

    #[test]
    fn conv_box_filter_small_case() {
        // 2x2 input, 2x2 all-ones kernel, stride 1, no padding -> single sum.
        let input = simple_input(2, 2);
        let weight = Tensor::filled_filter(1, 1, 1, 2, 2, 1.0);
        let params = ConvParams::conv_2d(2, 1, 0);
        let out = conv(&input, &weight, &params).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 1, 1));
        assert_eq!(out.at_2d(0, 0, 0), 1.0 + 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn conv_multi_channel_accumulates_across_input_channels() {
        let input = Tensor::from_fn_2d(2, 2, 2, |c, y, x| (c * 10 + y * 2 + x) as f32);
        let weight = Tensor::filled_filter(3, 2, 1, 1, 1, 1.0);
        let params = ConvParams::conv_2d(1, 1, 0);
        let out = conv(&input, &weight, &params).unwrap();
        assert_eq!(out.shape().channels, 3);
        // Each output element is the sum across the two input channels.
        assert_eq!(out.at_2d(0, 0, 0), 0.0 + 10.0);
        assert_eq!(out.at_2d(2, 1, 1), 3.0 + 13.0);
    }

    #[test]
    fn tconv_single_pixel_stamps_kernel() {
        // A single input pixel with value 2 and a 3x3 kernel, stride 1, no
        // padding: the output is just the kernel scaled by 2.
        let input = Tensor::filled(Shape::new_2d(1, 1, 1), 2.0);
        let weight = Tensor::from_filter_fn(Shape::filter(1, 1, 1, 3, 3), |_, _, _, y, x| {
            (y * 3 + x) as f32
        });
        let params = ConvParams::transposed_2d(3, 1, 0);
        let out = tconv(&input, &weight, &params).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 3, 3));
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out.at_2d(0, y, x), 2.0 * (y * 3 + x) as f32);
            }
        }
    }

    #[test]
    fn tconv_matches_zero_insertion_path_on_paper_example() {
        let input = simple_input(4, 4);
        let weight = Tensor::from_filter_fn(Shape::filter(1, 1, 1, 5, 5), |_, _, _, y, x| {
            ((y as i32 - x as i32) as f32) * 0.25 + 1.0
        });
        let params = ConvParams::transposed_2d(5, 2, 2);
        let direct = tconv(&input, &weight, &params).unwrap();
        let via = tconv_via_zero_insertion(&input, &weight, &params).unwrap();
        assert_eq!(direct.shape(), Shape::new(1, 1, 7, 7));
        assert!(direct.approx_eq(&via, 1e-4));
    }

    #[test]
    fn tconv_3d_matches_zero_insertion_path() {
        let input = Tensor::from_fn(Shape::new(2, 2, 2, 2), |c, z, y, x| {
            (c + z + y + x) as f32 + 0.5
        });
        let weight = Tensor::from_filter_fn(Shape::filter(3, 2, 4, 4, 4), |co, ci, z, y, x| {
            ((co + ci + z + y + x) % 5) as f32 * 0.1
        });
        let params = ConvParams::transposed_3d(4, 2, 1);
        let direct = tconv(&input, &weight, &params).unwrap();
        let via = tconv_via_zero_insertion(&input, &weight, &params).unwrap();
        assert_eq!(direct.shape().depth, 4);
        assert!(direct.approx_eq(&via, 1e-4));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let input = simple_input(4, 4);
        let weight = Tensor::filled_filter(1, 2, 1, 3, 3, 1.0);
        let params = ConvParams::conv_2d(3, 1, 1);
        assert!(conv(&input, &weight, &params).is_err());
    }

    #[test]
    fn conv_rejects_kernel_mismatch() {
        let input = simple_input(4, 4);
        let weight = Tensor::filled_filter(1, 1, 1, 3, 3, 1.0);
        let params = ConvParams::conv_2d(5, 1, 2);
        assert!(conv(&input, &weight, &params).is_err());
    }

    #[test]
    fn flip_kernel_is_involutive() {
        let weight = Tensor::from_filter_fn(Shape::filter(2, 3, 1, 3, 3), |co, ci, _, y, x| {
            (co * 100 + ci * 10 + y * 3 + x) as f32
        });
        let back = flip_kernel(&flip_kernel(&weight));
        assert!(weight.approx_eq(&back, 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The defining property of the expansion path: scatter-form transposed
        /// convolution equals dense convolution over the zero-inserted input.
        #[test]
        fn prop_tconv_equals_zero_insertion_path(
            h in 1usize..5,
            w in 1usize..5,
            cin in 1usize..3,
            cout in 1usize..3,
            kernel in 2usize..5,
            stride in 1usize..3,
            seed in 0u64..1000,
        ) {
            let padding = kernel / 2;
            let params = ConvParams::transposed_2d(kernel, stride, padding);
            prop_assume!(params.output_shape(Shape::new_2d(cin, h, w), cout).is_ok());
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 1000) as f32 / 500.0) - 1.0
            };
            let input = Tensor::from_fn_2d(cin, h, w, |_, _, _| next());
            let weight = Tensor::from_filter_fn(
                Shape::filter(cout, cin, 1, kernel, kernel),
                |_, _, _, _, _| next(),
            );
            let direct = tconv(&input, &weight, &params).unwrap();
            let via = tconv_via_zero_insertion(&input, &weight, &params).unwrap();
            prop_assert!(direct.approx_eq(&via, 1e-3));
        }

        /// Output shape algebra: a conventional convolution with the same
        /// geometry maps the transposed output extent back to the input extent.
        #[test]
        fn prop_conv_inverts_tconv_shape(
            extent in 1usize..10,
            kernel in 1usize..6,
            stride in 1usize..4,
        ) {
            prop_assume!(kernel >= stride);
            let padding = (kernel - stride) / 2;
            prop_assume!(kernel > 2 * padding || extent > 1);
            let t = ConvParams::transposed_2d(kernel, stride, padding);
            let c = ConvParams::conv_2d(kernel, stride, padding);
            let input = Shape::new_2d(1, extent, extent);
            if let Ok(out) = t.output_shape(input, 1) {
                let back = c.output_shape(out, 1).unwrap();
                prop_assert!(back.height >= extent);
                // The forward pass can overshoot by at most one when geometry
                // is asymmetric, but never undershoots.
                prop_assert!(back.height <= extent + 1);
            }
        }
    }
}
