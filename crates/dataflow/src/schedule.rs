//! PE-array schedule estimation for a layer under either dataflow.
//!
//! The paper's evaluation compares two ways of mapping the same layer onto the
//! same 16 × 16 PE array:
//!
//! * **Conventional** (the Eyeriss baseline): every output row occupies one
//!   compute node per kernel row, zeros included; all nodes run the same-length
//!   SIMD program, and partial sums are accumulated across the full kernel
//!   depth.
//! * **Reorganized** (GANAX): output rows are grouped by phase, inconsequential
//!   nodes are eliminated, and each group runs its own (shorter) microprogram
//!   in MIMD-SIMD fashion.
//!
//! The estimate below follows the same first-order accounting the paper's
//! simulator uses: compute nodes are assigned to PEs within a processing
//! vector, output rows to processing vectors, and cycles accumulate per
//! "pass" of the array (node work + horizontal partial-sum accumulation).

use serde::{Deserialize, Serialize};

use crate::geometry::LayerGeometry;

/// Dimensions of the PE array.
///
/// The array is MIMD across its rows and SIMD along them: each processing
/// vector (PV) follows its own microprogram while the PEs inside a PV stay in
/// lockstep. `num_pvs` is therefore the MIMD dimension and `pes_per_pv` the
/// SIMD lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of processing vectors (rows of PEs sharing a local µop buffer).
    pub num_pvs: usize,
    /// Number of PEs per processing vector (the SIMD lane count).
    pub pes_per_pv: usize,
}

impl ArrayConfig {
    /// The paper's configuration: 16 PVs × 16 PEs.
    pub fn paper() -> Self {
        ArrayConfig {
            num_pvs: 16,
            pes_per_pv: 16,
        }
    }

    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.num_pvs * self.pes_per_pv
    }

    /// The SIMD lane count (alias for [`ArrayConfig::pes_per_pv`]).
    pub fn simd_lanes(&self) -> usize {
        self.pes_per_pv
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Which dataflow the schedule models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowMode {
    /// Dense execution over the zero-inserted input (conventional accelerator).
    Conventional,
    /// GANAX output/filter-row reorganized execution.
    Reorganized,
}

/// First-order schedule estimate of one layer on the PE array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEstimate {
    /// Dataflow the estimate was computed for.
    pub mode: DataflowMode,
    /// Wall-clock cycles to execute the layer.
    pub schedule_cycles: u64,
    /// PE-cycles spent executing operations (including inconsequential ones in
    /// the conventional dataflow).
    pub occupied_pe_cycles: u64,
    /// PE-cycles spent on consequential operations.
    pub productive_pe_cycles: u64,
    /// Horizontal partial-sum accumulation transfers between PEs.
    pub accumulation_transfers: u64,
    /// Number of array passes (used for µop-fetch accounting).
    pub passes: u64,
}

impl ScheduleEstimate {
    /// PE utilization: the fraction of PE-cycles over the whole schedule that
    /// perform consequential work (Figure 11's metric).
    pub fn utilization(&self, array: ArrayConfig) -> f64 {
        let capacity = self
            .schedule_cycles
            .saturating_mul(array.total_pes() as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.productive_pe_cycles as f64 / capacity as f64).min(1.0)
    }

    /// Estimates the schedule of `geometry` on `array` under `mode`.
    pub fn estimate(geometry: &LayerGeometry, array: ArrayConfig, mode: DataflowMode) -> Self {
        if geometry.is_projection {
            return Self::estimate_projection(geometry, array, mode);
        }
        let dense_unit = geometry.dense_unit_macs().max(1);
        let cons_unit = geometry.consequential_unit_macs().max(1);
        let mut schedule_cycles = 0u64;
        let mut accumulation = 0u64;
        let mut passes = 0u64;

        for group in geometry.phase_groups() {
            let (nodes_per_row, unit) = match mode {
                DataflowMode::Conventional => (group.dense_nodes, dense_unit),
                DataflowMode::Reorganized => (group.consequential_nodes, cons_unit),
            };
            let nodes_per_row = nodes_per_row.max(1);
            // A row may need several sequential chunks if its nodes exceed the
            // PEs of one PV; conversely several rows share a PV when the nodes
            // are few.
            let chunks = nodes_per_row.div_ceil(array.pes_per_pv) as u64;
            let nodes_per_chunk = nodes_per_row.min(array.pes_per_pv);
            let rows_per_pv = (array.pes_per_pv / nodes_per_chunk).max(1) as u64;
            let concurrent_rows = rows_per_pv * array.num_pvs as u64;
            let row_waves = group.num_rows.div_ceil(concurrent_rows);
            let group_passes = row_waves * chunks;
            // Each pass: every node streams `unit` MACs, then the partial sums
            // of the chunk are reduced across the PEs that produced them.
            let pass_cycles = unit + nodes_per_chunk as u64;
            schedule_cycles += group_passes * pass_cycles;
            passes += group_passes;
            accumulation += group.num_rows * nodes_per_row as u64 * chunks;
        }

        // Productive work is identical under both dataflows (the consequential
        // MACs); what differs is how many PE-cycles are *occupied*: the
        // conventional dataflow spends a cycle on every dense MAC (zeros
        // included), the reorganized one only on consequential MACs. The exact
        // layer-level counts are used so energy accounting does not drift with
        // boundary effects.
        let productive = geometry.consequential_macs;
        let occupied = match mode {
            DataflowMode::Conventional => geometry.dense_macs,
            DataflowMode::Reorganized => geometry.consequential_macs,
        };

        ScheduleEstimate {
            mode,
            schedule_cycles: schedule_cycles.max(1),
            occupied_pe_cycles: occupied,
            productive_pe_cycles: productive,
            accumulation_transfers: accumulation,
            passes: passes.max(1),
        }
    }

    /// Projection (fully-connected) layers behave identically under both
    /// dataflows: the MACs are spread across every PE.
    fn estimate_projection(
        geometry: &LayerGeometry,
        array: ArrayConfig,
        mode: DataflowMode,
    ) -> Self {
        let macs = geometry.dense_macs;
        let cycles = macs.div_ceil(array.total_pes() as u64).max(1);
        // One reduction step per output element.
        let accumulation = geometry.output.volume() as u64;
        ScheduleEstimate {
            mode,
            schedule_cycles: cycles + accumulation.div_ceil(array.total_pes() as u64),
            occupied_pe_cycles: macs,
            productive_pe_cycles: macs,
            accumulation_transfers: accumulation,
            passes: macs.div_ceil((array.total_pes() as u64) * 1024).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::{Activation, Layer};
    use ganax_tensor::{ConvParams, Shape};

    fn tconv_layer() -> LayerGeometry {
        LayerGeometry::for_layer(
            &Layer::conv(
                "tconv",
                Shape::new_2d(64, 8, 8),
                32,
                ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1),
                Activation::Relu,
            )
            .unwrap(),
        )
    }

    fn conv_layer() -> LayerGeometry {
        LayerGeometry::for_layer(
            &Layer::conv(
                "conv",
                Shape::new_2d(64, 16, 16),
                32,
                ConvParams::conv_2d(5, 2, 2),
                Activation::LeakyRelu,
            )
            .unwrap(),
        )
    }

    #[test]
    fn reorganized_tconv_is_faster_than_conventional() {
        let geo = tconv_layer();
        let array = ArrayConfig::paper();
        let conventional = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let reorganized = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        let speedup = conventional.schedule_cycles as f64 / reorganized.schedule_cycles as f64;
        assert!(speedup > 1.5, "speedup = {speedup}");
        assert!(speedup < 6.0, "speedup = {speedup}");
        assert!(reorganized.productive_pe_cycles <= reorganized.occupied_pe_cycles);
        assert!(conventional.occupied_pe_cycles > reorganized.occupied_pe_cycles);
    }

    #[test]
    fn conventional_and_reorganized_agree_on_conv_layers() {
        let geo = conv_layer();
        let array = ArrayConfig::paper();
        let conventional = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let reorganized = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        assert_eq!(conventional.schedule_cycles, reorganized.schedule_cycles);
        assert_eq!(
            conventional.occupied_pe_cycles,
            reorganized.occupied_pe_cycles
        );
    }

    #[test]
    fn utilization_improves_with_reorganization() {
        let geo = tconv_layer();
        let array = ArrayConfig::paper();
        let conventional = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let reorganized = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        let u_conv = conventional.utilization(array);
        let u_ganax = reorganized.utilization(array);
        assert!(u_ganax > u_conv, "{u_ganax} <= {u_conv}");
        assert!(u_ganax > 0.6, "GANAX utilization = {u_ganax}");
        assert!(u_conv < 0.5, "conventional utilization = {u_conv}");
    }

    #[test]
    fn occupied_cycles_match_exact_mac_counts() {
        let geo = tconv_layer();
        let array = ArrayConfig::paper();
        let conventional = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let reorganized = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        assert_eq!(conventional.occupied_pe_cycles, geo.dense_macs);
        assert_eq!(reorganized.productive_pe_cycles, geo.consequential_macs);
    }

    #[test]
    fn projection_layers_are_mode_independent() {
        let layer = Layer::projection(
            "project",
            Shape::new_2d(100, 1, 1),
            Shape::new_2d(1024, 4, 4),
            Activation::Relu,
        );
        let geo = LayerGeometry::for_layer(&layer);
        let array = ArrayConfig::paper();
        let a = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
        let b = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
        assert_eq!(a.schedule_cycles, b.schedule_cycles);
        assert_eq!(a.occupied_pe_cycles, geo.dense_macs);
    }

    #[test]
    fn volumetric_layer_speedup_is_larger_than_2d() {
        let layer3d = Layer::conv(
            "tconv3d",
            Shape::new(64, 8, 8, 8),
            32,
            ConvParams::transposed_3d(4, 2, 1),
            Activation::Relu,
        )
        .unwrap();
        let geo3d = LayerGeometry::for_layer(&layer3d);
        let array = ArrayConfig::paper();
        let conv3d = ScheduleEstimate::estimate(&geo3d, array, DataflowMode::Conventional);
        let reorg3d = ScheduleEstimate::estimate(&geo3d, array, DataflowMode::Reorganized);
        let speedup3d = conv3d.schedule_cycles as f64 / reorg3d.schedule_cycles as f64;

        let geo2d = tconv_layer();
        let conv2d = ScheduleEstimate::estimate(&geo2d, array, DataflowMode::Conventional);
        let reorg2d = ScheduleEstimate::estimate(&geo2d, array, DataflowMode::Reorganized);
        let speedup2d = conv2d.schedule_cycles as f64 / reorg2d.schedule_cycles as f64;

        assert!(
            speedup3d > speedup2d,
            "3d speedup {speedup3d} should exceed 2d speedup {speedup2d}"
        );
    }

    #[test]
    fn array_config_totals() {
        let array = ArrayConfig::paper();
        assert_eq!(array.total_pes(), 256);
        assert_eq!(ArrayConfig::default(), array);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The reorganized dataflow is never slower than the conventional
            /// one and never occupies more PE-cycles, for arbitrary transposed
            /// convolution geometries and array shapes.
            #[test]
            fn prop_reorganization_never_loses(
                kernel in 2usize..6,
                stride in 1usize..3,
                extent in 2usize..12,
                channels in 1usize..8,
                out_channels in 1usize..8,
                num_pvs in 2usize..20,
                pes_per_pv in 2usize..20,
            ) {
                let padding = kernel / 2;
                prop_assume!(kernel > padding);
                let params = ConvParams::transposed_2d(kernel, stride, padding);
                let input = Shape::new_2d(channels, extent, extent);
                prop_assume!(params.output_shape(input, out_channels).is_ok());
                let layer = Layer::conv("prop", input, out_channels, params, Activation::None)
                    .unwrap();
                let geo = LayerGeometry::for_layer(&layer);
                let array = ArrayConfig { num_pvs, pes_per_pv };
                let conv = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
                let reorg = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
                prop_assert!(reorg.schedule_cycles <= conv.schedule_cycles);
                prop_assert!(reorg.occupied_pe_cycles <= conv.occupied_pe_cycles);
                prop_assert!(reorg.productive_pe_cycles == conv.productive_pe_cycles);
                // Utilization is a fraction for both.
                prop_assert!(reorg.utilization(array) <= 1.0 + 1e-12);
                prop_assert!(conv.utilization(array) <= 1.0 + 1e-12);
            }

            /// Occupied PE-cycles always equal the exact layer-level MAC counts.
            #[test]
            fn prop_occupied_cycles_match_mac_counts(
                kernel in 2usize..6,
                stride in 1usize..3,
                extent in 2usize..10,
            ) {
                let padding = kernel / 2;
                prop_assume!(kernel > padding);
                let params = ConvParams::transposed_2d(kernel, stride, padding);
                let input = Shape::new_2d(3, extent, extent);
                prop_assume!(params.output_shape(input, 4).is_ok());
                let layer = Layer::conv("prop", input, 4, params, Activation::None).unwrap();
                let geo = LayerGeometry::for_layer(&layer);
                let array = ArrayConfig::paper();
                let conv = ScheduleEstimate::estimate(&geo, array, DataflowMode::Conventional);
                let reorg = ScheduleEstimate::estimate(&geo, array, DataflowMode::Reorganized);
                prop_assert_eq!(conv.occupied_pe_cycles, layer.dense_macs());
                prop_assert_eq!(reorg.occupied_pe_cycles, layer.consequential_macs());
            }
        }
    }
}
