//! Per-axis phase analysis of zero-inserted inputs.

use ganax_tensor::{ConvParams, ZeroInsertion};

/// Phase analysis of one spatial axis of a (transposed) convolution.
///
/// In the zero-inserted domain, original input elements sit at positions
/// `border + i * step`; every other position holds an inserted zero or border
/// padding. An output position `o` gathers the expanded positions
/// `o .. o + kernel`, so which kernel taps are consequential depends only on
/// `o mod step` — the output position's *phase*. There are exactly `step`
/// distinct phases (two in the paper's Figure 4 example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisPhases {
    kernel: usize,
    step: usize,
    border: usize,
    input_extent: usize,
    output_extent: usize,
}

impl AxisPhases {
    /// Builds the phase analysis for one axis.
    ///
    /// * `kernel` — kernel extent along the axis.
    /// * `step` — upsampling stride (1 + number of inserted zeros); `1` for
    ///   conventional convolutions.
    /// * `border` — implicit padding of the expanded domain
    ///   (`kernel - 1 - padding` for transposed convolutions).
    /// * `input_extent` — number of original input elements along the axis.
    /// * `output_extent` — number of output elements along the axis.
    pub fn new(
        kernel: usize,
        step: usize,
        border: usize,
        input_extent: usize,
        output_extent: usize,
    ) -> Self {
        assert!(step >= 1, "step must be at least 1");
        assert!(kernel >= 1, "kernel must be at least 1");
        AxisPhases {
            kernel,
            step,
            border,
            input_extent,
            output_extent,
        }
    }

    fn from_axis(params: &ConvParams, axis: usize, input_extent: usize) -> Self {
        let ins = ZeroInsertion::from_params(params);
        let (kernel, step, border) = match axis {
            0 => (params.kernel.0, ins.inserted.0 + 1, ins.border.0),
            1 => (params.kernel.1, ins.inserted.1 + 1, ins.border.1),
            _ => (params.kernel.2, ins.inserted.2 + 1, ins.border.2),
        };
        let expanded = ins.extent(axis, input_extent);
        let output_extent = if params.is_transposed() {
            expanded.saturating_sub(kernel) + 1
        } else {
            // Conventional convolution: classic output extent using the
            // convolution's own (down-sampling) stride.
            let conv_stride = match axis {
                0 => params.stride.0,
                1 => params.stride.1,
                _ => params.stride.2,
            };
            (input_extent + 2 * border - kernel) / conv_stride + 1
        };
        // For conventional convolutions there is no zero insertion, so the
        // phase structure is trivial (a single phase with every tap active).
        if params.is_transposed() {
            AxisPhases::new(kernel, step, border, input_extent, output_extent)
        } else {
            AxisPhases::new(kernel, 1, border, input_extent, output_extent)
        }
    }

    /// Phase analysis of the depth axis.
    pub fn depth(params: &ConvParams, input_extent: usize) -> Self {
        Self::from_axis(params, 0, input_extent)
    }

    /// Phase analysis of the vertical (height) axis.
    pub fn vertical(params: &ConvParams, input_extent: usize) -> Self {
        Self::from_axis(params, 1, input_extent)
    }

    /// Phase analysis of the horizontal (width) axis.
    pub fn horizontal(params: &ConvParams, input_extent: usize) -> Self {
        Self::from_axis(params, 2, input_extent)
    }

    /// Number of distinct phases along the axis (equals the upsampling step).
    pub fn num_phases(&self) -> usize {
        self.step
    }

    /// Kernel extent along the axis.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output extent along the axis.
    pub fn output_extent(&self) -> usize {
        self.output_extent
    }

    /// The phase of an output position.
    pub fn phase_of(&self, output_pos: usize) -> usize {
        output_pos % self.step
    }

    /// Kernel taps that are consequential for outputs of the given phase,
    /// ignoring boundary truncation (the steady-state, interior pattern).
    pub fn consequential_taps(&self, phase: usize) -> Vec<usize> {
        let phase = phase % self.step;
        (0..self.kernel)
            .filter(|tap| (phase + tap + self.step - (self.border % self.step)) % self.step == 0)
            .collect()
    }

    /// Exact consequential taps for one output position, including boundary
    /// effects (taps that would read before the first or after the last
    /// original element are excluded).
    pub fn taps_at(&self, output_pos: usize) -> Vec<usize> {
        (0..self.kernel)
            .filter(|tap| {
                let expanded = output_pos + tap;
                if expanded < self.border {
                    return false;
                }
                let rel = expanded - self.border;
                rel % self.step == 0 && rel / self.step < self.input_extent
            })
            .collect()
    }

    /// Total consequential (output position, tap) pairs along the axis —
    /// i.e. the exact per-axis factor of the consequential MAC count.
    pub fn total_consequential_taps(&self) -> u64 {
        (0..self.output_extent)
            .map(|o| self.taps_at(o).len() as u64)
            .sum()
    }

    /// Total dense (output position, tap) pairs along the axis.
    pub fn total_dense_taps(&self) -> u64 {
        (self.output_extent * self.kernel) as u64
    }

    /// Average number of consequential taps per output position.
    pub fn average_consequential_taps(&self) -> f64 {
        if self.output_extent == 0 {
            return 0.0;
        }
        self.total_consequential_taps() as f64 / self.output_extent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_tensor::ConvParams;
    use proptest::prelude::*;

    /// The paper's Figure 4 example: 4x4 input, 5x5 kernel, 1 inserted zero.
    fn paper_vertical() -> AxisPhases {
        AxisPhases::vertical(&ConvParams::transposed_2d(5, 2, 2), 4)
    }

    #[test]
    fn paper_example_has_two_phases() {
        let phases = paper_vertical();
        assert_eq!(phases.num_phases(), 2);
        assert_eq!(phases.output_extent(), 7);
    }

    #[test]
    fn paper_example_tap_patterns() {
        let phases = paper_vertical();
        // Phase 0 (output rows 0, 2, 4, ...): filter rows 1, 3, 5 (0-indexed 0, 2, 4).
        assert_eq!(phases.consequential_taps(0), vec![0, 2, 4]);
        // Phase 1 (output rows 1, 3, 5, ...): filter rows 2, 4 (0-indexed 1, 3).
        assert_eq!(phases.consequential_taps(1), vec![1, 3]);
    }

    #[test]
    fn paper_example_output_row_two_uses_rows_two_and_four() {
        // The paper: "the 2nd output row only needs ... the 2nd and 4th filter
        // rows". Output row 2 is index 1.
        let phases = paper_vertical();
        assert_eq!(phases.taps_at(1), vec![1, 3]);
        // Output row 3 (index 2) uses the 1st, 3rd and 5th filter rows.
        assert_eq!(phases.taps_at(2), vec![0, 2, 4]);
    }

    #[test]
    fn boundary_rows_lose_taps() {
        let phases = paper_vertical();
        // The very first output row can only reach the first input row.
        let first = phases.taps_at(0);
        assert!(first.len() <= phases.consequential_taps(0).len());
        assert!(!first.is_empty());
        // The last output row similarly sees fewer original elements.
        let last = phases.taps_at(phases.output_extent() - 1);
        assert!(last.len() <= 3);
    }

    #[test]
    fn conventional_convolution_is_single_phase_all_taps() {
        let phases = AxisPhases::vertical(&ConvParams::conv_2d(3, 2, 1), 16);
        assert_eq!(phases.num_phases(), 1);
        assert_eq!(phases.consequential_taps(0), vec![0, 1, 2]);
        assert_eq!(phases.output_extent(), 8);
    }

    #[test]
    fn total_taps_match_params_consequential_count_per_axis() {
        // For a 1-channel, 1-output-channel layer the product of the per-axis
        // consequential tap totals equals the exact consequential MAC count.
        let params = ConvParams::transposed_2d(5, 2, 2);
        let input = ganax_tensor::Shape::new_2d(1, 4, 4);
        let v = AxisPhases::vertical(&params, 4);
        let h = AxisPhases::horizontal(&params, 4);
        let product = v.total_consequential_taps() * h.total_consequential_taps();
        assert_eq!(product, params.consequential_macs(input, 1).unwrap());
    }

    #[test]
    fn average_taps_close_to_kernel_over_step() {
        let params = ConvParams::transposed_2d(4, 2, 1);
        let v = AxisPhases::vertical(&params, 32);
        let avg = v.average_consequential_taps();
        assert!((avg - 2.0).abs() < 0.2, "avg = {avg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Interior positions of each phase share exactly the steady-state
        /// pattern reported by `consequential_taps`.
        #[test]
        fn prop_interior_positions_match_phase_pattern(
            kernel in 2usize..7,
            step in 1usize..4,
            extent in 6usize..20,
        ) {
            let padding = kernel / 2;
            prop_assume!(kernel > padding);
            let params = ConvParams::transposed_2d(kernel, step, padding);
            let phases = AxisPhases::vertical(&params, extent);
            let border = kernel - 1 - padding;
            // Positions far from both boundaries.
            for pos in 0..phases.output_extent() {
                if pos >= kernel + border && pos + kernel + border < phases.output_extent() {
                    prop_assert_eq!(
                        phases.taps_at(pos),
                        phases.consequential_taps(phases.phase_of(pos)),
                        "pos {}", pos
                    );
                }
            }
        }

        /// Every phase pattern has between floor(k/step) and ceil(k/step) taps.
        #[test]
        fn prop_pattern_sizes_bracket_kernel_over_step(
            kernel in 1usize..8,
            step in 1usize..5,
        ) {
            let phases = AxisPhases::new(kernel, step, kernel / 2, 100, 100);
            for phase in 0..phases.num_phases() {
                let n = phases.consequential_taps(phase).len();
                prop_assert!(n >= kernel / step);
                prop_assert!(n <= kernel / step + 1);
            }
        }

        /// The union of taps across phases covers every kernel tap exactly once
        /// per step-aligned residue class.
        #[test]
        fn prop_phases_partition_taps(
            kernel in 1usize..8,
            step in 1usize..5,
            border in 0usize..4,
        ) {
            let phases = AxisPhases::new(kernel, step, border, 100, 100);
            let mut seen = vec![0usize; kernel];
            for phase in 0..phases.num_phases() {
                for tap in phases.consequential_taps(phase) {
                    seen[tap] += 1;
                }
            }
            // Each tap is consequential for exactly one phase.
            prop_assert!(seen.iter().all(|c| *c == 1), "seen = {:?}", seen);
        }
    }
}
