//! Layer geometry: the structural view of a layer that the PE-array schedules
//! are computed from.

use ganax_models::{Layer, LayerOp};
use ganax_tensor::Shape;

use crate::phase::AxisPhases;

/// How a (filter-row, output-row) compute node behaves in the reorganized flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// The node multiplies original input data — it must be executed.
    Consequential,
    /// The node would only ever multiply inserted zeros — GANAX eliminates it.
    Inconsequential,
}

/// One kernel-tap position along the vertical/depth axes, tagged with whether
/// it is consequential for a given output-row phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRowTap {
    /// Kernel depth index.
    pub kz: usize,
    /// Kernel height index.
    pub ky: usize,
    /// Whether the tap is consequential for the phase it was queried for.
    pub kind: RowKind,
}

/// A group of output rows sharing one (depth-phase, height-phase) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseGroup {
    /// Depth-axis phase.
    pub phase_z: usize,
    /// Height-axis phase.
    pub phase_y: usize,
    /// Number of output rows (across all output channels and depth slices)
    /// belonging to the group.
    pub num_rows: u64,
    /// Number of consequential compute nodes (filter-row taps) per output row.
    pub consequential_nodes: usize,
    /// Number of compute nodes a dense execution instantiates per output row.
    pub dense_nodes: usize,
}

/// The structural geometry of one layer, as seen by the PE-array mapping.
///
/// An *output row* is one `(output channel, output depth slice, output row)`
/// triple; a *compute node* processes one vertical/depth kernel tap of one
/// output row and performs `unit` multiply-accumulates (one per output column,
/// kernel column and input channel it touches).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGeometry {
    /// Layer name (for reporting).
    pub name: String,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Whether the layer is a projection (fully-connected) layer.
    pub is_projection: bool,
    /// Input shape.
    pub input: Shape,
    /// Output shape.
    pub output: Shape,
    /// Phase structure of the depth axis.
    pub depth_phases: Option<AxisPhases>,
    /// Phase structure of the height axis.
    pub height_phases: Option<AxisPhases>,
    /// Phase structure of the width axis.
    pub width_phases: Option<AxisPhases>,
    /// Kernel extents (depth, height, width); `(1, 1, 1)` for projections.
    pub kernel: (usize, usize, usize),
    /// Dense MACs of the layer.
    pub dense_macs: u64,
    /// Consequential MACs of the layer.
    pub consequential_macs: u64,
}

impl LayerGeometry {
    /// Builds the geometry of a layer.
    pub fn for_layer(layer: &Layer) -> Self {
        let (depth_phases, height_phases, width_phases, kernel) = match &layer.op {
            LayerOp::Projection => (None, None, None, (1, 1, 1)),
            LayerOp::Conv(p) | LayerOp::TConv(p) => (
                Some(AxisPhases::depth(p, layer.input.depth)),
                Some(AxisPhases::vertical(p, layer.input.height)),
                Some(AxisPhases::horizontal(p, layer.input.width)),
                p.kernel,
            ),
        };
        LayerGeometry {
            name: layer.name.clone(),
            is_tconv: layer.is_tconv(),
            is_projection: matches!(layer.op, LayerOp::Projection),
            input: layer.input,
            output: layer.output,
            depth_phases,
            height_phases,
            width_phases,
            kernel,
            dense_macs: layer.dense_macs(),
            consequential_macs: layer.consequential_macs(),
        }
    }

    /// Total output rows: one per (output channel, depth slice, row) triple.
    pub fn total_output_rows(&self) -> u64 {
        self.output.channels as u64 * self.output.depth as u64 * self.output.height as u64
    }

    /// Compute nodes per output row under the dense (conventional) dataflow.
    pub fn dense_nodes_per_row(&self) -> usize {
        self.kernel.0 * self.kernel.1
    }

    /// MAC cycles one dense compute node spends on one output row: every output
    /// column, kernel column and input channel.
    pub fn dense_unit_macs(&self) -> u64 {
        self.output.width as u64 * self.kernel.2 as u64 * self.input.channels as u64
    }

    /// MAC cycles one consequential compute node spends on one output row:
    /// only kernel columns that land on original data, summed exactly over all
    /// output columns.
    pub fn consequential_unit_macs(&self) -> u64 {
        if !self.is_tconv {
            // Conventional convolutions have no inserted zeros: every tap is
            // consequential and the unit length equals the dense one.
            return self.dense_unit_macs();
        }
        match &self.width_phases {
            Some(w) => w.total_consequential_taps() * self.input.channels as u64,
            None => self.dense_unit_macs(),
        }
    }

    /// The (depth-phase, height-phase) groups of the layer's output rows, i.e.
    /// the output-row reorganization extended to volumetric layers. Projection
    /// layers return a single trivial group.
    pub fn phase_groups(&self) -> Vec<PhaseGroup> {
        let (Some(zp), Some(yp)) = (&self.depth_phases, &self.height_phases) else {
            return vec![PhaseGroup {
                phase_z: 0,
                phase_y: 0,
                num_rows: self.total_output_rows(),
                consequential_nodes: 1,
                dense_nodes: 1,
            }];
        };
        let rows_per_phase = |phases: &AxisPhases, extent: usize, phase: usize| -> u64 {
            (0..extent).filter(|p| phases.phase_of(*p) == phase).count() as u64
        };
        let mut groups = Vec::new();
        for pz in 0..zp.num_phases() {
            let z_rows = rows_per_phase(zp, self.output.depth, pz);
            let z_taps = zp.consequential_taps(pz).len();
            for py in 0..yp.num_phases() {
                let y_rows = rows_per_phase(yp, self.output.height, py);
                let y_taps = yp.consequential_taps(py).len();
                let num_rows = self.output.channels as u64 * z_rows * y_rows;
                if num_rows == 0 || z_taps == 0 || y_taps == 0 {
                    continue;
                }
                groups.push(PhaseGroup {
                    phase_z: pz,
                    phase_y: py,
                    num_rows,
                    consequential_nodes: z_taps * y_taps,
                    dense_nodes: self.dense_nodes_per_row(),
                });
            }
        }
        groups
    }

    /// The filter-row taps (vertical × depth kernel positions) of one phase
    /// pair, each tagged consequential or inconsequential — the per-row view
    /// used when building per-PV microprograms.
    pub fn filter_row_taps(&self, phase_z: usize, phase_y: usize) -> Vec<FilterRowTap> {
        let (Some(zp), Some(yp)) = (&self.depth_phases, &self.height_phases) else {
            return vec![FilterRowTap {
                kz: 0,
                ky: 0,
                kind: RowKind::Consequential,
            }];
        };
        let z_taps = zp.consequential_taps(phase_z);
        let y_taps = yp.consequential_taps(phase_y);
        let mut taps = Vec::with_capacity(self.kernel.0 * self.kernel.1);
        for kz in 0..self.kernel.0 {
            for ky in 0..self.kernel.1 {
                let kind = if z_taps.contains(&kz) && y_taps.contains(&ky) {
                    RowKind::Consequential
                } else {
                    RowKind::Inconsequential
                };
                taps.push(FilterRowTap { kz, ky, kind });
            }
        }
        taps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::{Activation, Layer};
    use ganax_tensor::ConvParams;

    fn dcgan_like_layer() -> Layer {
        Layer::conv(
            "tconv",
            Shape::new_2d(64, 8, 8),
            32,
            ConvParams::transposed_2d(5, 2, 2).with_output_padding(0, 1, 1),
            Activation::Relu,
        )
        .unwrap()
    }

    #[test]
    fn geometry_counts_match_layer_counts() {
        let layer = dcgan_like_layer();
        let geo = LayerGeometry::for_layer(&layer);
        assert_eq!(geo.dense_macs, layer.dense_macs());
        assert_eq!(geo.consequential_macs, layer.consequential_macs());
        assert_eq!(geo.total_output_rows(), 32 * 16);
        assert_eq!(geo.dense_nodes_per_row(), 5);
        assert_eq!(geo.dense_unit_macs(), 16 * 5 * 64);
    }

    #[test]
    fn phase_groups_cover_all_rows() {
        let geo = LayerGeometry::for_layer(&dcgan_like_layer());
        let groups = geo.phase_groups();
        assert_eq!(groups.len(), 2);
        let covered: u64 = groups.iter().map(|g| g.num_rows).sum();
        assert_eq!(covered, geo.total_output_rows());
        for group in &groups {
            assert!(group.consequential_nodes <= group.dense_nodes);
            assert!(group.consequential_nodes >= 2);
        }
    }

    #[test]
    fn volumetric_layer_has_phase_pairs() {
        let layer = Layer::conv(
            "tconv3d",
            Shape::new(16, 4, 4, 4),
            8,
            ConvParams::transposed_3d(4, 2, 1),
            Activation::Relu,
        )
        .unwrap();
        let geo = LayerGeometry::for_layer(&layer);
        let groups = geo.phase_groups();
        // Two depth phases x two height phases.
        assert_eq!(groups.len(), 4);
        let covered: u64 = groups.iter().map(|g| g.num_rows).sum();
        assert_eq!(covered, geo.total_output_rows());
        // Each group's nodes: 2x2 consequential out of 4x4 dense.
        for g in &groups {
            assert_eq!(g.dense_nodes, 16);
            assert_eq!(g.consequential_nodes, 4);
        }
    }

    #[test]
    fn filter_row_taps_tag_consequential_nodes() {
        let geo = LayerGeometry::for_layer(&dcgan_like_layer());
        let taps = geo.filter_row_taps(0, 0);
        assert_eq!(taps.len(), 5);
        let consequential: Vec<usize> = taps
            .iter()
            .filter(|t| t.kind == RowKind::Consequential)
            .map(|t| t.ky)
            .collect();
        // Same pattern as the vertical phase analysis.
        let expected = geo.height_phases.as_ref().unwrap().consequential_taps(0);
        assert_eq!(consequential, expected);
    }

    #[test]
    fn projection_layer_is_a_single_trivial_group() {
        let layer = Layer::projection(
            "project",
            Shape::new_2d(100, 1, 1),
            Shape::new_2d(256, 4, 4),
            Activation::Relu,
        );
        let geo = LayerGeometry::for_layer(&layer);
        assert!(geo.is_projection);
        let groups = geo.phase_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].consequential_nodes, 1);
        assert_eq!(geo.filter_row_taps(0, 0).len(), 1);
    }

    #[test]
    fn conventional_layer_groups_are_fully_dense() {
        let layer = Layer::conv(
            "conv",
            Shape::new_2d(3, 64, 64),
            64,
            ConvParams::conv_2d(5, 2, 2),
            Activation::LeakyRelu,
        )
        .unwrap();
        let geo = LayerGeometry::for_layer(&layer);
        let groups = geo.phase_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].consequential_nodes, groups[0].dense_nodes);
        assert_eq!(geo.consequential_macs, geo.dense_macs);
    }
}
