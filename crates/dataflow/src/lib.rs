//! GANAX flow-of-data analysis and transformations (Section II of the paper).
//!
//! A transposed convolution executed with a conventional convolution dataflow
//! wastes compute on the zeros inserted between input elements. This crate
//! provides the structural analysis GANAX builds on:
//!
//! * [`AxisPhases`] — for one spatial axis, which kernel taps are
//!   *consequential* (land on original data) as a function of the output
//!   position's *phase* (its index modulo the upsampling stride). The paper's
//!   Figure 4 observation that "there are only two distinct patterns" is the
//!   two-phase case.
//! * [`OutputRowGroups`] — the *output-row reorganization* of Figure 5(a):
//!   output rows with identical phases are grouped so they can be placed on
//!   adjacent processing vectors, and the *filter-row reorganization* of
//!   Figure 5(b) falls out as each group's list of consequential filter rows.
//! * [`LayerGeometry`] + [`ScheduleEstimate`] — the mapping of a whole layer
//!   onto a processing-element array under either the conventional (dense)
//!   dataflow or the reorganized GANAX dataflow, yielding cycle counts, PE
//!   utilization and data-movement events that the accelerator models charge
//!   against the Table II energy model.
//!
//! # Example: the paper's worked example (Figure 4/5)
//!
//! ```
//! use ganax_dataflow::{AxisPhases, OutputRowGroups};
//! use ganax_tensor::ConvParams;
//!
//! // 4x4 input, 5x5 filter, one row/column of zeros inserted (upsample 2).
//! let params = ConvParams::transposed_2d(5, 2, 2);
//! let phases = AxisPhases::vertical(&params, 4);
//! // Even-phase output rows use three filter rows, odd-phase rows use two.
//! assert_eq!(phases.consequential_taps(0).len(), 3);
//! assert_eq!(phases.consequential_taps(1).len(), 2);
//!
//! let groups = OutputRowGroups::new(&phases, 7);
//! assert_eq!(groups.groups().len(), 2);
//! // Reorganization raises compute-node utilization from ~50% to 100%.
//! assert!((groups.conventional_utilization() - 0.5).abs() < 0.08);
//! assert_eq!(groups.reorganized_utilization(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod phase;
mod reorg;
mod schedule;

pub use geometry::{FilterRowTap, LayerGeometry, RowKind};
pub use phase::AxisPhases;
pub use reorg::{OutputRowGroup, OutputRowGroups};
pub use schedule::{ArrayConfig, DataflowMode, ScheduleEstimate};
