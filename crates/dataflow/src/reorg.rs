//! Output-row and filter-row reorganization (Figure 5 of the paper).

use crate::phase::AxisPhases;

/// A group of output rows that share the same computation pattern (phase) and
/// therefore the same set of consequential filter rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRowGroup {
    /// The phase shared by every row of the group.
    pub phase: usize,
    /// Output rows (in original order) belonging to the group.
    pub rows: Vec<usize>,
    /// Consequential filter rows for this phase (the filter-row
    /// reorganization): only these need compute nodes.
    pub filter_rows: Vec<usize>,
}

impl OutputRowGroup {
    /// Number of cycles needed to accumulate the partial sums of one output
    /// row of this group horizontally across its compute nodes.
    pub fn accumulation_depth(&self) -> usize {
        self.filter_rows.len()
    }
}

/// The GANAX output-row reorganization: output rows grouped by phase so that
/// rows with identical zero patterns sit on adjacent processing vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRowGroups {
    groups: Vec<OutputRowGroup>,
    kernel: usize,
    output_rows: usize,
}

impl OutputRowGroups {
    /// Groups the `output_rows` rows of a layer whose vertical phase structure
    /// is `phases`.
    pub fn new(phases: &AxisPhases, output_rows: usize) -> Self {
        let mut groups: Vec<OutputRowGroup> = (0..phases.num_phases())
            .map(|phase| OutputRowGroup {
                phase,
                rows: Vec::new(),
                filter_rows: phases.consequential_taps(phase),
            })
            .collect();
        for row in 0..output_rows {
            let phase = phases.phase_of(row);
            groups[phase].rows.push(row);
        }
        // Drop phases that own no rows (can happen when the output extent is
        // smaller than the number of phases). Groups whose phase has no
        // consequential filter rows are kept: their rows are all-zero outputs
        // that still have to be produced (they just need no compute nodes).
        groups.retain(|g| !g.rows.is_empty());
        OutputRowGroups {
            groups,
            kernel: phases.kernel(),
            output_rows,
        }
    }

    /// The reorganized groups, ordered by phase.
    pub fn groups(&self) -> &[OutputRowGroup] {
        &self.groups
    }

    /// Number of output rows covered by the groups.
    pub fn output_rows(&self) -> usize {
        self.output_rows
    }

    /// Total compute nodes (output row × filter row pairs) the conventional
    /// dataflow instantiates: every output row occupies a node for *every*
    /// filter row, consequential or not.
    pub fn conventional_compute_nodes(&self) -> usize {
        self.output_rows * self.kernel
    }

    /// Compute nodes that perform consequential work.
    pub fn consequential_compute_nodes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.rows.len() * g.filter_rows.len())
            .sum()
    }

    /// Compute-node utilization of the conventional dataflow (Figure 4b):
    /// the fraction of instantiated nodes doing consequential work.
    pub fn conventional_utilization(&self) -> f64 {
        if self.conventional_compute_nodes() == 0 {
            return 0.0;
        }
        self.consequential_compute_nodes() as f64 / self.conventional_compute_nodes() as f64
    }

    /// Compute-node utilization after output- and filter-row reorganization
    /// (Figure 5c): idle nodes are eliminated, so every remaining node is
    /// consequential.
    pub fn reorganized_utilization(&self) -> f64 {
        if self.consequential_compute_nodes() == 0 {
            0.0
        } else {
            1.0
        }
    }

    /// Accumulation depth (horizontal partial-sum cycles per output row) of the
    /// conventional dataflow: always the full kernel extent.
    pub fn conventional_accumulation_depth(&self) -> usize {
        self.kernel
    }

    /// Per-group accumulation depths after reorganization (e.g. `{2, 3}` for
    /// the paper's worked example instead of a uniform 5).
    pub fn reorganized_accumulation_depths(&self) -> Vec<usize> {
        self.groups
            .iter()
            .map(OutputRowGroup::accumulation_depth)
            .collect()
    }

    /// The output rows in phase-major order: every row of the first phase
    /// group, then every row of the second, and so on.
    ///
    /// This is the order the reorganized dataflow stages rows in during
    /// inter-layer handoff: rows of one phase share a tap count, so assigning
    /// workers round-robin over this order balances the PE array even when
    /// phases have unequal accumulation depths (assigning by raw row index
    /// would give one worker all the deep-phase rows whenever the worker
    /// count is a multiple of the phase stride).
    pub fn phase_major_rows(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|g| g.rows.iter().copied())
            .collect()
    }

    /// Verifies the reorganization is a permutation of the output rows: every
    /// row appears in exactly one group. Returns the sorted list of covered
    /// rows for inspection.
    pub fn covered_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.groups.iter().flat_map(|g| g.rows.clone()).collect();
        rows.sort_unstable();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_tensor::ConvParams;
    use proptest::prelude::*;

    /// The paper's worked example: 4x4 input, 5x5 filter, upsample 2, pad 2.
    fn paper_groups() -> OutputRowGroups {
        let params = ConvParams::transposed_2d(5, 2, 2);
        let phases = AxisPhases::vertical(&params, 4);
        OutputRowGroups::new(&phases, phases.output_extent())
    }

    #[test]
    fn paper_example_has_two_groups() {
        let groups = paper_groups();
        assert_eq!(groups.groups().len(), 2);
        let even = &groups.groups()[0];
        let odd = &groups.groups()[1];
        assert_eq!(even.filter_rows, vec![0, 2, 4]);
        assert_eq!(odd.filter_rows, vec![1, 3]);
        // 7 output rows: rows 0,2,4,6 are even-phase; 1,3,5 odd-phase.
        assert_eq!(even.rows, vec![0, 2, 4, 6]);
        assert_eq!(odd.rows, vec![1, 3, 5]);
    }

    #[test]
    fn paper_example_utilization_improves_from_50_to_100_percent() {
        let groups = paper_groups();
        // Figure 4(b): half of the compute nodes are idle.
        assert!((groups.conventional_utilization() - 0.5).abs() < 0.08);
        // Figure 5(c): after reorganization every node is consequential.
        assert_eq!(groups.reorganized_utilization(), 1.0);
    }

    #[test]
    fn paper_example_accumulation_depths_shrink() {
        let groups = paper_groups();
        // Conventional: five cycles regardless of the output row.
        assert_eq!(groups.conventional_accumulation_depth(), 5);
        // Reorganized: two cycles for even rows, three for odd rows
        // (the paper quotes "from five to two ... and from five to three").
        let mut depths = groups.reorganized_accumulation_depths();
        depths.sort_unstable();
        assert_eq!(depths, vec![2, 3]);
    }

    #[test]
    fn covered_rows_is_a_permutation() {
        let groups = paper_groups();
        assert_eq!(groups.covered_rows(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn phase_major_rows_orders_by_group() {
        let groups = paper_groups();
        // Even-phase rows first, then odd-phase rows.
        assert_eq!(groups.phase_major_rows(), vec![0, 2, 4, 6, 1, 3, 5]);
        // Still a permutation of the output rows.
        let mut sorted = groups.phase_major_rows();
        sorted.sort_unstable();
        assert_eq!(sorted, groups.covered_rows());
    }

    #[test]
    fn conventional_convolution_collapses_to_one_full_group() {
        let params = ConvParams::conv_2d(3, 1, 1);
        let phases = AxisPhases::vertical(&params, 16);
        let groups = OutputRowGroups::new(&phases, phases.output_extent());
        assert_eq!(groups.groups().len(), 1);
        assert_eq!(groups.conventional_utilization(), 1.0);
        assert_eq!(groups.groups()[0].filter_rows.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Reorganization never loses or duplicates an output row.
        #[test]
        fn prop_groups_partition_rows(
            kernel in 2usize..7,
            step in 1usize..4,
            input in 4usize..24,
        ) {
            let padding = kernel / 2;
            prop_assume!(kernel > padding);
            let params = ConvParams::transposed_2d(kernel, step, padding);
            let phases = AxisPhases::vertical(&params, input);
            let groups = OutputRowGroups::new(&phases, phases.output_extent());
            prop_assert_eq!(
                groups.covered_rows(),
                (0..phases.output_extent()).collect::<Vec<_>>()
            );
        }

        /// Consequential nodes never exceed conventional nodes, and the
        /// utilization ratio equals their quotient.
        #[test]
        fn prop_utilization_is_consistent(
            kernel in 2usize..7,
            step in 1usize..4,
            input in 4usize..24,
        ) {
            let padding = kernel / 2;
            prop_assume!(kernel > padding);
            let params = ConvParams::transposed_2d(kernel, step, padding);
            let phases = AxisPhases::vertical(&params, input);
            let groups = OutputRowGroups::new(&phases, phases.output_extent());
            let conv = groups.conventional_compute_nodes();
            let cons = groups.consequential_compute_nodes();
            prop_assert!(cons <= conv);
            prop_assert!((groups.conventional_utilization() - cons as f64 / conv as f64).abs() < 1e-12);
        }
    }
}
