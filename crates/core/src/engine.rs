//! The compile-once, run-many inference engine.
//!
//! GANAX's premise is that the expensive part of serving a generator — the
//! Figure 5 phase decomposition and the operand layout for the MIMD-SIMD
//! array — is done **once per layer shape** and reused for every inference.
//! This module is that split, made explicit:
//!
//! * [`CompiledNetwork`] validates a network's weights once and hoists every
//!   layer's plan (row taps, phase chunks, reordered/flipped weight rows, the
//!   phase-major dispatch order) into an immutable, `Arc`-shared artifact;
//! * [`InferenceEngine`] owns a **persistent worker pool**: long-lived
//!   threads fed through a shard queue, each owning one worker PE that is
//!   [reset in place](ganax_sim::ProcessingEngine::reset) between dispatch
//!   batches, plus recycled operand/output buffers — so the serving steady
//!   state performs no planning and no allocation churn;
//! * [`InferenceEngine::execute_batch`] shards *batch × phase-major output
//!   rows* across the pool and amortizes gathered weight streams across every
//!   resident row of every batch element.
//!
//! All three paths are **bit-identical** to the per-layer fast path of
//! [`GanaxMachine::execute_layer_threaded`] (and therefore to the seed
//! single-step reference) at every thread count: the engine issues exactly
//! the same per-dispatch programs, it only reorders *which* dispatch runs
//! when and keeps more operands resident between dispatches.
//!
//! The pool is **supervised**: every worker body runs under
//! [`std::panic::catch_unwind`], a panicking worker reports a typed
//! [`MachineError::WorkerPanic`] for its shard and terminates, and the
//! dispatcher respawns a replacement (never after
//! [`InferenceEngine::shut_down_pool`]) and requeues the lost shard — so a
//! mid-batch worker crash completes bit-identically, it never hangs and never
//! poisons the queue. Fault injection ([`ganax_sim::FaultSpec`] on the
//! machine's configuration) drives exactly this machinery on purpose.
//!
//! # Example
//!
//! ```
//! use ganax::{CompiledNetwork, GanaxMachine, InferenceEngine, NetworkWeights};
//! use ganax_models::{Activation, NetworkBuilder};
//! use ganax_tensor::{ConvParams, Shape, Tensor};
//!
//! let net = NetworkBuilder::new("toy", Shape::new_2d(1, 4, 4))
//!     .tconv("up", 1, ConvParams::transposed_2d(5, 2, 2), Activation::Relu)
//!     .build()
//!     .unwrap();
//! let weights =
//!     NetworkWeights::new(&net, vec![Tensor::filled_filter(1, 1, 1, 5, 5, 0.5)]).unwrap();
//! let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
//! let compiled = engine.compile(&net, &weights).unwrap();
//!
//! // Compile once, run many: every request reuses the cached plans.
//! let input = Tensor::filled(net.input_shape(), 1.0);
//! let a = engine.execute(&compiled, &input).unwrap();
//! let b = engine.execute(&compiled, &input).unwrap();
//! assert_eq!(a.output, b.output);
//! assert_eq!(a.plan_seconds, 0.0, "warm runs never plan");
//!
//! // Batched execution is bit-identical to one-at-a-time execution.
//! let batch = engine.execute_batch(&compiled, &[input.clone(), input]).unwrap();
//! assert_eq!(batch.outputs[0], a.output);
//! assert_eq!(batch.outputs[1], a.output);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ganax_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use ganax_models::{Layer, LayerOp, Network};
use ganax_sim::{EmitFault, FaultInjector, ProcessingEngine, WorkerFault, STALL_MILLIS};
use ganax_tensor::Tensor;

use crate::config::IntegrityMode;
use crate::machine::{
    accumulate_input_checksum, chunk_group_max, dispatch_ordinal_base, gather_chunk_input,
    load_chunk_weights, retire_chunk_group, row_checksum_ok, shard_for_position, GanaxMachine,
    MachineError, PlannedLayer, RowChecksum, ShardFaults, MAX_HEAL_ROUNDS,
};
use crate::network::{
    finish_layer_output, host_projection, LayerExecution, NetworkExecution, NetworkWeights,
};

/// One layer of a [`CompiledNetwork`]: a host-executed projection, or a
/// PE-array layer with its hoisted plan shared read-only with the pool.
enum CompiledLayer {
    /// Fully-connected projection, executed on the host.
    Host,
    /// Conv/tconv layer executed on the PE array from a cached plan.
    Machine {
        /// The layer description, shared with worker threads.
        layer: Arc<Layer>,
        /// The hoisted plan (taps, chunks, reordered/flipped weight rows).
        plan: Arc<PlannedLayer>,
    },
}

/// A network compiled for repeated execution: weights validated once, every
/// PE-array layer's [`plan`](GanaxMachine) hoisted into an immutable artifact
/// that [`InferenceEngine`] runs without any per-request planning.
pub struct CompiledNetwork {
    network: Network,
    weights: NetworkWeights,
    layers: Vec<CompiledLayer>,
    machine: GanaxMachine,
    plan_seconds: f64,
}

impl CompiledNetwork {
    /// Validates the network/weight bundle and builds every PE-array layer's
    /// plan for `machine`'s configuration.
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when the weight bundle does
    /// not match the network, [`MachineError::Unsupported`] for layers the
    /// cycle-level machine cannot execute, and [`MachineError::Config`] when
    /// the machine's configuration fails validation.
    pub fn compile(
        machine: &GanaxMachine,
        network: &Network,
        weights: &NetworkWeights,
    ) -> Result<Self, MachineError> {
        let start = Instant::now();
        let net_layers = network.layers();
        if weights.len() != net_layers.len() {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "{} weight tensors for {} layers",
                    weights.len(),
                    net_layers.len()
                ),
            });
        }
        let mut layers = Vec::with_capacity(net_layers.len());
        for (i, layer) in net_layers.iter().enumerate() {
            let weight = weights.weight(i);
            let expected = NetworkWeights::expected_shape(layer);
            if weight.shape() != expected {
                return Err(MachineError::ShapeMismatch {
                    detail: format!(
                        "layer `{}` weights {} != expected {}",
                        layer.name,
                        weight.shape(),
                        expected
                    ),
                });
            }
            if matches!(layer.op, LayerOp::Projection) {
                layers.push(CompiledLayer::Host);
            } else {
                let planned = machine.plan_layer(layer, weight)?;
                layers.push(CompiledLayer::Machine {
                    layer: Arc::new(layer.clone()),
                    plan: Arc::new(planned),
                });
            }
        }
        Ok(CompiledNetwork {
            network: network.clone(),
            weights: weights.clone(),
            layers,
            machine: *machine,
            plan_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The network this artifact was compiled from.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The validated weight bundle baked into the artifact.
    pub fn weights(&self) -> &NetworkWeights {
        &self.weights
    }

    /// The machine configuration the plans were built for.
    pub fn machine(&self) -> &GanaxMachine {
        &self.machine
    }

    /// Wall-clock seconds spent validating and planning at compile time.
    pub fn plan_seconds(&self) -> f64 {
        self.plan_seconds
    }

    /// Number of layers that execute on the PE array (the rest are host
    /// projections).
    pub fn machine_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, CompiledLayer::Machine { .. }))
            .count()
    }
}

/// The report of one [`InferenceEngine::execute_batch`] call: per-element
/// outputs plus activity aggregated over the whole batch.
#[derive(Debug, Clone)]
pub struct BatchExecution {
    /// Network name.
    pub network: String,
    /// Worker threads in the engine's pool.
    pub threads: usize,
    /// Final outputs, one per batch element, in input order (bias and
    /// activation applied; bit-identical to executing each element alone).
    pub outputs: Vec<Tensor>,
    /// Busy PE cycles summed over every element and layer.
    pub busy_pe_cycles: u64,
    /// Activity counters summed over every element and layer.
    pub counts: EventCounts,
    /// Work units summed over every element and layer.
    pub work_units: u64,
    /// Total wall-clock seconds for the batch.
    pub wall_seconds: f64,
}

impl BatchExecution {
    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.outputs.len()
    }

    /// Completed inferences per wall-clock second — the serving throughput.
    pub fn inferences_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.outputs.len() as f64 / self.wall_seconds
    }

    /// Energy of the batch's simulated activity under a Table II model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.energy(&self.counts)
    }
}

/// Times one shard may execute (the first attempt plus requeues after worker
/// panics) before its [`MachineError::WorkerPanic`] becomes final. A
/// `persistent` worker-panic fault fires on every attempt, so a hard fault
/// exhausts this cap and surfaces as a typed error instead of looping.
const MAX_SHARD_ATTEMPTS: u32 = 3;

/// Locks a mutex, recovering the guard from a poisoned lock. Pool state is
/// written only under short, panic-free critical sections; a poisoned lock
/// here means a *worker* panicked while holding it mid-`push`/`pop`, and the
/// queue itself (a [`VecDeque`] of owned tasks) is still structurally sound —
/// so the serving stack keeps running instead of cascading panics through
/// every thread that touches the pool.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unit of PE-array work handed to the pool: one shard of output rows of
/// one layer, executed for every inference in the batch.
struct ShardTask {
    /// Index of this task within its dispatch wave.
    task_id: usize,
    /// The dispatch wave this task belongs to, so an abandoned wave can purge
    /// its queued tasks when the pool dies.
    wave: u64,
    /// The layer being executed.
    layer: Arc<Layer>,
    /// The layer's cached plan.
    plan: Arc<PlannedLayer>,
    /// The network-level index of the layer (the fault `layer` coordinate).
    layer_index: usize,
    /// The engine's fault injector, shared so every worker sees one fired-map.
    injector: Arc<FaultInjector>,
    /// Current input feature maps, one per batch element.
    inputs: Arc<Vec<Arc<Tensor>>>,
    /// Output rows (`oy` values) this shard owns, ascending. Shared with the
    /// dispatcher's reduction metadata (and any requeue after a worker
    /// crash), so publishing a task never copies the row list.
    rows: Arc<Vec<usize>>,
    /// Whether the worker accumulates ABFT row checksums alongside the shard
    /// (set when the machine's [`IntegrityMode`] verifies).
    verify: bool,
    /// Where the worker reports the shard result.
    reply: Sender<TaskReply>,
}

/// What a worker hands back for one [`ShardTask`].
struct TaskReply {
    task_id: usize,
    result: Result<ShardOutput, MachineError>,
}

/// A completed shard: accumulated output rows plus the worker PE's activity.
struct ShardOutput {
    /// Accumulated rows, laid out `[element][row slot][channel][column]`.
    buffer: Vec<f32>,
    busy_pe_cycles: u64,
    counts: EventCounts,
    work_units: u64,
    /// ABFT checksum triple per accumulated row, indexed
    /// `element * rows.len() + row slot` (empty unless the task verified).
    checks: Vec<RowChecksum>,
}

/// The queue state shared between the engine and its workers.
#[derive(Default)]
struct PoolState {
    tasks: VecDeque<ShardTask>,
    shutdown: bool,
}

/// Everything the pool shares: the task queue, its wakeup, and the recycled
/// shard-output buffers that keep the steady state allocation-free.
struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    buffers: Mutex<Vec<Vec<f32>>>,
}

impl PoolShared {
    fn recycle(&self, buffer: Vec<f32>) {
        lock_unpoisoned(&self.buffers).push(buffer);
    }
}

/// The long-lived body of one pool worker: pop shard tasks until shutdown,
/// keeping one [`ProcessingEngine`] resident and resetting it in place
/// between tasks instead of reconstructing it.
///
/// The shard execution runs under [`catch_unwind`]: a panic (injected or
/// genuine) drops the resident PE — it may be mid-dispatch with inconsistent
/// µ-engine state — reports a typed [`MachineError::WorkerPanic`] for the
/// shard, and **terminates the worker**, modelling a crashed core. The
/// dispatcher's supervisor respawns a replacement and requeues the shard.
fn worker_loop(shared: Arc<PoolShared>) {
    let mut resident: Option<ProcessingEngine> = None;
    loop {
        let task = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else { return };
        let config = task.plan.pe_config;
        let mut buffer = lock_unpoisoned(&shared.buffers).pop().unwrap_or_default();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let pe = match resident.as_mut() {
                Some(pe) if pe.config() == config => {
                    pe.reset();
                    pe
                }
                _ => resident.insert(ProcessingEngine::new(config)),
            };
            run_resident_shard(&task, pe, &mut buffer)
        }));
        match outcome {
            Ok(Ok((busy_pe_cycles, counts, work_units, checks))) => {
                let _ = task.reply.send(TaskReply {
                    task_id: task.task_id,
                    result: Ok(ShardOutput {
                        buffer,
                        busy_pe_cycles,
                        counts,
                        work_units,
                        checks,
                    }),
                });
            }
            Ok(Err(error)) => {
                shared.recycle(buffer);
                let _ = task.reply.send(TaskReply {
                    task_id: task.task_id,
                    result: Err(error),
                });
            }
            Err(_) => {
                shared.recycle(buffer);
                let _ = task.reply.send(TaskReply {
                    task_id: task.task_id,
                    result: Err(MachineError::WorkerPanic {
                        layer: task.layer.name.clone(),
                    }),
                });
                return;
            }
        }
    }
}

/// Executes one shard — `task.rows` output rows × every batch element — on a
/// resident worker PE, accumulating into `buffer` (layout
/// `[element][row slot][channel][column]`, zeroed here in place).
///
/// The loop nests `ky → ci → chunk → row block → channel group → row` so a
/// gathered weight stream, staged once per `(chunk, group)`, serves every
/// resident row of every batch element, and a whole block of gathered input
/// streams stays resident in the input scratchpad across all channel groups
/// (each dispatch selects its stream through the input generator's offset
/// register). Per dispatch this issues exactly the per-layer fast path's
/// program — same generators, same µop pairs, same burst — so busy cycles,
/// counters and the f32 accumulation order per output element are
/// bit-identical to [`GanaxMachine::execute_layer_threaded`]; only the number
/// of bulk scratchpad loads shrinks, and those are excluded from the counts
/// on both paths.
fn run_resident_shard(
    task: &ShardTask,
    pe: &mut ProcessingEngine,
    buffer: &mut Vec<f32>,
) -> Result<(u64, EventCounts, u64, Vec<RowChecksum>), MachineError> {
    let layer = &*task.layer;
    let plan = &task.plan.plan;
    let pe_config = &task.plan.pe_config;
    let elements = task.inputs.len();
    let rows = &task.rows;
    let co_count = layer.output.channels;
    let ci_count = layer.input.channels;
    let width = layer.output.width;
    let row_stride = co_count * width;
    buffer.clear();
    buffer.resize(elements * rows.len() * row_stride, 0.0);

    let faults = ShardFaults {
        injector: &task.injector,
        layer_index: task.layer_index,
    };
    // Worker-fault sites are keyed `(layer, row)` — decide them for every row
    // the shard owns before any work, exactly as the per-layer path does. A
    // panic here is genuine: it unwinds into the worker's `catch_unwind` so
    // supervision, respawn and requeue are exercised for real.
    for &oy in rows.iter() {
        match faults.worker_fault(oy) {
            Some(WorkerFault::Panic) => panic!(
                "injected worker panic (layer `{}`, output row {oy})",
                layer.name
            ),
            Some(WorkerFault::Stall) => {
                std::thread::sleep(Duration::from_millis(STALL_MILLIS));
            }
            None => {}
        }
    }

    let mut load_words = 0u64;
    let mut work_units = 0u64;
    // ABFT checksum triples, one per `(element, row slot)` accumulated row.
    // The predicted/magnitude terms are folded in stream order (`ky → ci →
    // chunk → element`), identical to the per-layer path's per-row order, so
    // the triples — and therefore the verdicts — are bit-identical at every
    // pool size.
    let mut checks: Vec<RowChecksum> = if task.verify {
        vec![RowChecksum::default(); elements * rows.len()]
    } else {
        Vec::new()
    };
    // `(element, row slot, input row)` instances whose row reads vertical tap
    // `ky` — rebuilt per tap, reusing the allocation.
    let mut instances: Vec<(usize, usize, usize)> = Vec::new();

    for ky in 0..plan.kernel_h {
        instances.clear();
        for e in 0..elements {
            for (slot, &oy) in rows.iter().enumerate() {
                if let Some(&(_, iy)) = plan.row_taps[oy].iter().find(|&&(tap, _)| tap == ky) {
                    instances.push((e, slot, iy));
                }
            }
        }
        if instances.is_empty() {
            continue;
        }
        for ci in 0..ci_count {
            work_units += instances.len() as u64 * co_count as u64;
            for (chunk_idx, chunk) in plan.chunks.iter().enumerate() {
                let stream = chunk.taps * chunk.cols;
                let dispatch_base = dispatch_ordinal_base(plan, layer, ky, ci, chunk_idx);
                // A block is bounded by the input scratchpad *and* by u16
                // generator addressing: every resident stream's window
                // (`input_base + stream`) must stay below 2^16, or the
                // offset register would silently wrap into another slot's
                // stream on configs with very large input scratchpads.
                let block_cap = (pe_config.input_words / stream)
                    .min((u16::MAX as usize + 1) / stream)
                    .max(1);
                for block in instances.chunks(block_cap) {
                    pe.load_input_with(block.len() * stream, |buf| {
                        for (b, &(e, slot, iy)) in block.iter().enumerate() {
                            let input_row = task.inputs[e].row_2d(ci, iy);
                            let sub = &mut buf[b * stream..(b + 1) * stream];
                            gather_chunk_input(plan, chunk, input_row, sub);
                            if task.verify {
                                // Checksum the *clean* gathered stream before
                                // fault injection — the predicted side must
                                // reflect the data the layer was asked to
                                // compute, not whatever corruption lands on it.
                                accumulate_input_checksum(
                                    plan,
                                    chunk_idx,
                                    stream,
                                    ky,
                                    ci,
                                    sub,
                                    &mut checks[e * rows.len() + slot],
                                );
                            }
                            faults.corrupt_input_stream(rows[slot], dispatch_base, sub);
                        }
                    });
                    load_words += (block.len() * stream) as u64;

                    let group_max = chunk_group_max(pe_config, chunk, stream);
                    let mut co0 = 0;
                    while co0 < co_count {
                        let group = group_max.min(co_count - co0);
                        load_words += load_chunk_weights(
                            pe,
                            plan,
                            chunk_idx,
                            stream,
                            group,
                            co0,
                            ci,
                            ky,
                            faults,
                            dispatch_base + co0 as u64,
                        );
                        for (b, &(e, slot, _iy)) in block.iter().enumerate() {
                            let base = (e * rows.len() + slot) * row_stride;
                            retire_chunk_group(
                                pe,
                                chunk,
                                stream,
                                group,
                                b * stream,
                                layer,
                                |k, slots| {
                                    let row = &mut buffer[base + (co0 + k) * width..][..width];
                                    let mut ox = chunk.ox_start;
                                    match faults.emit_fault(
                                        rows[slot],
                                        dispatch_base + co0 as u64,
                                        co0 + k,
                                    ) {
                                        Some(EmitFault::StuckLane | EmitFault::DroppedUop) => {}
                                        Some(EmitFault::DuplicatedUop) => {
                                            for &value in slots {
                                                row[ox] += value;
                                                row[ox] += value;
                                                ox += chunk.col_step;
                                            }
                                        }
                                        None => {
                                            for &value in slots {
                                                row[ox] += value;
                                                ox += chunk.col_step;
                                            }
                                        }
                                    }
                                },
                            )?;
                        }
                        co0 += group;
                    }
                }
            }
        }
    }

    if task.verify {
        // Observed side: a linear f64 fold over each accumulated row slice.
        // The buffer layout is `[channel][column]` per row, matching the
        // per-layer path's channel-major observation order exactly.
        for (i, check) in checks.iter_mut().enumerate() {
            for &value in &buffer[i * row_stride..(i + 1) * row_stride] {
                check.observed += f64::from(value);
            }
        }
    }

    let mut counts = pe.counts();
    counts.register_file_writes -= load_words;
    Ok((pe.busy_cycles(), counts, work_units, checks))
}

/// The compile-once, run-many inference engine: a persistent worker pool plus
/// the machine configuration requests are executed under.
///
/// See the [module docs](self) for the serving model and the bit-identity
/// guarantees. Dropping the engine shuts the pool down and joins every
/// worker.
pub struct InferenceEngine {
    machine: GanaxMachine,
    threads: usize,
    shared: Arc<PoolShared>,
    /// Live worker handles, behind a lock so the dispatcher can reap and
    /// respawn crashed workers from `&self`.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// The engine-owned realization of the machine's fault schedule; one
    /// injector (one fired-map) shared by every worker and every wave, with
    /// its epoch advanced per `execute`/`execute_batch` call.
    injector: Arc<FaultInjector>,
    /// Workers respawned after a crash, over the engine's lifetime.
    respawns: AtomicU64,
    /// Shards requeued after their worker panicked mid-task.
    requeued_shards: AtomicU64,
    /// Monotonic dispatch-wave id, used to purge an abandoned wave's tasks.
    wave_counter: AtomicU64,
    /// ABFT row-slice checksum verifications performed (0 under
    /// [`IntegrityMode::Off`]).
    integrity_checks: AtomicU64,
    /// Row-slice verifications that failed — every failed verdict counts, so
    /// a persistent fault re-flagged across healing rounds counts each round.
    integrity_violations: AtomicU64,
    /// Row slices surgically re-executed and merged back by healing.
    rows_healed: AtomicU64,
    /// Corruptions that escaped past ABFT verification and were only caught
    /// downstream (the non-finite output guard) — the residual-risk tripwire.
    integrity_undetected: AtomicU64,
}

impl InferenceEngine {
    /// Spawns an engine with `threads` long-lived pool workers (at least 1).
    pub fn new(machine: GanaxMachine, threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
            buffers: Mutex::new(Vec::new()),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        InferenceEngine {
            machine,
            threads,
            shared,
            handles: Mutex::new(handles),
            injector: Arc::new(FaultInjector::new(machine.config().fault)),
            respawns: AtomicU64::new(0),
            requeued_shards: AtomicU64::new(0),
            wave_counter: AtomicU64::new(0),
            integrity_checks: AtomicU64::new(0),
            integrity_violations: AtomicU64::new(0),
            rows_healed: AtomicU64::new(0),
            integrity_undetected: AtomicU64::new(0),
        }
    }

    /// Spawns an engine sized from [`std::thread::available_parallelism`].
    pub fn with_available_parallelism(machine: GanaxMachine) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(machine, threads)
    }

    /// Pool workers owned by the engine.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the worker pool can still execute dispatches: at least one
    /// worker thread is alive. `false` after [`InferenceEngine::shut_down_pool`]
    /// or if every worker died (a panic mid-task) before the supervisor
    /// respawned replacements.
    pub fn pool_is_alive(&self) -> bool {
        let handles = lock_unpoisoned(&self.handles);
        !handles.is_empty() && !handles.iter().all(std::thread::JoinHandle::is_finished)
    }

    /// Workers respawned by the supervisor after crashes, over the engine's
    /// lifetime.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Shards requeued after their worker panicked mid-task, over the
    /// engine's lifetime.
    pub fn requeued_shards(&self) -> u64 {
        self.requeued_shards.load(Ordering::Relaxed)
    }

    /// Faults the engine's injector has fired so far (0 when the machine's
    /// [`FaultSpec`](ganax_sim::FaultSpec) is disabled).
    pub fn injected_faults(&self) -> u64 {
        self.injector.injected_faults()
    }

    /// Overrides the machine's ABFT computation-integrity policy in place.
    ///
    /// Call this before compiling artifacts: the compiled artifact records
    /// the machine configuration (the integrity mode is part of its
    /// fingerprint), so artifacts compiled under a different mode are
    /// rejected by [`InferenceEngine::execute`] afterwards.
    pub fn set_integrity(&mut self, integrity: IntegrityMode) {
        self.machine.set_integrity(integrity);
    }

    /// ABFT row-slice checksum verifications performed over the engine's
    /// lifetime (0 under [`IntegrityMode::Off`]).
    pub fn integrity_checks(&self) -> u64 {
        self.integrity_checks.load(Ordering::Relaxed)
    }

    /// Row-slice checksum verifications that failed, over the engine's
    /// lifetime. Every failed verdict counts, so a persistent fault that is
    /// re-flagged across healing rounds contributes once per round.
    pub fn integrity_violations(&self) -> u64 {
        self.integrity_violations.load(Ordering::Relaxed)
    }

    /// Row slices surgically re-executed and merged back by
    /// [`IntegrityMode::VerifyAndHeal`], over the engine's lifetime.
    pub fn rows_healed(&self) -> u64 {
        self.rows_healed.load(Ordering::Relaxed)
    }

    /// Corruptions that escaped ABFT verification and were only caught by
    /// the downstream non-finite guard, over the engine's lifetime. Always 0
    /// under [`IntegrityMode::Off`] (nothing is being verified, so nothing
    /// can *escape* verification).
    pub fn integrity_undetected(&self) -> u64 {
        self.integrity_undetected.load(Ordering::Relaxed)
    }

    /// [`check_finite`] for a PE-array layer that already passed ABFT
    /// verification (or ran with it off): a non-finite value surfacing here
    /// under an active integrity mode is corruption the checksums missed, so
    /// it also trips the `integrity_undetected` counter.
    fn check_verified_finite(&self, layer: &str, output: &Tensor) -> Result<(), MachineError> {
        let result = check_finite(layer, output);
        if result.is_err() && self.machine.config().integrity.verifies() {
            self.integrity_undetected.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Joins and removes every finished worker handle.
    fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let handle = handles.swap_remove(i);
                let _ = handle.join();
            } else {
                i += 1;
            }
        }
    }

    /// Reaps finished worker handles and — unless the pool has been shut
    /// down — respawns replacements up to the pool's target size, counting
    /// each respawn. Returns the number of live workers afterwards.
    fn supervise_pool(&self) -> usize {
        let shutdown = lock_unpoisoned(&self.shared.state).shutdown;
        let mut handles = lock_unpoisoned(&self.handles);
        Self::reap_finished(&mut handles);
        if shutdown {
            return handles.len();
        }
        while handles.len() < self.threads {
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || worker_loop(shared)));
            self.respawns.fetch_add(1, Ordering::Relaxed);
        }
        handles.len()
    }

    /// Spawns exactly one replacement worker in response to a
    /// [`MachineError::WorkerPanic`] reply — a reliable death notice: the
    /// worker sends it and immediately terminates, though its handle may not
    /// test as finished yet. Reaps whatever already has; a briefly
    /// over-length handle list (one dying worker plus its replacement)
    /// shrinks back on the next reap. Never respawns after shutdown.
    fn replace_crashed_worker(&self) {
        let shutdown = lock_unpoisoned(&self.shared.state).shutdown;
        let mut handles = lock_unpoisoned(&self.handles);
        Self::reap_finished(&mut handles);
        if shutdown {
            return;
        }
        let shared = Arc::clone(&self.shared);
        handles.push(std::thread::spawn(move || worker_loop(shared)));
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Shuts the worker pool down in place and joins every worker, leaving
    /// the engine alive but unable to execute PE-array layers.
    ///
    /// This is the pool-death fault-injection hook: the serving stack must
    /// stay *live* when the pool dies, so after this call any dispatch
    /// resolves with a typed [`MachineError::PoolUnavailable`] through the
    /// same timeout path that guards against mid-task worker panics — it must
    /// never hang, and the supervisor never resurrects a deliberately
    /// shut-down pool. The async front-end's liveness tests ([`crate::serve`])
    /// drive this directly. Workers drain tasks already queued before
    /// exiting; calling this between requests (no tasks in flight) is
    /// deterministic.
    pub fn shut_down_pool(&mut self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in lock_unpoisoned(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }

    /// The machine configuration requests execute under.
    pub fn machine(&self) -> &GanaxMachine {
        &self.machine
    }

    /// Compiles a network for this engine's configuration — sugar for
    /// [`CompiledNetwork::compile`].
    ///
    /// # Errors
    /// As [`CompiledNetwork::compile`].
    pub fn compile(
        &self,
        network: &Network,
        weights: &NetworkWeights,
    ) -> Result<CompiledNetwork, MachineError> {
        CompiledNetwork::compile(&self.machine, network, weights)
    }

    /// Checks an artifact was compiled for this engine's configuration.
    fn check_compiled(&self, compiled: &CompiledNetwork) -> Result<(), MachineError> {
        if compiled.machine != self.machine {
            return Err(MachineError::Unsupported {
                detail: "network was compiled for a different machine configuration".into(),
            });
        }
        Ok(())
    }

    /// Executes one inference from a compiled artifact — the warm serving
    /// path: no planning, no worker spawning, PEs and buffers reused in
    /// place. Bit-identical to [`GanaxMachine::execute_network`] on the same
    /// inputs (which itself compiles and then calls this).
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when the input does not match
    /// the network, [`MachineError::Unsupported`] when the artifact was
    /// compiled for a different configuration, and propagates worker errors.
    pub fn execute(
        &self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<NetworkExecution, MachineError> {
        self.check_compiled(compiled)?;
        if input.shape() != compiled.network.input_shape() {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "input {} != network input {}",
                    input.shape(),
                    compiled.network.input_shape()
                ),
            });
        }
        let start = Instant::now();
        // One execution = one fault epoch: non-persistent corruption armed in
        // this epoch fires deterministically here, and a *retry* (the next
        // epoch) runs clean — transient-fault semantics the serving layer's
        // retry path relies on.
        self.injector.begin_epoch();
        let mut reports = Vec::with_capacity(compiled.layers.len());
        let mut current = Arc::new(input.clone());
        for (i, layer) in compiled.network.layers().iter().enumerate() {
            let layer_start = Instant::now();
            match &compiled.layers[i] {
                CompiledLayer::Host => {
                    let mut out = host_projection(layer, &current, compiled.weights.weight(i))?;
                    finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                    check_finite(&layer.name, &out)?;
                    current = Arc::new(out);
                    reports.push(LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: false,
                        host: true,
                        busy_pe_cycles: 0,
                        work_units: 0,
                        counts: EventCounts::default(),
                        balance: 1.0,
                        wall_seconds: layer_start.elapsed().as_secs_f64(),
                    });
                }
                CompiledLayer::Machine {
                    layer: shared,
                    plan,
                } => {
                    let inputs = Arc::new(vec![Arc::clone(&current)]);
                    let run = self.run_layer(shared, plan, i, inputs)?;
                    let mut outputs = run.outputs;
                    let Some(mut out) = outputs.pop() else {
                        return Err(MachineError::PoolUnavailable {
                            detail: "single-element batch produced no output".into(),
                        });
                    };
                    let max_shard = run.shard_busy.iter().copied().max().unwrap_or(0);
                    let balance = if max_shard == 0 {
                        1.0
                    } else {
                        run.busy_pe_cycles as f64 / (run.shard_busy.len() as u64 * max_shard) as f64
                    };
                    finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                    self.check_verified_finite(&layer.name, &out)?;
                    current = Arc::new(out);
                    reports.push(LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: layer.is_tconv(),
                        host: false,
                        busy_pe_cycles: run.busy_pe_cycles,
                        work_units: run.work_units,
                        counts: run.counts,
                        balance,
                        wall_seconds: layer_start.elapsed().as_secs_f64(),
                    });
                }
            }
        }
        Ok(NetworkExecution {
            network: compiled.network.name().to_string(),
            threads: self.threads,
            layers: reports,
            output: Arc::try_unwrap(current).unwrap_or_else(|arc| (*arc).clone()),
            wall_seconds: start.elapsed().as_secs_f64(),
            // True by construction: `CompiledLayer::Machine` always carries
            // its plan, so this path contains no planning code. CONTRACT for
            // future changes: any replan-on-miss path added here MUST add
            // its measured time to this field — `bench_serve`, the CI
            // serve-bench job and `tests/serve.rs` gate on it staying zero
            // for warm requests.
            plan_seconds: 0.0,
        })
    }

    /// Executes a whole batch of inferences from a compiled artifact,
    /// sharding *batch × phase-major output rows* across the pool. Every
    /// element's output is bit-identical to running it alone through
    /// [`InferenceEngine::execute`] (at any thread count), and the aggregate
    /// activity equals the sum of the per-element runs.
    ///
    /// # Errors
    /// As [`InferenceEngine::execute`]; additionally rejects an empty batch.
    pub fn execute_batch(
        &self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
    ) -> Result<BatchExecution, MachineError> {
        self.check_compiled(compiled)?;
        if inputs.is_empty() {
            return Err(MachineError::ShapeMismatch {
                detail: "empty inference batch".into(),
            });
        }
        for input in inputs {
            if input.shape() != compiled.network.input_shape() {
                return Err(MachineError::ShapeMismatch {
                    detail: format!(
                        "input {} != network input {}",
                        input.shape(),
                        compiled.network.input_shape()
                    ),
                });
            }
        }
        let start = Instant::now();
        // One batch = one fault epoch (see `execute`): a retried batch runs
        // clean of non-persistent corruption.
        self.injector.begin_epoch();
        let mut currents: Vec<Arc<Tensor>> = inputs.iter().map(|t| Arc::new(t.clone())).collect();
        let mut busy_pe_cycles = 0u64;
        let mut counts = EventCounts::default();
        let mut work_units = 0u64;
        for (i, layer) in compiled.network.layers().iter().enumerate() {
            match &compiled.layers[i] {
                CompiledLayer::Host => {
                    for current in currents.iter_mut() {
                        let mut out = host_projection(layer, current, compiled.weights.weight(i))?;
                        finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                        check_finite(&layer.name, &out)?;
                        *current = Arc::new(out);
                    }
                }
                CompiledLayer::Machine {
                    layer: shared,
                    plan,
                } => {
                    let layer_inputs = Arc::new(currents.clone());
                    let run = self.run_layer(shared, plan, i, layer_inputs)?;
                    for (current, mut out) in currents.iter_mut().zip(run.outputs) {
                        finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                        self.check_verified_finite(&layer.name, &out)?;
                        *current = Arc::new(out);
                    }
                    busy_pe_cycles += run.busy_pe_cycles;
                    counts += run.counts;
                    work_units += run.work_units;
                }
            }
        }
        Ok(BatchExecution {
            network: compiled.network.name().to_string(),
            threads: self.threads,
            outputs: currents
                .into_iter()
                .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()))
                .collect(),
            busy_pe_cycles,
            counts,
            work_units,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Runs one PE-array layer for every element of `inputs` through the
    /// pool: rows are carved into wide phase-major slices over the plan's row
    /// order via [`shard_for_position`] (exactly the per-layer fast path's
    /// assignment, so per-shard busy splits match it), each shard task covers
    /// all batch elements, and results reduce in task-index order.
    ///
    /// This is also the pool's **supervisor**: a worker that panics reports a
    /// typed [`MachineError::WorkerPanic`] and terminates, whereupon this
    /// dispatcher respawns a replacement and requeues the lost shard (up to
    /// [`MAX_SHARD_ATTEMPTS`]) — the requeued shard re-executes in the same
    /// fault epoch, so the wave's result stays bit-identical to an
    /// uninterrupted run. Only a deliberately shut-down pool is never
    /// restarted; then missing shards resolve as
    /// [`MachineError::PoolUnavailable`].
    fn run_layer(
        &self,
        layer: &Arc<Layer>,
        plan: &Arc<PlannedLayer>,
        layer_index: usize,
        inputs: Arc<Vec<Arc<Tensor>>>,
    ) -> Result<LayerRun, MachineError> {
        for input in inputs.iter() {
            if input.shape() != layer.input {
                return Err(MachineError::ShapeMismatch {
                    detail: format!("input {} != layer input {}", input.shape(), layer.input),
                });
            }
        }
        let height = layer.output.height;
        let width = layer.output.width;
        let co_count = layer.output.channels;
        let shards = self.threads.clamp(1, height.max(1));
        // Wide slices over the phase-major row order (see
        // `GanaxMachine::execute_planned`): contiguous row-order blocks stripe
        // across shards, so each shard walks long runs of adjacent phases
        // while still receiving the same mix of shallow- and deep-phase rows.
        let mut position = vec![0usize; height];
        for (pos, &oy) in plan.plan.row_order.iter().enumerate() {
            position[oy] = pos;
        }
        let mut shard_rows: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for oy in 0..height {
            shard_rows[shard_for_position(position[oy], height, shards)].push(oy);
        }

        let meta: Vec<Arc<Vec<usize>>> = shard_rows.into_iter().map(Arc::new).collect();
        let verify = self.machine.config().integrity.verifies();
        let all: Vec<usize> = (0..meta.len()).collect();
        let replies = self.dispatch_wave(layer, plan, layer_index, &inputs, &meta, &all, verify);
        let mut shard_outputs: Vec<ShardOutput> = Vec::with_capacity(meta.len());
        for reply in replies {
            shard_outputs.push(reply.ok_or_else(|| MachineError::PoolUnavailable {
                detail: "the worker pool shut down before reporting a shard".into(),
            })??);
        }
        // Verify ABFT checksums (and heal) before any shard buffer is
        // recycled or copied out — corrupted rows must never reach assembly.
        if verify {
            self.verify_and_heal(layer, plan, layer_index, &inputs, &meta, &mut shard_outputs)?;
        }

        let elements = inputs.len();
        let mut outputs: Vec<Tensor> = (0..elements).map(|_| Tensor::zeros(layer.output)).collect();
        let row_stride = co_count * width;
        let mut busy_pe_cycles = 0u64;
        let mut counts = EventCounts::default();
        let mut work_units = 0u64;
        let mut shard_busy = Vec::with_capacity(meta.len());
        for (task_id, shard) in shard_outputs.into_iter().enumerate() {
            let rows = &meta[task_id];
            for (e, output) in outputs.iter_mut().enumerate() {
                let data = output.data_mut();
                for (slot, &oy) in rows.iter().enumerate() {
                    let src = (e * rows.len() + slot) * row_stride;
                    for co in 0..co_count {
                        let dst = (co * height + oy) * width;
                        data[dst..dst + width]
                            .copy_from_slice(&shard.buffer[src + co * width..][..width]);
                    }
                }
            }
            busy_pe_cycles += shard.busy_pe_cycles;
            counts += shard.counts;
            work_units += shard.work_units;
            shard_busy.push(shard.busy_pe_cycles);
            self.shared.recycle(shard.buffer);
        }
        // Horizontal accumulation of each node's partial sums into the output
        // row — charged once per layer, as `execute_planned` does.
        counts.inter_pe_transfers += work_units * width as u64;
        Ok(LayerRun {
            outputs,
            busy_pe_cycles,
            counts,
            work_units,
            shard_busy,
        })
    }

    /// Publishes one dispatch wave — the shards named by `ids` (indices into
    /// `meta`) — and collects their replies, supervising worker panics with
    /// respawn + same-epoch requeue exactly as described on
    /// [`InferenceEngine::run_layer`]. Reply `i` corresponds to `ids[i]`;
    /// `None` means the pool shut down before reporting that shard.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_wave(
        &self,
        layer: &Arc<Layer>,
        plan: &Arc<PlannedLayer>,
        layer_index: usize,
        inputs: &Arc<Vec<Arc<Tensor>>>,
        meta: &[Arc<Vec<usize>>],
        ids: &[usize],
        verify: bool,
    ) -> Vec<Option<Result<ShardOutput, MachineError>>> {
        let (reply_tx, reply_rx) = channel();
        let wave = self.wave_counter.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            for (task_id, &shard) in ids.iter().enumerate() {
                state.tasks.push_back(ShardTask {
                    task_id,
                    wave,
                    layer: Arc::clone(layer),
                    plan: Arc::clone(plan),
                    layer_index,
                    injector: Arc::clone(&self.injector),
                    inputs: Arc::clone(inputs),
                    rows: Arc::clone(&meta[shard]),
                    verify,
                    reply: reply_tx.clone(),
                });
            }
        }
        // One wakeup per task when the wave cannot occupy the whole pool;
        // otherwise a single broadcast. Either way no worker is woken only to
        // find the queue already drained by its siblings.
        if ids.len() < self.threads {
            for _ in 0..ids.len() {
                self.shared.available.notify_one();
            }
        } else {
            self.shared.available.notify_all();
        }

        let mut replies: Vec<Option<Result<ShardOutput, MachineError>>> =
            (0..ids.len()).map(|_| None).collect();
        let mut attempts = vec![1u32; ids.len()];
        let mut received = 0;
        while received < ids.len() {
            match reply_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(reply) => {
                    let task_id = reply.task_id;
                    match reply.result {
                        Err(MachineError::WorkerPanic { .. })
                            if attempts[task_id] < MAX_SHARD_ATTEMPTS =>
                        {
                            // The worker that owned this shard crashed and
                            // terminated itself. Bring the pool back to
                            // strength, then hand the shard back to the
                            // queue: it restarts from a zeroed buffer in the
                            // same fault epoch, so recovery is bit-identical.
                            attempts[task_id] += 1;
                            self.replace_crashed_worker();
                            self.requeued_shards.fetch_add(1, Ordering::Relaxed);
                            {
                                let mut state = lock_unpoisoned(&self.shared.state);
                                state.tasks.push_back(ShardTask {
                                    task_id,
                                    wave,
                                    layer: Arc::clone(layer),
                                    plan: Arc::clone(plan),
                                    layer_index,
                                    injector: Arc::clone(&self.injector),
                                    inputs: Arc::clone(inputs),
                                    rows: Arc::clone(&meta[ids[task_id]]),
                                    verify,
                                    reply: reply_tx.clone(),
                                });
                            }
                            // A single requeued shard needs exactly one worker.
                            self.shared.available.notify_one();
                        }
                        result => {
                            if matches!(result, Err(MachineError::WorkerPanic { .. })) {
                                // Attempt cap exhausted (a persistent fault):
                                // restore the pool, surface the typed error.
                                self.replace_crashed_worker();
                            }
                            replies[task_id] = Some(result);
                            received += 1;
                        }
                    }
                }
                // We hold `reply_tx`, so the channel cannot disconnect; a
                // timeout means workers are busy — or dead. Reap crashed
                // workers and respawn replacements; if none are live and none
                // may be spawned (the pool was shut down), waiting any longer
                // would hang forever. Bail out; the `None` replies turn into
                // a typed error at the call site.
                Err(RecvTimeoutError::Timeout) => {
                    if self.supervise_pool() == 0 {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        drop(reply_tx);
        if received < ids.len() {
            // Abandoning the wave: purge its queued tasks so a dead pool's
            // queue does not accumulate stale shards (and their input Arcs).
            let mut state = lock_unpoisoned(&self.shared.state);
            state.tasks.retain(|t| t.wave != wave);
        }
        replies
    }

    /// Verifies every shard's ABFT row checksums and — under
    /// [`IntegrityMode::VerifyAndHeal`] — surgically re-executes the flagged
    /// shards in a fresh fault epoch, merging only the flagged row slices
    /// (and their checksums) back into the originals. The clean rows, and
    /// every activity counter, are untouched: healing repairs *data*, so a
    /// healed layer reports the same busy cycles and event counts as the
    /// corrupted run — which are themselves identical to a fault-free run at
    /// every pool size. Verdicts come from [`row_checksum_ok`]'s
    /// deterministic geometry-scaled tolerance over checksum triples folded
    /// in a fixed order, so the same corruption is flagged (or passed)
    /// identically at every pool size. A mismatch that survives
    /// [`MAX_HEAL_ROUNDS`] healing rounds — or any mismatch under plain
    /// [`IntegrityMode::Verify`] — is reported as the persistent, non-
    /// transient [`MachineError::IntegrityViolation`].
    fn verify_and_heal(
        &self,
        layer: &Arc<Layer>,
        plan: &Arc<PlannedLayer>,
        layer_index: usize,
        inputs: &Arc<Vec<Arc<Tensor>>>,
        meta: &[Arc<Vec<usize>>],
        shards: &mut [ShardOutput],
    ) -> Result<(), MachineError> {
        let heals = self.machine.config().integrity.heals();
        let row_stride = layer.output.channels * layer.output.width;
        let mut rounds = 0u32;
        loop {
            // Flagged `(shard, flat (element, row slot) indices)` pairs.
            let mut flagged: Vec<(usize, Vec<usize>)> = Vec::new();
            for (shard_id, shard) in shards.iter().enumerate() {
                let rows = &meta[shard_id];
                let mut bad = Vec::new();
                for (i, check) in shard.checks.iter().enumerate() {
                    self.integrity_checks.fetch_add(1, Ordering::Relaxed);
                    if !row_checksum_ok(&plan.plan, rows[i % rows.len()], check) {
                        bad.push(i);
                    }
                }
                if !bad.is_empty() {
                    flagged.push((shard_id, bad));
                }
            }
            if flagged.is_empty() {
                return Ok(());
            }
            let slices: u64 = flagged.iter().map(|(_, bad)| bad.len() as u64).sum();
            self.integrity_violations
                .fetch_add(slices, Ordering::Relaxed);
            if !heals || rounds >= MAX_HEAL_ROUNDS {
                let mut rows_out: Vec<usize> = flagged
                    .iter()
                    .flat_map(|(shard_id, bad)| {
                        let rows = &meta[*shard_id];
                        bad.iter().map(move |i| rows[i % rows.len()])
                    })
                    .collect();
                rows_out.sort_unstable();
                rows_out.dedup();
                return Err(MachineError::IntegrityViolation {
                    layer: layer.name.clone(),
                    rows: rows_out,
                });
            }
            rounds += 1;
            // A fresh epoch: non-persistent corruption armed in the failed
            // epoch stays consumed in the injector's fired-map, so the
            // re-execution runs clean of it — while a persistent fault fires
            // again, fails verification again, and exhausts the round cap.
            self.injector.begin_epoch();
            let ids: Vec<usize> = flagged.iter().map(|(shard_id, _)| *shard_id).collect();
            let healed = self.dispatch_wave(layer, plan, layer_index, inputs, meta, &ids, true);
            for ((shard_id, bad), reply) in flagged.iter().zip(healed) {
                let fresh = reply.ok_or_else(|| MachineError::PoolUnavailable {
                    detail: "the worker pool shut down before reporting a healed shard".into(),
                })??;
                let shard = &mut shards[*shard_id];
                for &i in bad {
                    let at = i * row_stride;
                    shard.buffer[at..at + row_stride]
                        .copy_from_slice(&fresh.buffer[at..at + row_stride]);
                    shard.checks[i] = fresh.checks[i];
                }
                self.rows_healed
                    .fetch_add(bad.len() as u64, Ordering::Relaxed);
                self.shared.recycle(fresh.buffer);
            }
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in lock_unpoisoned(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Rejects a finished layer output containing NaN or ±inf with a typed
/// [`MachineError::NonFiniteOutput`] naming the layer and the first offending
/// element — the guard that turns silently-poisoned activations (a
/// [`FaultKind::NAN_POISON`](ganax_sim::FaultKind) hit, or a genuine numeric
/// blow-up) into a typed, retryable failure instead of corrupt responses.
fn check_finite(layer: &str, output: &Tensor) -> Result<(), MachineError> {
    if let Some(index) = output.data().iter().position(|v| !v.is_finite()) {
        return Err(MachineError::NonFiniteOutput {
            layer: layer.to_string(),
            index,
        });
    }
    Ok(())
}

/// The pooled execution of one layer across a batch.
struct LayerRun {
    outputs: Vec<Tensor>,
    busy_pe_cycles: u64,
    counts: EventCounts,
    work_units: u64,
    shard_busy: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::{Activation, NetworkBuilder};
    use ganax_tensor::{ConvParams, Shape};

    fn toy_network() -> Network {
        NetworkBuilder::new("toy-generator", Shape::new_2d(8, 1, 1))
            .projection("project", Shape::new_2d(4, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                3,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 2, ConvParams::conv_2d(3, 1, 1), Activation::Tanh)
            .build()
            .unwrap()
    }

    fn toy_weights(network: &Network, seed: u64) -> NetworkWeights {
        let tensors = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| Tensor::deterministic(NetworkWeights::expected_shape(l), seed + i as u64))
            .collect();
        NetworkWeights::new(network, tensors).unwrap()
    }

    #[test]
    fn compiled_network_is_reused_without_replanning() {
        let net = toy_network();
        let weights = toy_weights(&net, 7);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 3);
        let compiled = engine.compile(&net, &weights).unwrap();
        assert!(compiled.plan_seconds() > 0.0);
        assert_eq!(compiled.machine_layer_count(), 2);
        let input = Tensor::deterministic(net.input_shape(), 13);
        let first = engine.execute(&compiled, &input).unwrap();
        let second = engine.execute(&compiled, &input).unwrap();
        assert_eq!(first.output, second.output);
        assert_eq!(first.plan_seconds, 0.0);
        assert_eq!(second.plan_seconds, 0.0);
        assert_eq!(first.total_counts(), second.total_counts());
    }

    #[test]
    fn engine_matches_the_per_layer_fast_path() {
        let net = toy_network();
        let weights = toy_weights(&net, 19);
        let input = Tensor::deterministic(net.input_shape(), 23);
        let machine = GanaxMachine::paper();
        let staged = machine
            .execute_network_staged(&net, &input, &weights, 2)
            .unwrap();
        for threads in [1, 2, 5] {
            let engine = InferenceEngine::new(machine, threads);
            let compiled = engine.compile(&net, &weights).unwrap();
            let run = engine.execute(&compiled, &input).unwrap();
            assert_eq!(run.output, staged.output, "{threads}-thread engine output");
            assert_eq!(
                run.total_counts(),
                staged.total_counts(),
                "{threads}-thread engine counts"
            );
            assert_eq!(run.total_busy_pe_cycles(), staged.total_busy_pe_cycles());
            assert_eq!(run.total_work_units(), staged.total_work_units());
        }
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let net = toy_network();
        let weights = toy_weights(&net, 31);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        let inputs: Vec<Tensor> = (0..3)
            .map(|k| Tensor::deterministic(net.input_shape(), 41 + k))
            .collect();
        let batch = engine.execute_batch(&compiled, &inputs).unwrap();
        assert_eq!(batch.batch_size(), 3);
        let mut busy = 0u64;
        let mut counts = EventCounts::default();
        for (input, output) in inputs.iter().zip(&batch.outputs) {
            let single = engine.execute(&compiled, input).unwrap();
            assert_eq!(&single.output, output, "batch element diverged");
            busy += single.total_busy_pe_cycles();
            counts += single.total_counts();
        }
        assert_eq!(batch.busy_pe_cycles, busy, "aggregate busy cycles");
        assert_eq!(batch.counts, counts, "aggregate counters");
        assert!(batch.inferences_per_second() > 0.0);
    }

    #[test]
    fn rejects_mismatched_artifacts_and_inputs() {
        let net = toy_network();
        let weights = toy_weights(&net, 53);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        // Wrong input shape.
        let bad = Tensor::zeros(Shape::new_2d(2, 1, 1));
        assert!(matches!(
            engine.execute(&compiled, &bad),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Empty batch.
        assert!(matches!(
            engine.execute_batch(&compiled, &[]),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Artifact compiled for a different machine configuration.
        let other = GanaxMachine::new(
            crate::GanaxConfig::paper()
                .with_frequency_hz(250_000_000.0)
                .unwrap(),
        );
        let other_engine = InferenceEngine::new(other, 1);
        assert!(matches!(
            other_engine.execute(&compiled, &Tensor::zeros(net.input_shape())),
            Err(MachineError::Unsupported { .. })
        ));
    }

    use ganax_sim::{FaultKind, FaultSpec};

    /// The fault-free output of the toy network on the paper machine.
    fn clean_output(net: &Network, weights: &NetworkWeights, input: &Tensor) -> Tensor {
        let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(net, weights).unwrap();
        engine.execute(&compiled, input).unwrap().output
    }

    fn faulty_machine(spec: FaultSpec) -> GanaxMachine {
        GanaxMachine::new(crate::GanaxConfig::paper().with_fault(spec).unwrap())
    }

    #[test]
    fn corruption_is_bit_identical_across_paths_and_thread_counts() {
        let net = toy_network();
        let weights = toy_weights(&net, 61);
        let input = Tensor::deterministic(net.input_shape(), 67);
        let clean = clean_output(&net, &weights, &input);
        let spec = FaultSpec::seeded(
            0xFA11,
            40_000,
            FaultKind::INPUT_FLIP | FaultKind::WEIGHT_FLIP | FaultKind::STUCK_LANE,
        );
        let machine = faulty_machine(spec);
        // The same seed corrupts the staged per-layer path identically.
        let staged = machine
            .execute_network_staged(&net, &input, &weights, 2)
            .unwrap();
        assert_ne!(staged.output, clean, "the schedule must actually corrupt");
        let staged_serial = machine
            .execute_network_staged(&net, &input, &weights, 1)
            .unwrap();
        assert_eq!(
            staged_serial.output, staged.output,
            "corruption is thread-count invariant on the staged path"
        );
        for threads in [1, 2, 5] {
            let engine = InferenceEngine::new(machine, threads);
            let compiled = engine.compile(&net, &weights).unwrap();
            let run = engine.execute(&compiled, &input).unwrap();
            assert_eq!(
                run.output, staged.output,
                "{threads}-thread corrupted output"
            );
            assert!(engine.injected_faults() > 0, "faults must have fired");
        }
    }

    #[test]
    fn nan_poison_is_typed_and_a_retry_runs_clean() {
        let net = toy_network();
        let weights = toy_weights(&net, 71);
        let input = Tensor::deterministic(net.input_shape(), 73);
        let clean = clean_output(&net, &weights, &input);
        // Target the tanh layer: relu's `max(0.0)` flushes NaN, tanh keeps it.
        let spec = FaultSpec {
            layer: 2,
            ..FaultSpec::seeded(7, 1_000_000, FaultKind::NAN_POISON)
        };
        let engine = InferenceEngine::new(faulty_machine(spec), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        match engine.execute(&compiled, &input) {
            Err(MachineError::NonFiniteOutput { layer, .. }) => assert_eq!(layer, "smooth"),
            other => panic!("expected NonFiniteOutput, got {other:?}"),
        }
        // The poison was transient: the next epoch runs clean, bit-identical
        // to a fault-free machine.
        let retry = engine.execute(&compiled, &input).unwrap();
        assert_eq!(retry.output, clean, "retried output");
    }

    #[test]
    fn persistent_faults_fail_every_attempt() {
        let net = toy_network();
        let weights = toy_weights(&net, 71);
        let input = Tensor::deterministic(net.input_shape(), 73);
        let spec = FaultSpec {
            layer: 2,
            persistent: true,
            ..FaultSpec::seeded(7, 1_000_000, FaultKind::NAN_POISON)
        };
        let engine = InferenceEngine::new(faulty_machine(spec), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        for _ in 0..3 {
            assert!(matches!(
                engine.execute(&compiled, &input),
                Err(MachineError::NonFiniteOutput { .. })
            ));
        }
    }

    #[test]
    fn worker_panic_recovers_bit_identically_with_respawn_and_requeue() {
        let net = toy_network();
        let weights = toy_weights(&net, 83);
        let input = Tensor::deterministic(net.input_shape(), 89);
        let clean = clean_output(&net, &weights, &input);
        // One worker crash: layer 1, output row 2, guaranteed to fire once.
        let spec = FaultSpec {
            layer: 1,
            row: 2,
            ..FaultSpec::seeded(11, 1_000_000, FaultKind::WORKER_PANIC)
        };
        for threads in [1, 2, 4] {
            let engine = InferenceEngine::new(faulty_machine(spec), threads);
            let compiled = engine.compile(&net, &weights).unwrap();
            let run = engine.execute(&compiled, &input).unwrap();
            assert_eq!(run.output, clean, "{threads}-thread recovered output");
            assert_eq!(engine.respawns(), 1, "{threads}-thread respawns");
            assert_eq!(engine.requeued_shards(), 1, "{threads}-thread requeues");
            assert!(engine.pool_is_alive(), "{threads}-thread pool liveness");
            // The respawned pool keeps serving cleanly (the panic site fires
            // once ever).
            let again = engine.execute(&compiled, &input).unwrap();
            assert_eq!(again.output, clean, "{threads}-thread post-crash run");
        }
    }

    #[test]
    fn a_shut_down_pool_reports_typed_pool_unavailable_and_stays_down() {
        let net = toy_network();
        let weights = toy_weights(&net, 97);
        let mut engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        engine.shut_down_pool();
        assert!(!engine.pool_is_alive());
        let result = engine.execute(&compiled, &Tensor::deterministic(net.input_shape(), 3));
        assert!(matches!(result, Err(MachineError::PoolUnavailable { .. })));
        // The supervisor never resurrects a deliberately shut-down pool, and
        // the abandoned wave left no stale tasks behind.
        assert_eq!(engine.respawns(), 0);
        assert!(lock_unpoisoned(&engine.shared.state).tasks.is_empty());
    }
}
