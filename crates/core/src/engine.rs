//! The compile-once, run-many inference engine.
//!
//! GANAX's premise is that the expensive part of serving a generator — the
//! Figure 5 phase decomposition and the operand layout for the MIMD-SIMD
//! array — is done **once per layer shape** and reused for every inference.
//! This module is that split, made explicit:
//!
//! * [`CompiledNetwork`] validates a network's weights once and hoists every
//!   layer's plan (row taps, phase chunks, reordered/flipped weight rows, the
//!   phase-major dispatch order) into an immutable, `Arc`-shared artifact;
//! * [`InferenceEngine`] owns a **persistent worker pool**: long-lived
//!   threads fed through a shard queue, each owning one worker PE that is
//!   [reset in place](ganax_sim::ProcessingEngine::reset) between dispatch
//!   batches, plus recycled operand/output buffers — so the serving steady
//!   state performs no planning and no allocation churn;
//! * [`InferenceEngine::execute_batch`] shards *batch × phase-major output
//!   rows* across the pool and amortizes gathered weight streams across every
//!   resident row of every batch element.
//!
//! All three paths are **bit-identical** to the per-layer fast path of
//! [`GanaxMachine::execute_layer_threaded`] (and therefore to the seed
//! single-step reference) at every thread count: the engine issues exactly
//! the same per-dispatch programs, it only reorders *which* dispatch runs
//! when and keeps more operands resident between dispatches.
//!
//! # Example
//!
//! ```
//! use ganax::{CompiledNetwork, GanaxMachine, InferenceEngine, NetworkWeights};
//! use ganax_models::{Activation, NetworkBuilder};
//! use ganax_tensor::{ConvParams, Shape, Tensor};
//!
//! let net = NetworkBuilder::new("toy", Shape::new_2d(1, 4, 4))
//!     .tconv("up", 1, ConvParams::transposed_2d(5, 2, 2), Activation::Relu)
//!     .build()
//!     .unwrap();
//! let weights =
//!     NetworkWeights::new(&net, vec![Tensor::filled_filter(1, 1, 1, 5, 5, 0.5)]).unwrap();
//! let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
//! let compiled = engine.compile(&net, &weights).unwrap();
//!
//! // Compile once, run many: every request reuses the cached plans.
//! let input = Tensor::filled(net.input_shape(), 1.0);
//! let a = engine.execute(&compiled, &input).unwrap();
//! let b = engine.execute(&compiled, &input).unwrap();
//! assert_eq!(a.output, b.output);
//! assert_eq!(a.plan_seconds, 0.0, "warm runs never plan");
//!
//! // Batched execution is bit-identical to one-at-a-time execution.
//! let batch = engine.execute_batch(&compiled, &[input.clone(), input]).unwrap();
//! assert_eq!(batch.outputs[0], a.output);
//! assert_eq!(batch.outputs[1], a.output);
//! ```

use std::collections::VecDeque;
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ganax_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use ganax_isa::ExecUop;
use ganax_models::{Layer, LayerOp, Network};
use ganax_sim::ProcessingEngine;
use ganax_tensor::Tensor;

use crate::machine::{
    chunk_group_max, gather_chunk_input, load_chunk_weights, retire_chunk_group, GanaxMachine,
    MachineError, PlannedLayer,
};
use crate::network::{
    finish_layer_output, host_projection, LayerExecution, NetworkExecution, NetworkWeights,
};

/// One layer of a [`CompiledNetwork`]: a host-executed projection, or a
/// PE-array layer with its hoisted plan shared read-only with the pool.
enum CompiledLayer {
    /// Fully-connected projection, executed on the host.
    Host,
    /// Conv/tconv layer executed on the PE array from a cached plan.
    Machine {
        /// The layer description, shared with worker threads.
        layer: Arc<Layer>,
        /// The hoisted plan (taps, chunks, reordered/flipped weight rows).
        plan: Arc<PlannedLayer>,
    },
}

/// A network compiled for repeated execution: weights validated once, every
/// PE-array layer's [`plan`](GanaxMachine) hoisted into an immutable artifact
/// that [`InferenceEngine`] runs without any per-request planning.
pub struct CompiledNetwork {
    network: Network,
    weights: NetworkWeights,
    layers: Vec<CompiledLayer>,
    machine: GanaxMachine,
    plan_seconds: f64,
}

impl CompiledNetwork {
    /// Validates the network/weight bundle and builds every PE-array layer's
    /// plan for `machine`'s configuration.
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when the weight bundle does
    /// not match the network, [`MachineError::Unsupported`] for layers the
    /// cycle-level machine cannot execute, and [`MachineError::Config`] when
    /// the machine's configuration fails validation.
    pub fn compile(
        machine: &GanaxMachine,
        network: &Network,
        weights: &NetworkWeights,
    ) -> Result<Self, MachineError> {
        let start = Instant::now();
        let net_layers = network.layers();
        if weights.len() != net_layers.len() {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "{} weight tensors for {} layers",
                    weights.len(),
                    net_layers.len()
                ),
            });
        }
        let mut layers = Vec::with_capacity(net_layers.len());
        for (i, layer) in net_layers.iter().enumerate() {
            let weight = weights.weight(i);
            let expected = NetworkWeights::expected_shape(layer);
            if weight.shape() != expected {
                return Err(MachineError::ShapeMismatch {
                    detail: format!(
                        "layer `{}` weights {} != expected {}",
                        layer.name,
                        weight.shape(),
                        expected
                    ),
                });
            }
            if matches!(layer.op, LayerOp::Projection) {
                layers.push(CompiledLayer::Host);
            } else {
                let planned = machine.plan_layer(layer, weight)?;
                layers.push(CompiledLayer::Machine {
                    layer: Arc::new(layer.clone()),
                    plan: Arc::new(planned),
                });
            }
        }
        Ok(CompiledNetwork {
            network: network.clone(),
            weights: weights.clone(),
            layers,
            machine: *machine,
            plan_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The network this artifact was compiled from.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The validated weight bundle baked into the artifact.
    pub fn weights(&self) -> &NetworkWeights {
        &self.weights
    }

    /// The machine configuration the plans were built for.
    pub fn machine(&self) -> &GanaxMachine {
        &self.machine
    }

    /// Wall-clock seconds spent validating and planning at compile time.
    pub fn plan_seconds(&self) -> f64 {
        self.plan_seconds
    }

    /// Number of layers that execute on the PE array (the rest are host
    /// projections).
    pub fn machine_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, CompiledLayer::Machine { .. }))
            .count()
    }
}

/// The report of one [`InferenceEngine::execute_batch`] call: per-element
/// outputs plus activity aggregated over the whole batch.
#[derive(Debug, Clone)]
pub struct BatchExecution {
    /// Network name.
    pub network: String,
    /// Worker threads in the engine's pool.
    pub threads: usize,
    /// Final outputs, one per batch element, in input order (bias and
    /// activation applied; bit-identical to executing each element alone).
    pub outputs: Vec<Tensor>,
    /// Busy PE cycles summed over every element and layer.
    pub busy_pe_cycles: u64,
    /// Activity counters summed over every element and layer.
    pub counts: EventCounts,
    /// Work units summed over every element and layer.
    pub work_units: u64,
    /// Total wall-clock seconds for the batch.
    pub wall_seconds: f64,
}

impl BatchExecution {
    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.outputs.len()
    }

    /// Completed inferences per wall-clock second — the serving throughput.
    pub fn inferences_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.outputs.len() as f64 / self.wall_seconds
    }

    /// Energy of the batch's simulated activity under a Table II model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.energy(&self.counts)
    }
}

/// A unit of PE-array work handed to the pool: one shard of output rows of
/// one layer, executed for every inference in the batch.
struct ShardTask {
    /// Index of this task within its dispatch wave.
    task_id: usize,
    /// The layer being executed.
    layer: Arc<Layer>,
    /// The layer's cached plan.
    plan: Arc<PlannedLayer>,
    /// Current input feature maps, one per batch element.
    inputs: Arc<Vec<Arc<Tensor>>>,
    /// Output rows (`oy` values) this shard owns, ascending.
    rows: Vec<usize>,
    /// Where the worker reports the shard result.
    reply: Sender<TaskReply>,
}

/// What a worker hands back for one [`ShardTask`].
struct TaskReply {
    task_id: usize,
    result: Result<ShardOutput, MachineError>,
}

/// A completed shard: accumulated output rows plus the worker PE's activity.
struct ShardOutput {
    /// Accumulated rows, laid out `[element][row slot][channel][column]`.
    buffer: Vec<f32>,
    busy_pe_cycles: u64,
    counts: EventCounts,
    work_units: u64,
}

/// The queue state shared between the engine and its workers.
#[derive(Default)]
struct PoolState {
    tasks: VecDeque<ShardTask>,
    shutdown: bool,
}

/// Everything the pool shares: the task queue, its wakeup, and the recycled
/// shard-output buffers that keep the steady state allocation-free.
struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    buffers: Mutex<Vec<Vec<f32>>>,
}

impl PoolShared {
    fn recycle(&self, buffer: Vec<f32>) {
        self.buffers.lock().expect("buffer pool lock").push(buffer);
    }
}

/// The long-lived body of one pool worker: pop shard tasks until shutdown,
/// keeping one [`ProcessingEngine`] resident and resetting it in place
/// between tasks instead of reconstructing it.
fn worker_loop(shared: Arc<PoolShared>) {
    let mut resident: Option<ProcessingEngine> = None;
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.available.wait(state).expect("pool lock");
            }
        };
        let Some(task) = task else { return };
        let config = task.plan.pe_config;
        let pe = match resident.as_mut() {
            Some(pe) if pe.config() == config => {
                pe.reset();
                pe
            }
            _ => resident.insert(ProcessingEngine::new(config)),
        };
        let mut buffer = shared
            .buffers
            .lock()
            .expect("buffer pool lock")
            .pop()
            .unwrap_or_default();
        let result = match run_resident_shard(&task, pe, &mut buffer) {
            Ok((busy_pe_cycles, counts, work_units)) => Ok(ShardOutput {
                buffer,
                busy_pe_cycles,
                counts,
                work_units,
            }),
            Err(error) => {
                shared.recycle(buffer);
                Err(error)
            }
        };
        let _ = task.reply.send(TaskReply {
            task_id: task.task_id,
            result,
        });
    }
}

/// Executes one shard — `task.rows` output rows × every batch element — on a
/// resident worker PE, accumulating into `buffer` (layout
/// `[element][row slot][channel][column]`, zeroed here in place).
///
/// The loop nests `ky → ci → chunk → row block → channel group → row` so a
/// gathered weight stream, staged once per `(chunk, group)`, serves every
/// resident row of every batch element, and a whole block of gathered input
/// streams stays resident in the input scratchpad across all channel groups
/// (each dispatch selects its stream through the input generator's offset
/// register). Per dispatch this issues exactly the per-layer fast path's
/// program — same generators, same µop pairs, same burst — so busy cycles,
/// counters and the f32 accumulation order per output element are
/// bit-identical to [`GanaxMachine::execute_layer_threaded`]; only the number
/// of bulk scratchpad loads shrinks, and those are excluded from the counts
/// on both paths.
fn run_resident_shard(
    task: &ShardTask,
    pe: &mut ProcessingEngine,
    buffer: &mut Vec<f32>,
) -> Result<(u64, EventCounts, u64), MachineError> {
    let layer = &*task.layer;
    let plan = &task.plan.plan;
    let pe_config = &task.plan.pe_config;
    let elements = task.inputs.len();
    let rows = &task.rows;
    let co_count = layer.output.channels;
    let ci_count = layer.input.channels;
    let width = layer.output.width;
    let row_stride = co_count * width;
    buffer.clear();
    buffer.resize(elements * rows.len() * row_stride, 0.0);

    let max_pairs = pe_config.uop_fifo_entries / 2;
    let uop_buf: Vec<ExecUop> = [ExecUop::Repeat, ExecUop::Mac].repeat(max_pairs);
    let mut load_words = 0u64;
    let mut work_units = 0u64;
    // `(element, row slot, input row)` instances whose row reads vertical tap
    // `ky` — rebuilt per tap, reusing the allocation.
    let mut instances: Vec<(usize, usize, usize)> = Vec::new();

    for ky in 0..plan.kernel_h {
        instances.clear();
        for e in 0..elements {
            for (slot, &oy) in rows.iter().enumerate() {
                if let Some(&(_, iy)) = plan.row_taps[oy].iter().find(|&&(tap, _)| tap == ky) {
                    instances.push((e, slot, iy));
                }
            }
        }
        if instances.is_empty() {
            continue;
        }
        for ci in 0..ci_count {
            work_units += instances.len() as u64 * co_count as u64;
            for chunk in &plan.chunks {
                let stream = chunk.taps * chunk.cols;
                // A block is bounded by the input scratchpad *and* by u16
                // generator addressing: every resident stream's window
                // (`input_base + stream`) must stay below 2^16, or the
                // offset register would silently wrap into another slot's
                // stream on configs with very large input scratchpads.
                let block_cap = (pe_config.input_words / stream)
                    .min((u16::MAX as usize + 1) / stream)
                    .max(1);
                for block in instances.chunks(block_cap) {
                    pe.load_input_with(block.len() * stream, |buf| {
                        for (b, &(e, _slot, iy)) in block.iter().enumerate() {
                            let input_row = task.inputs[e].row_2d(ci, iy);
                            gather_chunk_input(
                                plan,
                                chunk,
                                input_row,
                                &mut buf[b * stream..(b + 1) * stream],
                            );
                        }
                    });
                    load_words += (block.len() * stream) as u64;

                    let group_max = chunk_group_max(pe_config, chunk, stream);
                    let mut co0 = 0;
                    while co0 < co_count {
                        let group = group_max.min(co_count - co0);
                        load_words +=
                            load_chunk_weights(pe, plan, chunk, stream, group, co0, ci, ky);
                        for (b, &(e, slot, _iy)) in block.iter().enumerate() {
                            let base = (e * rows.len() + slot) * row_stride;
                            retire_chunk_group(
                                pe,
                                chunk,
                                stream,
                                group,
                                b * stream,
                                &uop_buf,
                                layer,
                                |k, slots| {
                                    let row = &mut buffer[base + (co0 + k) * width..][..width];
                                    let mut ox = chunk.ox_start;
                                    for &value in slots {
                                        row[ox] += value;
                                        ox += chunk.col_step;
                                    }
                                },
                            )?;
                        }
                        co0 += group;
                    }
                }
            }
        }
    }

    let mut counts = pe.counts();
    counts.register_file_writes -= load_words;
    Ok((pe.busy_cycles(), counts, work_units))
}

/// The compile-once, run-many inference engine: a persistent worker pool plus
/// the machine configuration requests are executed under.
///
/// See the [module docs](self) for the serving model and the bit-identity
/// guarantees. Dropping the engine shuts the pool down and joins every
/// worker.
pub struct InferenceEngine {
    machine: GanaxMachine,
    threads: usize,
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl InferenceEngine {
    /// Spawns an engine with `threads` long-lived pool workers (at least 1).
    pub fn new(machine: GanaxMachine, threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
            buffers: Mutex::new(Vec::new()),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        InferenceEngine {
            machine,
            threads,
            shared,
            handles,
        }
    }

    /// Spawns an engine sized from [`std::thread::available_parallelism`].
    pub fn with_available_parallelism(machine: GanaxMachine) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(machine, threads)
    }

    /// Pool workers owned by the engine.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the worker pool can still execute dispatches: at least one
    /// worker thread is alive. `false` after [`InferenceEngine::shut_down_pool`]
    /// or if every worker died (a panic mid-task).
    pub fn pool_is_alive(&self) -> bool {
        !self.handles.is_empty()
            && !self
                .handles
                .iter()
                .all(std::thread::JoinHandle::is_finished)
    }

    /// Shuts the worker pool down in place and joins every worker, leaving
    /// the engine alive but unable to execute PE-array layers.
    ///
    /// This is the pool-death fault-injection hook: the serving stack must
    /// stay *live* when the pool dies, so after this call any dispatch
    /// resolves with a typed [`MachineError`] through the same timeout path
    /// that guards against mid-task worker panics — it must never hang. The
    /// async front-end's liveness tests ([`crate::serve`]) drive this
    /// directly. Workers drain tasks already queued before exiting; calling
    /// this between requests (no tasks in flight) is deterministic.
    pub fn shut_down_pool(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// The machine configuration requests execute under.
    pub fn machine(&self) -> &GanaxMachine {
        &self.machine
    }

    /// Compiles a network for this engine's configuration — sugar for
    /// [`CompiledNetwork::compile`].
    ///
    /// # Errors
    /// As [`CompiledNetwork::compile`].
    pub fn compile(
        &self,
        network: &Network,
        weights: &NetworkWeights,
    ) -> Result<CompiledNetwork, MachineError> {
        CompiledNetwork::compile(&self.machine, network, weights)
    }

    /// Checks an artifact was compiled for this engine's configuration.
    fn check_compiled(&self, compiled: &CompiledNetwork) -> Result<(), MachineError> {
        if compiled.machine != self.machine {
            return Err(MachineError::Unsupported {
                detail: "network was compiled for a different machine configuration".into(),
            });
        }
        Ok(())
    }

    /// Executes one inference from a compiled artifact — the warm serving
    /// path: no planning, no worker spawning, PEs and buffers reused in
    /// place. Bit-identical to [`GanaxMachine::execute_network`] on the same
    /// inputs (which itself compiles and then calls this).
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when the input does not match
    /// the network, [`MachineError::Unsupported`] when the artifact was
    /// compiled for a different configuration, and propagates worker errors.
    pub fn execute(
        &self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<NetworkExecution, MachineError> {
        self.check_compiled(compiled)?;
        if input.shape() != compiled.network.input_shape() {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "input {} != network input {}",
                    input.shape(),
                    compiled.network.input_shape()
                ),
            });
        }
        let start = Instant::now();
        let mut reports = Vec::with_capacity(compiled.layers.len());
        let mut current = Arc::new(input.clone());
        for (i, layer) in compiled.network.layers().iter().enumerate() {
            let layer_start = Instant::now();
            match &compiled.layers[i] {
                CompiledLayer::Host => {
                    let mut out = host_projection(layer, &current, compiled.weights.weight(i))?;
                    finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                    current = Arc::new(out);
                    reports.push(LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: false,
                        host: true,
                        busy_pe_cycles: 0,
                        work_units: 0,
                        counts: EventCounts::default(),
                        balance: 1.0,
                        wall_seconds: layer_start.elapsed().as_secs_f64(),
                    });
                }
                CompiledLayer::Machine {
                    layer: shared,
                    plan,
                } => {
                    let inputs = Arc::new(vec![Arc::clone(&current)]);
                    let run = self.run_layer(shared, plan, inputs)?;
                    let mut outputs = run.outputs;
                    let mut out = outputs.pop().expect("single-element batch");
                    let max_shard = run.shard_busy.iter().copied().max().unwrap_or(0);
                    let balance = if max_shard == 0 {
                        1.0
                    } else {
                        run.busy_pe_cycles as f64 / (run.shard_busy.len() as u64 * max_shard) as f64
                    };
                    finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                    current = Arc::new(out);
                    reports.push(LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: layer.is_tconv(),
                        host: false,
                        busy_pe_cycles: run.busy_pe_cycles,
                        work_units: run.work_units,
                        counts: run.counts,
                        balance,
                        wall_seconds: layer_start.elapsed().as_secs_f64(),
                    });
                }
            }
        }
        Ok(NetworkExecution {
            network: compiled.network.name().to_string(),
            threads: self.threads,
            layers: reports,
            output: Arc::try_unwrap(current).unwrap_or_else(|arc| (*arc).clone()),
            wall_seconds: start.elapsed().as_secs_f64(),
            // True by construction: `CompiledLayer::Machine` always carries
            // its plan, so this path contains no planning code. CONTRACT for
            // future changes: any replan-on-miss path added here MUST add
            // its measured time to this field — `bench_serve`, the CI
            // serve-bench job and `tests/serve.rs` gate on it staying zero
            // for warm requests.
            plan_seconds: 0.0,
        })
    }

    /// Executes a whole batch of inferences from a compiled artifact,
    /// sharding *batch × phase-major output rows* across the pool. Every
    /// element's output is bit-identical to running it alone through
    /// [`InferenceEngine::execute`] (at any thread count), and the aggregate
    /// activity equals the sum of the per-element runs.
    ///
    /// # Errors
    /// As [`InferenceEngine::execute`]; additionally rejects an empty batch.
    pub fn execute_batch(
        &self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
    ) -> Result<BatchExecution, MachineError> {
        self.check_compiled(compiled)?;
        if inputs.is_empty() {
            return Err(MachineError::ShapeMismatch {
                detail: "empty inference batch".into(),
            });
        }
        for input in inputs {
            if input.shape() != compiled.network.input_shape() {
                return Err(MachineError::ShapeMismatch {
                    detail: format!(
                        "input {} != network input {}",
                        input.shape(),
                        compiled.network.input_shape()
                    ),
                });
            }
        }
        let start = Instant::now();
        let mut currents: Vec<Arc<Tensor>> = inputs.iter().map(|t| Arc::new(t.clone())).collect();
        let mut busy_pe_cycles = 0u64;
        let mut counts = EventCounts::default();
        let mut work_units = 0u64;
        for (i, layer) in compiled.network.layers().iter().enumerate() {
            match &compiled.layers[i] {
                CompiledLayer::Host => {
                    for current in currents.iter_mut() {
                        let mut out = host_projection(layer, current, compiled.weights.weight(i))?;
                        finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                        *current = Arc::new(out);
                    }
                }
                CompiledLayer::Machine {
                    layer: shared,
                    plan,
                } => {
                    let layer_inputs = Arc::new(currents.clone());
                    let run = self.run_layer(shared, plan, layer_inputs)?;
                    for (current, mut out) in currents.iter_mut().zip(run.outputs) {
                        finish_layer_output(layer, &mut out, compiled.weights.bias(i));
                        *current = Arc::new(out);
                    }
                    busy_pe_cycles += run.busy_pe_cycles;
                    counts += run.counts;
                    work_units += run.work_units;
                }
            }
        }
        Ok(BatchExecution {
            network: compiled.network.name().to_string(),
            threads: self.threads,
            outputs: currents
                .into_iter()
                .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()))
                .collect(),
            busy_pe_cycles,
            counts,
            work_units,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Runs one PE-array layer for every element of `inputs` through the
    /// pool: rows are round-robined over the plan's phase-major order into
    /// `threads` shards (exactly the per-layer fast path's assignment, so
    /// per-shard busy splits match it), each shard task covers all batch
    /// elements, and results reduce in task-index order.
    fn run_layer(
        &self,
        layer: &Arc<Layer>,
        plan: &Arc<PlannedLayer>,
        inputs: Arc<Vec<Arc<Tensor>>>,
    ) -> Result<LayerRun, MachineError> {
        for input in inputs.iter() {
            if input.shape() != layer.input {
                return Err(MachineError::ShapeMismatch {
                    detail: format!("input {} != layer input {}", input.shape(), layer.input),
                });
            }
        }
        let height = layer.output.height;
        let width = layer.output.width;
        let co_count = layer.output.channels;
        let shards = self.threads.clamp(1, height.max(1));
        // Round-robin over the phase-major row order (see
        // `GanaxMachine::execute_planned`): every shard receives the same mix
        // of shallow- and deep-phase rows.
        let mut position = vec![0usize; height];
        for (pos, &oy) in plan.plan.row_order.iter().enumerate() {
            position[oy] = pos;
        }
        let mut shard_rows: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for oy in 0..height {
            shard_rows[position[oy] % shards].push(oy);
        }

        let (reply_tx, reply_rx) = channel();
        let meta: Vec<Vec<usize>> = shard_rows.clone();
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            for (task_id, rows) in shard_rows.into_iter().enumerate() {
                state.tasks.push_back(ShardTask {
                    task_id,
                    layer: Arc::clone(layer),
                    plan: Arc::clone(plan),
                    inputs: Arc::clone(&inputs),
                    rows,
                    reply: reply_tx.clone(),
                });
            }
        }
        self.shared.available.notify_all();
        drop(reply_tx);

        let elements = inputs.len();
        let mut replies: Vec<Option<Result<ShardOutput, MachineError>>> =
            (0..meta.len()).map(|_| None).collect();
        let mut received = 0;
        while received < meta.len() {
            match reply_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(reply) => {
                    replies[reply.task_id] = Some(reply.result);
                    received += 1;
                }
                // Queued tasks hold reply-sender clones, so the channel never
                // disconnects while tasks sit unpopped — if every worker has
                // died (a panic mid-task), waiting any longer would hang
                // forever. Bail out; the `None` replies below turn into an
                // error.
                Err(RecvTimeoutError::Timeout) => {
                    if self
                        .handles
                        .iter()
                        .all(std::thread::JoinHandle::is_finished)
                    {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut outputs: Vec<Tensor> = (0..elements).map(|_| Tensor::zeros(layer.output)).collect();
        let row_stride = co_count * width;
        let mut busy_pe_cycles = 0u64;
        let mut counts = EventCounts::default();
        let mut work_units = 0u64;
        let mut shard_busy = Vec::with_capacity(meta.len());
        for (task_id, reply) in replies.into_iter().enumerate() {
            let shard = reply.ok_or_else(|| MachineError::Unsupported {
                detail: "a pool worker terminated without reporting its shard".into(),
            })??;
            let rows = &meta[task_id];
            for (e, output) in outputs.iter_mut().enumerate() {
                let data = output.data_mut();
                for (slot, &oy) in rows.iter().enumerate() {
                    let src = (e * rows.len() + slot) * row_stride;
                    for co in 0..co_count {
                        let dst = (co * height + oy) * width;
                        data[dst..dst + width]
                            .copy_from_slice(&shard.buffer[src + co * width..][..width]);
                    }
                }
            }
            busy_pe_cycles += shard.busy_pe_cycles;
            counts += shard.counts;
            work_units += shard.work_units;
            shard_busy.push(shard.busy_pe_cycles);
            self.shared.recycle(shard.buffer);
        }
        // Horizontal accumulation of each node's partial sums into the output
        // row — charged once per layer, as `execute_planned` does.
        counts.inter_pe_transfers += work_units * width as u64;
        Ok(LayerRun {
            outputs,
            busy_pe_cycles,
            counts,
            work_units,
            shard_busy,
        })
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pooled execution of one layer across a batch.
struct LayerRun {
    outputs: Vec<Tensor>,
    busy_pe_cycles: u64,
    counts: EventCounts,
    work_units: u64,
    shard_busy: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::{Activation, NetworkBuilder};
    use ganax_tensor::{ConvParams, Shape};

    fn toy_network() -> Network {
        NetworkBuilder::new("toy-generator", Shape::new_2d(8, 1, 1))
            .projection("project", Shape::new_2d(4, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                3,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 2, ConvParams::conv_2d(3, 1, 1), Activation::Tanh)
            .build()
            .unwrap()
    }

    fn toy_weights(network: &Network, seed: u64) -> NetworkWeights {
        let tensors = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| Tensor::deterministic(NetworkWeights::expected_shape(l), seed + i as u64))
            .collect();
        NetworkWeights::new(network, tensors).unwrap()
    }

    #[test]
    fn compiled_network_is_reused_without_replanning() {
        let net = toy_network();
        let weights = toy_weights(&net, 7);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 3);
        let compiled = engine.compile(&net, &weights).unwrap();
        assert!(compiled.plan_seconds() > 0.0);
        assert_eq!(compiled.machine_layer_count(), 2);
        let input = Tensor::deterministic(net.input_shape(), 13);
        let first = engine.execute(&compiled, &input).unwrap();
        let second = engine.execute(&compiled, &input).unwrap();
        assert_eq!(first.output, second.output);
        assert_eq!(first.plan_seconds, 0.0);
        assert_eq!(second.plan_seconds, 0.0);
        assert_eq!(first.total_counts(), second.total_counts());
    }

    #[test]
    fn engine_matches_the_per_layer_fast_path() {
        let net = toy_network();
        let weights = toy_weights(&net, 19);
        let input = Tensor::deterministic(net.input_shape(), 23);
        let machine = GanaxMachine::paper();
        let staged = machine
            .execute_network_staged(&net, &input, &weights, 2)
            .unwrap();
        for threads in [1, 2, 5] {
            let engine = InferenceEngine::new(machine, threads);
            let compiled = engine.compile(&net, &weights).unwrap();
            let run = engine.execute(&compiled, &input).unwrap();
            assert_eq!(run.output, staged.output, "{threads}-thread engine output");
            assert_eq!(
                run.total_counts(),
                staged.total_counts(),
                "{threads}-thread engine counts"
            );
            assert_eq!(run.total_busy_pe_cycles(), staged.total_busy_pe_cycles());
            assert_eq!(run.total_work_units(), staged.total_work_units());
        }
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let net = toy_network();
        let weights = toy_weights(&net, 31);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        let inputs: Vec<Tensor> = (0..3)
            .map(|k| Tensor::deterministic(net.input_shape(), 41 + k))
            .collect();
        let batch = engine.execute_batch(&compiled, &inputs).unwrap();
        assert_eq!(batch.batch_size(), 3);
        let mut busy = 0u64;
        let mut counts = EventCounts::default();
        for (input, output) in inputs.iter().zip(&batch.outputs) {
            let single = engine.execute(&compiled, input).unwrap();
            assert_eq!(&single.output, output, "batch element diverged");
            busy += single.total_busy_pe_cycles();
            counts += single.total_counts();
        }
        assert_eq!(batch.busy_pe_cycles, busy, "aggregate busy cycles");
        assert_eq!(batch.counts, counts, "aggregate counters");
        assert!(batch.inferences_per_second() > 0.0);
    }

    #[test]
    fn rejects_mismatched_artifacts_and_inputs() {
        let net = toy_network();
        let weights = toy_weights(&net, 53);
        let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
        let compiled = engine.compile(&net, &weights).unwrap();
        // Wrong input shape.
        let bad = Tensor::zeros(Shape::new_2d(2, 1, 1));
        assert!(matches!(
            engine.execute(&compiled, &bad),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Empty batch.
        assert!(matches!(
            engine.execute_batch(&compiled, &[]),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Artifact compiled for a different machine configuration.
        let other = GanaxMachine::new(
            crate::GanaxConfig::paper()
                .with_frequency_hz(250_000_000.0)
                .unwrap(),
        );
        let other_engine = InferenceEngine::new(other, 1);
        assert!(matches!(
            other_engine.execute(&compiled, &Tensor::zeros(net.input_shape())),
            Err(MachineError::Unsupported { .. })
        ));
    }
}
