//! The GANAX layer compiler: lowers a layer into the µop program of Section IV.
//!
//! Before a layer starts, the host statically translates it into (1) access
//! µops that configure each PV's strided µindex generators, (2) `mimd.ld`
//! preloads of the per-PE repeat registers, (3) the per-PV local µop buffer
//! images and (4) the steady-state global µop sequence. Conventional
//! convolution layers compile to pure SIMD sequences (the local buffers are
//! bypassed); transposed convolution layers compile to MIMD-SIMD sequences in
//! which each PV executes the microprogram of the phase group it was assigned.

use ganax_dataflow::LayerGeometry;
use ganax_isa::{
    AccessReg, AccessUop, AddrGenKind, ExecUop, GlobalUopWord, LayerProgram, MicroRegister, MimdUop,
};
use ganax_models::Layer;

use crate::config::GanaxConfig;

/// Compiles layers into [`LayerProgram`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanaxCompiler {
    config: GanaxConfig,
}

impl GanaxCompiler {
    /// Creates a compiler for an accelerator configuration.
    pub fn new(config: GanaxConfig) -> Self {
        GanaxCompiler { config }
    }

    /// Creates a compiler for the paper's configuration.
    pub fn paper() -> Self {
        Self::new(GanaxConfig::paper())
    }

    /// Whether a layer executes in SIMD mode (conventional convolutions and
    /// projections) or requires MIMD-SIMD mode (transposed convolutions).
    pub fn uses_simd_mode(layer: &Layer) -> bool {
        !layer.is_tconv()
    }

    /// Compiles one layer.
    pub fn compile_layer(&self, layer: &Layer) -> LayerProgram {
        let num_pvs = self.config.array().num_pvs;
        let geometry = LayerGeometry::for_layer(layer);
        let mut program = LayerProgram::new(&layer.name, num_pvs);

        if Self::uses_simd_mode(layer) {
            self.compile_simd(layer, &geometry, &mut program);
        } else {
            self.compile_mimd_simd(layer, &geometry, &mut program);
        }
        program
    }

    /// SIMD compilation: every PE runs the same repeated `mac` on distinct
    /// data; the local µop buffers are bypassed entirely.
    fn compile_simd(&self, layer: &Layer, geometry: &LayerGeometry, program: &mut LayerProgram) {
        let repeat = clamp_u16(geometry.dense_unit_macs());
        for pv in 0..program.num_pvs() as u8 {
            program
                .access_setup
                .extend(access_setup_for_pv(pv, geometry, false));
            program.register_setup.push(MimdUop::Ld {
                pv,
                dst: MicroRegister::RepeatCount,
                imm: repeat,
            });
        }
        program.push_simd(ExecUop::Repeat);
        program.push_simd(ExecUop::Mac);
        if layer.activation.is_some() {
            program.push_simd(ExecUop::Act);
        }
    }

    /// MIMD-SIMD compilation: each PV is assigned one phase group and executes
    /// that group's microprogram; the global entries carry one local-buffer
    /// index per PV.
    fn compile_mimd_simd(
        &self,
        layer: &Layer,
        geometry: &LayerGeometry,
        program: &mut LayerProgram,
    ) {
        let num_pvs = program.num_pvs();
        let groups = geometry.phase_groups();
        assert!(
            !groups.is_empty(),
            "transposed layer must have phase groups"
        );
        // PVs are assigned to phase groups round-robin, which is exactly the
        // forced adjacency of the output-row reorganization: PVs processing
        // rows with the same zero pattern sit next to each other.
        let assignment: Vec<usize> = (0..num_pvs).map(|pv| pv % groups.len()).collect();

        // Every PE streams the consequential taps of one output row, so the
        // repeat count is the per-node consequential MAC count.
        let repeat = clamp_u16(geometry.consequential_unit_macs().max(1));
        for pv in 0..assignment.len() as u8 {
            program
                .access_setup
                .extend(access_setup_for_pv(pv, geometry, true));
            program.register_setup.push(MimdUop::Ld {
                pv,
                dst: MicroRegister::RepeatCount,
                imm: repeat,
            });
        }

        // Steady state: every PV issues a repeated mac for its group, then the
        // activation if the layer has one. Groups with no consequential nodes
        // (possible only for degenerate geometries) idle via `nop`.
        let macs: Vec<ExecUop> = assignment
            .iter()
            .map(|g| {
                if groups[*g].consequential_nodes == 0 {
                    ExecUop::Nop
                } else {
                    ExecUop::Mac
                }
            })
            .collect();
        let repeats: Vec<ExecUop> = macs
            .iter()
            .map(|m| {
                if *m == ExecUop::Nop {
                    ExecUop::Nop
                } else {
                    ExecUop::Repeat
                }
            })
            .collect();
        program
            .push_mimd(&repeats)
            .expect("local uop images stay within 16 entries");
        program
            .push_mimd(&macs)
            .expect("local uop images stay within 16 entries");
        if layer.activation.is_some() {
            let acts: Vec<ExecUop> = assignment.iter().map(|_| ExecUop::Act).collect();
            program
                .push_mimd(&acts)
                .expect("local uop images stay within 16 entries");
        }
    }

    /// Encodes the compiled global sequence into 64-bit global µop words,
    /// verifying that the program is representable in the paper's format.
    pub fn encode_global_sequence(&self, program: &LayerProgram) -> Vec<GlobalUopWord> {
        program
            .global_sequence
            .iter()
            .map(|uop| {
                GlobalUopWord::encode(uop, program.num_pvs())
                    .expect("compiled programs target at most 16 PVs with 4-bit indices")
            })
            .collect()
    }
}

impl Default for GanaxCompiler {
    fn default() -> Self {
        Self::paper()
    }
}

/// Access-engine setup for one PV: configure and start the input, weight and
/// output µindex generators. For transposed convolutions the input generator
/// is strided (it skips the inserted zero columns); for conventional layers it
/// is sequential.
fn access_setup_for_pv(pv: u8, geometry: &LayerGeometry, strided: bool) -> Vec<AccessUop> {
    let input_step = if strided {
        geometry
            .width_phases
            .as_ref()
            .map(|p| p.num_phases() as u16)
            .unwrap_or(1)
    } else {
        1
    };
    let input_end = clamp_u16(geometry.input.width as u64).max(1);
    let weight_end = clamp_u16(geometry.kernel.2 as u64).max(1);
    let output_end = clamp_u16(geometry.output.width as u64).max(1);
    let repeat = clamp_u16(geometry.total_output_rows()).max(1);

    let mut uops = Vec::new();
    for (gen, step, end) in [
        (AddrGenKind::Input, input_step.max(1), input_end),
        (AddrGenKind::Weight, 1, weight_end),
        (AddrGenKind::Output, 1, output_end),
    ] {
        for (reg, imm) in [
            (AccessReg::Addr, 0u16),
            (AccessReg::Offset, 0),
            (AccessReg::Step, step),
            (AccessReg::End, end),
            (AccessReg::Repeat, repeat),
        ] {
            uops.push(AccessUop::Cfg { pv, gen, reg, imm });
        }
        uops.push(AccessUop::Start { pv, gen });
    }
    uops
}

fn clamp_u16(value: u64) -> u16 {
    value.min(u16::MAX as u64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_isa::GlobalUop;
    use ganax_models::zoo;
    use ganax_tensor::{ConvParams, Shape};

    fn compiler() -> GanaxCompiler {
        GanaxCompiler::paper()
    }

    #[test]
    fn conv_layers_compile_to_simd_programs() {
        let dcgan = zoo::dcgan();
        for layer in dcgan.discriminator.layers() {
            let program = compiler().compile_layer(layer);
            let stats = program.stats();
            assert_eq!(stats.mimd_entries(), 0, "{}", layer.name);
            assert!(stats.simd_entries >= 2);
            assert!(stats.access_uops > 0);
        }
    }

    #[test]
    fn tconv_layers_compile_to_mimd_simd_programs() {
        let dcgan = zoo::dcgan();
        for layer in dcgan.generator.layers().iter().filter(|l| l.is_tconv()) {
            let program = compiler().compile_layer(layer);
            let stats = program.stats();
            assert!(stats.mimd_entries() >= 2, "{}", layer.name);
            assert_eq!(stats.simd_entries, 0, "{}", layer.name);
            assert!(stats.max_local_entries <= 16);
        }
    }

    #[test]
    fn every_pv_gets_access_setup_and_repeat_preload() {
        let dcgan = zoo::dcgan();
        let layer = &dcgan.generator.layers()[1];
        let program = compiler().compile_layer(layer);
        let num_pvs = GanaxConfig::paper().array().num_pvs;
        // 3 generators x (5 cfg + 1 start) per PV.
        assert_eq!(program.access_setup.len(), num_pvs * 18);
        assert_eq!(program.register_setup.len(), num_pvs);
        for pv in 0..num_pvs as u8 {
            assert!(program
                .register_setup
                .iter()
                .any(|uop| matches!(uop, MimdUop::Ld { pv: p, .. } if *p == pv)));
        }
    }

    #[test]
    fn strided_input_access_for_tconv_sequential_for_conv() {
        let dcgan = zoo::dcgan();
        let tconv = &dcgan.generator.layers()[1];
        let conv = &dcgan.discriminator.layers()[0];
        let step_of = |program: &LayerProgram| {
            program
                .access_setup
                .iter()
                .find_map(|uop| match uop {
                    AccessUop::Cfg {
                        gen: AddrGenKind::Input,
                        reg: AccessReg::Step,
                        imm,
                        ..
                    } => Some(*imm),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(step_of(&compiler().compile_layer(tconv)), 2);
        assert_eq!(step_of(&compiler().compile_layer(conv)), 1);
    }

    #[test]
    fn global_sequences_are_encodable() {
        let gan = zoo::three_d_gan();
        for layer in gan
            .generator
            .layers()
            .iter()
            .chain(gan.discriminator.layers())
        {
            let program = compiler().compile_layer(layer);
            let words = compiler().encode_global_sequence(&program);
            assert_eq!(words.len(), program.global_sequence.len());
            for (word, uop) in words.iter().zip(&program.global_sequence) {
                assert_eq!(&GlobalUop::decode(*word, program.num_pvs()).unwrap(), uop);
            }
        }
    }

    #[test]
    fn activation_adds_one_more_stage() {
        let with_act = Layer::conv(
            "a",
            Shape::new_2d(8, 8, 8),
            8,
            ConvParams::transposed_2d(4, 2, 1),
            ganax_models::Activation::Relu,
        )
        .unwrap();
        let without_act = Layer::conv(
            "b",
            Shape::new_2d(8, 8, 8),
            8,
            ConvParams::transposed_2d(4, 2, 1),
            ganax_models::Activation::None,
        )
        .unwrap();
        let a = compiler().compile_layer(&with_act).stats().global_entries;
        let b = compiler()
            .compile_layer(&without_act)
            .stats()
            .global_entries;
        assert_eq!(a, b + 1);
    }

    #[test]
    fn uses_simd_mode_classification() {
        let gan = zoo::disco_gan();
        for layer in gan.generator.layers() {
            assert_eq!(GanaxCompiler::uses_simd_mode(layer), !layer.is_tconv());
        }
    }
}
