//! The cycle-level GANAX machine: executes small 2-D layers on the decoupled
//! access-execute PE array and produces actual output feature maps.
//!
//! The machine is the functional-validation half of the reproduction: it drives
//! the `ganax-sim` PEs with real strided-index-generator configurations derived
//! from the reorganized dataflow, computes the layer's outputs, and is checked
//! against the `ganax-tensor` reference implementations. Whole-GAN performance
//! numbers come from the analytic [`GanaxModel`](crate::GanaxModel); the
//! machine is what justifies that model's per-pass assumptions.
//!
//! Scope: 2-D convolution and transposed-convolution layers (the volumetric
//! 3D-GAN layers exercise the same per-axis machinery through the performance
//! model; simulating them at cycle level is prohibitively slow and adds no
//! functional coverage).

use std::fmt;

use ganax_dataflow::LayerGeometry;
use ganax_energy::EventCounts;
use ganax_isa::{AddrGenKind, ExecUop};
use ganax_models::{Layer, LayerOp};
use ganax_sim::{GeneratorConfig, PeConfig, ProcessingEngine};
use ganax_tensor::{ConvKind, ConvParams, Shape, Tensor, ZeroInsertion};

use crate::config::GanaxConfig;

/// Errors produced by the cycle-level machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The layer kind is not supported by the cycle-level machine.
    Unsupported {
        /// Description of the unsupported feature.
        detail: String,
    },
    /// The provided tensors do not match the layer description.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A PE failed to converge within the cycle budget.
    Timeout {
        /// The layer that timed out.
        layer: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Unsupported { detail } => write!(f, "unsupported layer: {detail}"),
            MachineError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MachineError::Timeout { layer } => write!(f, "layer `{layer}` did not converge"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The result of executing a layer on the cycle-level machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRun {
    /// The computed output feature map (pre-activation).
    pub output: Tensor,
    /// Cycles in which PEs performed arithmetic (sums over all PEs).
    pub busy_pe_cycles: u64,
    /// Aggregated activity counts of every PE used.
    pub counts: EventCounts,
    /// Number of (output row, filter tap, channel) work units executed.
    pub work_units: u64,
}

/// The cycle-level GANAX machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanaxMachine {
    config: GanaxConfig,
}

/// Per-output-column addressing of one consequential compute node.
struct ColumnRun {
    /// First input column of the run.
    input_start: usize,
    /// First kernel column of the run.
    kernel_start: usize,
    /// Kernel-column stride between consecutive taps.
    kernel_step: usize,
    /// Number of consequential taps.
    taps: usize,
}

impl GanaxMachine {
    /// Creates a machine for a configuration.
    pub fn new(config: GanaxConfig) -> Self {
        GanaxMachine { config }
    }

    /// Creates a machine for the paper's configuration.
    pub fn paper() -> Self {
        Self::new(GanaxConfig::paper())
    }

    /// Executes one 2-D convolution or transposed-convolution layer, returning
    /// the computed output and the activity counters.
    ///
    /// # Errors
    /// Returns [`MachineError::Unsupported`] for projections and volumetric
    /// layers, [`MachineError::ShapeMismatch`] when the tensors do not match
    /// the layer, and [`MachineError::Timeout`] if a PE fails to drain.
    pub fn execute_layer(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &Tensor,
    ) -> Result<MachineRun, MachineError> {
        let params = match &layer.op {
            LayerOp::Conv(p) | LayerOp::TConv(p) => *p,
            LayerOp::Projection => {
                return Err(MachineError::Unsupported {
                    detail: "projection layers are executed by the host, not the PE array".into(),
                })
            }
        };
        if layer.input.depth != 1 {
            return Err(MachineError::Unsupported {
                detail: "the cycle-level machine covers 2-D layers".into(),
            });
        }
        if input.shape() != layer.input {
            return Err(MachineError::ShapeMismatch {
                detail: format!("input {} != layer input {}", input.shape(), layer.input),
            });
        }
        let expected_weights = Shape::filter(
            layer.output.channels,
            layer.input.channels,
            params.kernel.0,
            params.kernel.1,
            params.kernel.2,
        );
        if weights.shape() != expected_weights {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "weights {} != expected {}",
                    weights.shape(),
                    expected_weights
                ),
            });
        }

        let geometry = LayerGeometry::for_layer(layer);
        let mut output = Tensor::zeros(layer.output);
        let mut counts = EventCounts::default();
        let mut busy = 0u64;
        let mut work_units = 0u64;

        // One PE is reused per work unit; the mapping of units to physical PEs
        // round-robins across the array, which only matters for the activity
        // counters (each unit's traffic is identical wherever it runs).
        let mut pe = ProcessingEngine::new(PeConfig::roomy());

        for co in 0..layer.output.channels {
            for oy in 0..layer.output.height {
                // Consequential vertical taps for this output row.
                let ky_taps: Vec<usize> = match &geometry.height_phases {
                    Some(phases) if layer.is_tconv() => phases.taps_at(oy),
                    _ => (0..params.kernel.1)
                        .filter(|ky| conv_input_row(oy, *ky, &params, layer.input.height).is_some())
                        .collect(),
                };
                for &ky in &ky_taps {
                    let Some(iy) = input_row_for(oy, ky, &params, layer.input.height) else {
                        continue;
                    };
                    for ci in 0..layer.input.channels {
                        work_units += 1;
                        let row: Vec<f32> = (0..layer.input.width)
                            .map(|ix| input.at(ci, 0, iy, ix))
                            .collect();
                        // The machine gathers over the zero-inserted domain, so
                        // for transposed convolutions the kernel is spatially
                        // flipped (the classical adjoint relationship — see
                        // `ganax_tensor::tconv_via_zero_insertion`).
                        let weight_row: Vec<f32> = (0..params.kernel.2)
                            .map(|kx| {
                                if layer.is_tconv() {
                                    weights.at_filter(
                                        co,
                                        ci,
                                        0,
                                        params.kernel.1 - 1 - ky,
                                        params.kernel.2 - 1 - kx,
                                    )
                                } else {
                                    weights.at_filter(co, ci, 0, ky, kx)
                                }
                            })
                            .collect();
                        let (unit_busy, unit_counts) = self.run_unit(
                            &mut pe,
                            &row,
                            &weight_row,
                            &params,
                            layer,
                            |ox, value| {
                                output.add_at(co, 0, oy, ox, value);
                            },
                        )?;
                        busy += unit_busy;
                        counts += unit_counts;
                        // Horizontal accumulation of this node's partial sums
                        // into the output row (one hop per produced element).
                        counts.inter_pe_transfers += layer.output.width as u64;
                    }
                }
            }
        }

        Ok(MachineRun {
            output,
            busy_pe_cycles: busy,
            counts,
            work_units,
        })
    }

    /// Runs one (output row, vertical tap, channel) work unit on a PE: for each
    /// output column it configures the index generators for the consequential
    /// column taps, streams a repeated `mac` and collects the partial sum.
    fn run_unit(
        &self,
        pe: &mut ProcessingEngine,
        input_row: &[f32],
        weight_row: &[f32],
        params: &ConvParams,
        layer: &Layer,
        mut emit: impl FnMut(usize, f32),
    ) -> Result<(u64, EventCounts), MachineError> {
        pe.load_input(input_row);
        pe.load_weights(weight_row);
        pe.clear_output();
        let before = pe.counts();
        let busy_before = pe.busy_cycles();

        for ox in 0..layer.output.width {
            let Some(run) = column_run(ox, params, layer.input.width) else {
                continue;
            };
            pe.configure_generator(
                AddrGenKind::Input,
                GeneratorConfig {
                    addr: run.input_start as u16,
                    offset: 0,
                    step: 1,
                    end: (run.input_start + run.taps) as u16,
                    repeat: 1,
                },
            );
            pe.configure_generator(
                AddrGenKind::Weight,
                GeneratorConfig {
                    addr: run.kernel_start as u16,
                    offset: 0,
                    step: run.kernel_step as u16,
                    end: (run.kernel_start + (run.taps - 1) * run.kernel_step + 1) as u16,
                    repeat: 1,
                },
            );
            pe.configure_generator(
                AddrGenKind::Output,
                GeneratorConfig {
                    addr: (ox % pe.config().output_words) as u16,
                    offset: 0,
                    step: 1,
                    end: (ox % pe.config().output_words + 1) as u16,
                    repeat: 1,
                },
            );
            pe.start_all();
            pe.set_repeat(run.taps as u16);
            pe.push_uop(ExecUop::Repeat);
            pe.push_uop(ExecUop::Mac);
            let cycles = pe.run_until_idle(10_000);
            if cycles >= 10_000 {
                return Err(MachineError::Timeout {
                    layer: layer.name.clone(),
                });
            }
            emit(ox, pe.read_output((ox % pe.config().output_words) as u16));
        }

        let after = pe.counts();
        let busy = pe.busy_cycles() - busy_before;
        let delta = EventCounts {
            alu_ops: after.alu_ops - before.alu_ops,
            gated_ops: 0,
            register_file_reads: after.register_file_reads - before.register_file_reads,
            register_file_writes: after.register_file_writes - before.register_file_writes,
            inter_pe_transfers: 0,
            global_buffer_reads: 0,
            global_buffer_writes: 0,
            dram_reads: 0,
            dram_writes: 0,
            local_uop_fetches: after.local_uop_fetches - before.local_uop_fetches,
            global_uop_fetches: 0,
        };
        Ok((busy, delta))
    }
}

impl Default for GanaxMachine {
    fn default() -> Self {
        Self::paper()
    }
}

/// The original input row a (output row, vertical kernel tap) pair reads, or
/// `None` if the tap falls on padding / an inserted zero row.
fn input_row_for(oy: usize, ky: usize, params: &ConvParams, input_height: usize) -> Option<usize> {
    match params.kind {
        ConvKind::Transposed => {
            let ins = ZeroInsertion::from_params(params);
            ins.source(1, oy + ky, input_height)
        }
        ConvKind::Conventional => conv_input_row(oy, ky, params, input_height),
    }
}

/// Input row of a conventional convolution tap, or `None` when it lands in the
/// padding.
fn conv_input_row(oy: usize, ky: usize, params: &ConvParams, input_height: usize) -> Option<usize> {
    let pos = (oy * params.stride.1 + ky) as isize - params.padding.1 as isize;
    if pos >= 0 && (pos as usize) < input_height {
        Some(pos as usize)
    } else {
        None
    }
}

/// The consequential column taps of one output column: which input columns and
/// kernel columns participate, and with which kernel stride.
fn column_run(ox: usize, params: &ConvParams, input_width: usize) -> Option<ColumnRun> {
    match params.kind {
        ConvKind::Transposed => {
            let ins = ZeroInsertion::from_params(params);
            let step = params.stride.2;
            let mut first: Option<(usize, usize)> = None;
            let mut taps = 0usize;
            for kx in 0..params.kernel.2 {
                if let Some(ix) = ins.source(2, ox + kx, input_width) {
                    if first.is_none() {
                        first = Some((ix, kx));
                    }
                    taps += 1;
                }
            }
            first.map(|(input_start, kernel_start)| ColumnRun {
                input_start,
                kernel_start,
                kernel_step: step,
                taps,
            })
        }
        ConvKind::Conventional => {
            let mut first: Option<(usize, usize)> = None;
            let mut taps = 0usize;
            for kx in 0..params.kernel.2 {
                let pos = (ox * params.stride.2 + kx) as isize - params.padding.2 as isize;
                if pos >= 0 && (pos as usize) < input_width {
                    if first.is_none() {
                        first = Some((pos as usize, kx));
                    }
                    taps += 1;
                }
            }
            first.map(|(input_start, kernel_start)| ColumnRun {
                input_start,
                kernel_start,
                kernel_step: 1,
                taps,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::Activation;
    use ganax_tensor::{conv, tconv};

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 / 1000.0) - 1.0
        };
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = next();
        }
        t
    }

    fn check_layer(layer: Layer, seed: u64) {
        let params = layer.op.conv_params().unwrap();
        let input = random_tensor(layer.input, seed);
        let weights = random_tensor(
            Shape::filter(
                layer.output.channels,
                layer.input.channels,
                params.kernel.0,
                params.kernel.1,
                params.kernel.2,
            ),
            seed + 1,
        );
        let reference = if layer.is_tconv() {
            tconv(&input, &weights, &params).unwrap()
        } else {
            conv(&input, &weights, &params).unwrap()
        };
        let run = GanaxMachine::paper()
            .execute_layer(&layer, &input, &weights)
            .unwrap();
        assert!(
            run.output.approx_eq(&reference, 1e-3),
            "machine output diverges from reference for {} (max diff {})",
            layer.name,
            run.output.max_abs_diff(&reference).unwrap()
        );
        assert!(run.busy_pe_cycles > 0);
        assert_eq!(run.counts.alu_ops, run.busy_pe_cycles);
    }

    #[test]
    fn matches_reference_on_paper_example_geometry() {
        let layer = Layer::conv(
            "paper-example",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 11);
    }

    #[test]
    fn matches_reference_on_multichannel_tconv() {
        let layer = Layer::conv(
            "tconv-multi",
            Shape::new_2d(3, 5, 5),
            2,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 23);
    }

    #[test]
    fn matches_reference_on_stride1_tconv() {
        let layer = Layer::conv(
            "tconv-refine",
            Shape::new_2d(2, 6, 6),
            2,
            ConvParams::transposed_2d(3, 1, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 37);
    }

    #[test]
    fn matches_reference_on_conventional_convolution() {
        let layer = Layer::conv(
            "conv",
            Shape::new_2d(2, 8, 8),
            3,
            ConvParams::conv_2d(3, 2, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 41);
    }

    #[test]
    fn machine_performs_only_consequential_macs() {
        let layer = Layer::conv(
            "tconv-count",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        let params = layer.op.conv_params().unwrap();
        let input = random_tensor(layer.input, 5);
        let weights = random_tensor(Shape::filter(1, 1, 1, 5, 5), 6);
        let run = GanaxMachine::paper()
            .execute_layer(&layer, &input, &weights)
            .unwrap();
        let consequential = params.consequential_macs(layer.input, 1).unwrap();
        assert_eq!(run.counts.alu_ops, consequential);
        assert!(run.counts.alu_ops < layer.dense_macs());
    }

    #[test]
    fn rejects_projection_and_volumetric_layers() {
        let machine = GanaxMachine::paper();
        let projection = Layer::projection(
            "proj",
            Shape::new_2d(10, 1, 1),
            Shape::new_2d(4, 2, 2),
            Activation::None,
        );
        let input = Tensor::zeros(projection.input);
        let weights = Tensor::zeros(Shape::filter(4, 10, 1, 1, 1));
        assert!(matches!(
            machine.execute_layer(&projection, &input, &weights),
            Err(MachineError::Unsupported { .. })
        ));

        let volumetric = Layer::conv(
            "tconv3d",
            Shape::new(2, 2, 2, 2),
            1,
            ConvParams::transposed_3d(4, 2, 1),
            Activation::None,
        )
        .unwrap();
        let input = Tensor::zeros(volumetric.input);
        let weights = Tensor::zeros(Shape::filter(1, 2, 4, 4, 4));
        assert!(matches!(
            machine.execute_layer(&volumetric, &input, &weights),
            Err(MachineError::Unsupported { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_tensors() {
        let layer = Layer::conv(
            "tconv",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        let machine = GanaxMachine::paper();
        let bad_input = Tensor::zeros(Shape::new_2d(1, 5, 5));
        let weights = Tensor::zeros(Shape::filter(1, 1, 1, 5, 5));
        assert!(matches!(
            machine.execute_layer(&layer, &bad_input, &weights),
            Err(MachineError::ShapeMismatch { .. })
        ));
        let input = Tensor::zeros(Shape::new_2d(1, 4, 4));
        let bad_weights = Tensor::zeros(Shape::filter(1, 1, 1, 3, 3));
        assert!(matches!(
            machine.execute_layer(&layer, &input, &bad_weights),
            Err(MachineError::ShapeMismatch { .. })
        ));
    }
}
