//! The cycle-level GANAX machine: executes 2-D layers on the decoupled
//! access-execute PE array and produces actual output feature maps.
//!
//! The machine is the functional-validation half of the reproduction: it drives
//! the `ganax-sim` PEs with real strided-index-generator configurations derived
//! from the reorganized dataflow, computes the layer's outputs, and is checked
//! against the `ganax-tensor` reference implementations. Whole-GAN performance
//! numbers come from the analytic [`GanaxModel`](crate::GanaxModel); the
//! machine is what justifies that model's per-pass assumptions.
//!
//! # Fast simulation path
//!
//! [`GanaxMachine::execute_layer`] runs a layer through three optimizations
//! that keep full-size Table I generator layers simulatable in seconds while
//! staying cycle- and counter-identical to the single-step reference:
//!
//! * **a per-layer plan** hoists everything that the seed implementation
//!   recomputed per work unit — consequential vertical taps per output row,
//!   consequential column runs per output column, and the (flipped, for
//!   transposed convolutions) weight rows — out of the inner loop, making the
//!   hot path allocation-free;
//! * **burst-stepped PEs** ([`ProcessingEngine::run_until_idle_burst`]) retire
//!   each provably stall-free repeated-`mac` run in one call instead of one
//!   cycle at a time;
//! * **a multi-threaded PE-array scheduler**
//!   ([`GanaxMachine::execute_layer_threaded`]) shards `(output channel,
//!   output row)` work units across `std::thread`-scoped worker PEs. Every
//!   work unit writes a disjoint output row and workers are assigned units by
//!   a static round-robin over the plan's phase-major row order (the Figure 5
//!   output-row reorganization), so the load balances across phases and
//!   outputs and counters are bit-identical for every thread count.
//!
//! [`GanaxMachine::execute_layer_reference`] preserves the seed
//! one-cycle-at-a-time serial path; property tests assert the fast paths match
//! it bit for bit.
//!
//! Scope: 2-D convolution and transposed-convolution layers (the volumetric
//! 3D-GAN layers exercise the same per-axis machinery through the performance
//! model; the fast path makes 2-D layers cheap, while volumetric layers add no
//! functional coverage).

use std::fmt;

use ganax_dataflow::{LayerGeometry, OutputRowGroups};
use ganax_energy::EventCounts;
use ganax_isa::{AddrGenKind, ExecUop};
use ganax_models::{Layer, LayerOp};
use ganax_sim::{
    EmitFault, FaultInjector, GeneratorConfig, PeConfig, ProcessingEngine, WorkerFault,
    STALL_MILLIS,
};
use ganax_tensor::{ConvKind, ConvParams, Shape, Tensor, ZeroInsertion};

use crate::config::{ConfigError, GanaxConfig, IntegrityMode};

/// Errors produced by the cycle-level machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The machine's [`GanaxConfig`] failed validation.
    Config {
        /// The underlying typed validation error.
        error: ConfigError,
    },
    /// The layer kind is not supported by the cycle-level machine.
    Unsupported {
        /// Description of the unsupported feature.
        detail: String,
    },
    /// The provided tensors do not match the layer description.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A PE failed to converge within the cycle budget.
    Timeout {
        /// The layer that timed out.
        layer: String,
    },
    /// The dispatcher overflowed a PE's µop FIFO.
    UopOverflow {
        /// The layer being dispatched.
        layer: String,
    },
    /// A worker PE panicked while executing a shard (an injected fault or a
    /// genuine bug); the shard's partial results were discarded.
    WorkerPanic {
        /// The layer whose shard was being executed.
        layer: String,
    },
    /// A layer produced a NaN or infinite output element — silent corruption
    /// (e.g. an injected operand bit flip) made detectable without goldens.
    NonFiniteOutput {
        /// The layer whose output is corrupt.
        layer: String,
        /// Flat index of the first non-finite element in the layer output.
        index: usize,
    },
    /// The engine's worker pool is unavailable (shut down or fully dead), so
    /// the shard could not be executed.
    PoolUnavailable {
        /// What the dispatcher observed.
        detail: String,
    },
    /// The ABFT checksum invariant `checksum(W)·checksum(x) ≈ checksum(y)`
    /// failed for one or more output-row slices and (under
    /// [`IntegrityMode::VerifyAndHeal`](crate::IntegrityMode::VerifyAndHeal))
    /// surgical re-execution could not repair them — the corruption is
    /// persistent, so a retry of the same request cannot succeed.
    IntegrityViolation {
        /// The layer whose checksums failed.
        layer: String,
        /// The offending output rows (sorted, deduplicated).
        rows: Vec<usize>,
    },
}

impl MachineError {
    /// Whether a retry of the same request can plausibly succeed: worker
    /// panics, non-finite outputs from transient corruption, PE timeouts and
    /// pool unavailability are transient (the serving layer retries them);
    /// configuration, support and shape errors are permanent. An
    /// [`MachineError::IntegrityViolation`] is also permanent: it only
    /// surfaces after verification already re-executed the offending shards
    /// in fresh fault epochs (or fail-fast verification was requested), so
    /// the corruption is persistent and the serve retry loop must not spin
    /// on it before the circuit breaker opens.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MachineError::WorkerPanic { .. }
                | MachineError::NonFiniteOutput { .. }
                | MachineError::Timeout { .. }
                | MachineError::PoolUnavailable { .. }
        )
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config { error } => write!(f, "invalid configuration: {error}"),
            MachineError::Unsupported { detail } => write!(f, "unsupported layer: {detail}"),
            MachineError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MachineError::Timeout { layer } => write!(f, "layer `{layer}` did not converge"),
            MachineError::UopOverflow { layer } => {
                write!(f, "layer `{layer}` overflowed a PE µop FIFO")
            }
            MachineError::WorkerPanic { layer } => {
                write!(f, "a worker PE panicked while executing layer `{layer}`")
            }
            MachineError::NonFiniteOutput { layer, index } => write!(
                f,
                "layer `{layer}` produced a non-finite output at element {index}"
            ),
            MachineError::PoolUnavailable { detail } => {
                write!(f, "worker pool unavailable: {detail}")
            }
            MachineError::IntegrityViolation { layer, rows } => write!(
                f,
                "layer `{layer}` failed checksum verification on {} output row(s) {rows:?}",
                rows.len()
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// The result of executing a layer on the cycle-level machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRun {
    /// The computed output feature map (pre-activation).
    pub output: Tensor,
    /// Cycles in which PEs performed arithmetic (sums over all PEs).
    pub busy_pe_cycles: u64,
    /// Aggregated activity counts of every PE used.
    pub counts: EventCounts,
    /// Number of (output row, filter tap, channel) work units executed.
    pub work_units: u64,
}

/// The cycle-level GANAX machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanaxMachine {
    config: GanaxConfig,
}

/// Per-output-column addressing of one consequential compute node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColumnRun {
    /// First input column of the run.
    pub(crate) input_start: usize,
    /// First kernel column of the run.
    pub(crate) kernel_start: usize,
    /// Kernel-column stride between consecutive taps.
    pub(crate) kernel_step: usize,
    /// Number of consequential taps.
    pub(crate) taps: usize,
}

/// A run of same-phase consequential output columns sharing a tap count,
/// dispatched to a PE as one program: gathered operand streams, linear
/// operand index generators, a strided output generator, and one
/// `repeat`+`mac` µop pair per column.
///
/// Phases are the paper's Figure 5 structure: transposed-convolution columns
/// with the same `ox mod stride` residue read the same number of consequential
/// taps, so grouping by residue yields long equal-repeat runs where grouping
/// consecutive columns would alternate tap counts every column.
#[derive(Debug, Clone)]
pub(crate) struct ColumnChunk {
    /// First output column of the chunk.
    pub(crate) ox_start: usize,
    /// Distance between consecutive chunk columns (the phase stride).
    pub(crate) col_step: usize,
    /// Columns in the chunk.
    pub(crate) cols: usize,
    /// Consequential taps of every column in the chunk.
    pub(crate) taps: usize,
    /// Per stream element, the weight-row offset it gathers (`cols × taps`
    /// entries; offsets are bounded by the kernel width).
    pub(crate) weight_offsets: Vec<u16>,
}

/// Everything about a layer that the seed implementation recomputed per work
/// unit, hoisted out of the hot loop: consequential vertical taps per output
/// row, consequential column runs per output column (grouped into
/// equal-tap-count chunks), and pre-gathered weight rows (spatially flipped
/// for transposed convolutions). Shared read-only by every worker PE.
pub(crate) struct LayerPlan {
    /// Per output row: the consequential `(ky, iy)` vertical taps.
    pub(crate) row_taps: Vec<Vec<(usize, usize)>>,
    /// Output rows in dispatch order: phase-major (from the Figure 5
    /// output-row reorganization) for transposed convolutions, natural order
    /// otherwise. Sharding round-robins over this order so every worker gets
    /// the same mix of shallow- and deep-phase rows.
    pub(crate) row_order: Vec<usize>,
    /// Per output column: the consequential column run, if any.
    pub(crate) column_runs: Vec<Option<ColumnRun>>,
    /// Consequential columns grouped into dispatchable chunks.
    pub(crate) chunks: Vec<ColumnChunk>,
    /// Every chunk's gathered weight streams, pre-staged at plan time: for
    /// chunk `x`, the stream of `(ky, ci, co)` starts at
    /// `weight_stream_base[x] + ((ky * input_channels + ci) * output_channels
    /// + co) * stream` and runs `stream = taps × cols` words. Weight gathering
    /// is row-independent, so the seed path's per-(row × shard) re-gather —
    /// the dominant duplicated work under threading — collapses to one
    /// `memcpy` per dispatch. `co` is innermost so a whole channel group's
    /// streams are one contiguous slice.
    pub(crate) weight_streams: Vec<f32>,
    /// Per chunk: base offset of its streams in `weight_streams`.
    pub(crate) weight_stream_base: Vec<usize>,
    /// ABFT weight checksums, precomputed at plan time: for chunk `x`, the
    /// checksum stream of `(ky, ci)` starts at `checksum_stream_base[x] +
    /// (ky * input_channels + ci) * stream` and holds, per stream element,
    /// the f64 sum of that element's weight over every output channel
    /// (`co` ascending — the Huang–Abraham column sum). Dotting a clean
    /// gathered input stream with this predicts the sum of the work unit's
    /// contributions across all output channels.
    pub(crate) checksum_streams: Vec<f64>,
    /// Companion magnitude streams: the same layout, holding the sum of
    /// *absolute* weights over the output channels. Dotted with `|x|` this
    /// upper-bounds the total product magnitude feeding a row — the scale
    /// the verification tolerance is derived from (a cancellation-proof
    /// bound, unlike `|checksum|`).
    pub(crate) abs_checksum_streams: Vec<f64>,
    /// Per chunk: base offset of its streams in `checksum_streams` /
    /// `abs_checksum_streams`.
    pub(crate) checksum_stream_base: Vec<usize>,
    /// Kernel height (rows per `(co, ci)` filter plane).
    pub(crate) kernel_h: usize,
    /// Input channels (stride of the `co` index).
    pub(crate) input_channels: usize,
    /// Output channels (stride of the `ci` index in the stream layout).
    pub(crate) output_channels: usize,
}

impl LayerPlan {
    /// Groups same-phase consequential columns with equal tap counts into
    /// chunks sized so one chunk's gathered operand streams fit the PE
    /// scratchpads and its µop pairs fit the µop FIFO. Walking each
    /// `ox mod stride` residue class separately keeps tap counts constant
    /// along a chunk (the phase structure of the reorganized dataflow), so a
    /// whole output row dispatches as a handful of chunks.
    fn build_chunks(
        column_runs: &[Option<ColumnRun>],
        params: &ConvParams,
        pe: &PeConfig,
    ) -> Vec<ColumnChunk> {
        let max_pairs = pe.uop_fifo_entries / 2;
        let col_step = match params.kind {
            ConvKind::Transposed => params.stride.2,
            ConvKind::Conventional => 1,
        };
        let mut chunks = Vec::new();
        for residue in 0..col_step {
            let mut ox = residue;
            while ox < column_runs.len() {
                let Some(run) = &column_runs[ox] else {
                    ox += col_step;
                    continue;
                };
                let taps = run.taps;
                let max_cols = max_pairs
                    .min(pe.input_words / taps)
                    .min(pe.weight_words / taps)
                    .max(1);
                let mut cols = 1;
                while cols < max_cols
                    && column_runs
                        .get(ox + cols * col_step)
                        .and_then(|r| r.as_ref())
                        .is_some_and(|r| r.taps == taps)
                {
                    cols += 1;
                }
                let weight_offsets = (0..cols)
                    .flat_map(|c| {
                        let run = column_runs[ox + c * col_step]
                            .as_ref()
                            .expect("chunk covers consequential columns");
                        (0..taps).map(move |j| (run.kernel_start + j * run.kernel_step) as u16)
                    })
                    .collect();
                chunks.push(ColumnChunk {
                    ox_start: ox,
                    col_step,
                    cols,
                    taps,
                    weight_offsets,
                });
                ox += cols * col_step;
            }
        }
        chunks
    }

    fn build(layer: &Layer, params: &ConvParams, weights: &Tensor, pe: &PeConfig) -> Self {
        let geometry = LayerGeometry::for_layer(layer);
        let row_taps = (0..layer.output.height)
            .map(|oy| {
                let ky_taps: Vec<usize> = match &geometry.height_phases {
                    Some(phases) if layer.is_tconv() => phases.taps_at(oy),
                    _ => (0..params.kernel.1)
                        .filter(|ky| conv_input_row(oy, *ky, params, layer.input.height).is_some())
                        .collect(),
                };
                ky_taps
                    .into_iter()
                    .filter_map(|ky| {
                        input_row_for(oy, ky, params, layer.input.height).map(|iy| (ky, iy))
                    })
                    .collect()
            })
            .collect();
        let row_order: Vec<usize> = match &geometry.height_phases {
            Some(phases) if layer.is_tconv() => {
                OutputRowGroups::new(phases, layer.output.height).phase_major_rows()
            }
            _ => (0..layer.output.height).collect(),
        };
        let column_runs: Vec<Option<ColumnRun>> = (0..layer.output.width)
            .map(|ox| column_run(ox, params, layer.input.width))
            .collect();
        let chunks = Self::build_chunks(&column_runs, params, pe);

        let (kernel_h, kernel_w) = (params.kernel.1, params.kernel.2);
        let (co_count, ci_count) = (layer.output.channels, layer.input.channels);
        let mut weight_rows = vec![0.0f32; co_count * ci_count * kernel_h * kernel_w];
        let mut idx = 0;
        for co in 0..co_count {
            for ci in 0..ci_count {
                for ky in 0..kernel_h {
                    for kx in 0..kernel_w {
                        // The machine gathers over the zero-inserted domain,
                        // so for transposed convolutions the kernel is
                        // spatially flipped (the classical adjoint
                        // relationship — see
                        // `ganax_tensor::tconv_via_zero_insertion`).
                        weight_rows[idx] = if layer.is_tconv() {
                            weights.at_filter(co, ci, 0, kernel_h - 1 - ky, kernel_w - 1 - kx)
                        } else {
                            weights.at_filter(co, ci, 0, ky, kx)
                        };
                        idx += 1;
                    }
                }
            }
        }
        // Stage every chunk's gathered weight streams once at plan time
        // (they depend only on `(chunk, ky, ci, co)`, never on the output
        // row), so the hot path loads weights with a straight copy instead
        // of re-gathering the same stream for every row on every worker.
        let total_stream: usize = chunks.iter().map(|c| c.taps * c.cols).sum();
        let mut weight_streams = Vec::with_capacity(total_stream * kernel_h * ci_count * co_count);
        let mut weight_stream_base = Vec::with_capacity(chunks.len());
        // The ABFT column-sum checksums ride along: per `(chunk, ky, ci)`
        // stream element, the (f64) sum of the weight over every output
        // channel, plus the absolute-value companion that scales the
        // verification tolerance. Both are cheap (one extra pass over data
        // already being staged) and built unconditionally, so a plan is
        // valid under every `IntegrityMode`.
        let mut checksum_streams = Vec::with_capacity(total_stream * kernel_h * ci_count);
        let mut abs_checksum_streams = Vec::with_capacity(total_stream * kernel_h * ci_count);
        let mut checksum_stream_base = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            weight_stream_base.push(weight_streams.len());
            checksum_stream_base.push(checksum_streams.len());
            for ky in 0..kernel_h {
                for ci in 0..ci_count {
                    for co in 0..co_count {
                        let row = (co * ci_count + ci) * kernel_h + ky;
                        let weight_row = &weight_rows[row * kernel_w..(row + 1) * kernel_w];
                        weight_streams.extend(
                            chunk
                                .weight_offsets
                                .iter()
                                .map(|&offset| weight_row[offset as usize]),
                        );
                    }
                    let stream = chunk.taps * chunk.cols;
                    let group = &weight_streams[weight_streams.len() - co_count * stream..];
                    for element in 0..stream {
                        let mut sum = 0.0f64;
                        let mut abs = 0.0f64;
                        for co in 0..co_count {
                            let w = f64::from(group[co * stream + element]);
                            sum += w;
                            abs += w.abs();
                        }
                        checksum_streams.push(sum);
                        abs_checksum_streams.push(abs);
                    }
                }
            }
        }

        LayerPlan {
            row_taps,
            row_order,
            column_runs,
            chunks,
            weight_streams,
            weight_stream_base,
            checksum_streams,
            abs_checksum_streams,
            checksum_stream_base,
            kernel_h,
            input_channels: ci_count,
            output_channels: co_count,
        }
    }
}

/// The ABFT checksum state of one output row, accumulated by the worker that
/// executed it and verified at retire time. Every field is accumulated in
/// `f64` in a fixed order that depends only on the layer plan — `ky`
/// ascending, then `ci`, then chunk, then stream element for the predictions;
/// channel-major row order for the observation — so the triple (and hence
/// the verdict) is bit-identical on the scoped per-layer path, the engine's
/// persistent pool, and every pool size.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct RowChecksum {
    /// `checksum(W) · checksum(x)`: the f64 dot of every *clean* gathered
    /// input stream with the plan's column-sum weight checksums.
    pub(crate) predicted: f64,
    /// `|W|-checksum · |x|`: an upper bound on the total product magnitude
    /// feeding the row — the scale of legitimate f32 rounding noise.
    pub(crate) magnitude: f64,
    /// `checksum(y)`: the f64 sum of the row's produced f32 outputs over
    /// every output channel and column.
    pub(crate) observed: f64,
}

/// How many times `VerifyAndHeal` re-executes a layer's flagged rows (each
/// round in a fresh fault epoch) before a still-failing checksum surfaces as
/// [`MachineError::IntegrityViolation`]. Two rounds separate transient
/// corruption (healed by round one) from persistent faults (which reproduce
/// identically every epoch) without spinning.
pub(crate) const MAX_HEAL_ROUNDS: u32 = 2;

/// Safety factor of the verification tolerance: how many times the expected
/// rounding-residual scale (`√chain · ε · magnitude` — the random-walk
/// growth of f32 accumulation error over random operands) a checksum
/// residual may reach before it is called a violation. Tuned empirically:
/// clean full-size and reduced DCGAN/ArtGAN/MAGAN generators on continuous
/// deterministic operands peak at 1.6e-2 of the unit scale (long chains stay
/// under 1.2e-3), so 2.0 leaves ≥ 125× headroom against false positives — a
/// false positive would surface as a *persistent* violation on clean data —
/// while staying hundreds of times tighter than a worst-case-linear bound
/// (`chain · ε`), which would let most seeded bit flips escape.
const INTEGRITY_SAFETY: f64 = 2.0;

/// The deterministic, geometry-scaled tolerance a row's checksum residual is
/// compared against: proportional to the square root of the f32 accumulation
/// chain feeding the row's outputs and to the accumulated product magnitude.
/// A pure function of the plan and the (bit-identical) magnitude checksum,
/// so every execution path reaches the same verdict.
pub(crate) fn row_tolerance(plan: &LayerPlan, oy: usize, magnitude: f64) -> f64 {
    let max_taps = plan.chunks.iter().map(|c| c.taps).max().unwrap_or(0);
    let chain = plan.row_taps[oy].len() * plan.input_channels * max_taps + plan.output_channels;
    INTEGRITY_SAFETY * f64::from(f32::EPSILON) * (chain as f64).sqrt() * magnitude + 1e-30
}

/// Whether one row's checksum triple satisfies the ABFT invariant. A NaN
/// residual (poisoned output) fails the comparison and is flagged.
pub(crate) fn row_checksum_ok(plan: &LayerPlan, oy: usize, check: &RowChecksum) -> bool {
    let residual = (check.observed - check.predicted).abs();
    residual <= row_tolerance(plan, oy, check.magnitude)
}

/// Folds one *clean* (pre-corruption) gathered input stream into a row's
/// checksum accumulators: the predicted output checksum gains
/// `Σ checksum(W)[el] · x[el]`, the magnitude bound gains
/// `Σ |W|-checksum[el] · |x[el]|`. Must be called between gathering and
/// fault corruption — corruption applies to the stream the PEs actually
/// consume, so checksumming afterwards would make the prediction track the
/// corruption instead of detecting it.
pub(crate) fn accumulate_input_checksum(
    plan: &LayerPlan,
    chunk_idx: usize,
    stream: usize,
    ky: usize,
    ci: usize,
    clean: &[f32],
    check: &mut RowChecksum,
) {
    let base = plan.checksum_stream_base[chunk_idx] + (ky * plan.input_channels + ci) * stream;
    let csum = &plan.checksum_streams[base..base + stream];
    let abs = &plan.abs_checksum_streams[base..base + stream];
    for (element, &x) in clean.iter().enumerate() {
        let x = f64::from(x);
        check.predicted += csum[element] * x;
        check.magnitude += abs[element] * x.abs();
    }
}

/// A validated layer together with its hoisted execution plan and the PE
/// sizing the plan was built for — the staged operand state the network
/// executor double-buffers across layers.
pub(crate) struct PlannedLayer {
    /// The PE sizing that bounds the plan's chunks and streams.
    pub(crate) pe_config: PeConfig,
    /// The hoisted per-layer plan.
    pub(crate) plan: LayerPlan,
}

/// The fault coordinates one shard executes under: the injector realizing
/// the machine config's schedule plus the network-level layer index. `Copy`
/// (it carries a shared reference) so it moves freely into worker closures.
/// Shared by the per-layer shard runner and the engine's resident-PE worker,
/// which must agree on fault sites exactly as they agree on dispatch shapes.
#[derive(Clone, Copy)]
pub(crate) struct ShardFaults<'a> {
    /// The injector deciding every fault site.
    pub(crate) injector: &'a FaultInjector,
    /// The network-level layer index (the `layer` fault coordinate).
    pub(crate) layer_index: usize,
}

impl ShardFaults<'_> {
    /// Applies scheduled input-operand corruption to one gathered stream.
    /// `ordinal` is the chunk's base dispatch ordinal (see
    /// [`dispatch_ordinal_base`]); the stream is shared by every channel
    /// group of the chunk, so the site excludes the channel coordinate.
    pub(crate) fn corrupt_input_stream(&self, row: usize, ordinal: u64, buf: &mut [f32]) {
        if !self.injector.is_enabled() {
            return;
        }
        for (element, value) in buf.iter_mut().enumerate() {
            *value = self
                .injector
                .corrupt_input(self.layer_index, row, ordinal, element, *value);
        }
    }

    /// Applies scheduled weight corruption to one staged weight block.
    /// Weight sites carry no row coordinate — the same `(ky, ci, chunk,
    /// group)` stream serves many rows — so every load corrupts identically.
    fn corrupt_weight_block(&self, ordinal: u64, buf: &mut [f32]) {
        if !self.injector.is_enabled() {
            return;
        }
        for (element, value) in buf.iter_mut().enumerate() {
            *value = self
                .injector
                .corrupt_weight(self.layer_index, ordinal, element, *value);
        }
    }

    /// Decides whether the worker processing output row `row` is disturbed.
    /// On the scoped per-layer path panics surface as typed
    /// [`MachineError::WorkerPanic`] returns; the engine's persistent workers
    /// convert the same decision into a real panic so supervision is
    /// exercised.
    pub(crate) fn worker_fault(&self, row: usize) -> Option<WorkerFault> {
        self.injector.worker_fault(self.layer_index, row)
    }

    /// Decides whether the emitted contribution of output channel `lane` is
    /// disturbed for the work unit at `ordinal`.
    pub(crate) fn emit_fault(&self, row: usize, ordinal: u64, lane: usize) -> Option<EmitFault> {
        self.injector
            .emit_fault(self.layer_index, row, ordinal, lane)
    }
}

/// The shard owning the output row at phase-major position `pos`, shared by
/// the per-layer scoped path and the engine's persistent pool so their
/// per-shard busy splits agree.
///
/// Rows are dealt in contiguous phase-major *blocks* of roughly
/// `height / (4 × shards)` rows, striped round-robin over the shards: each
/// worker still samples every region of the phase-major order (so the
/// shallow/deep phase mix stays balanced), but hands off work in wide slices
/// instead of row-by-row interleaving. Small heights degrade to the old
/// per-row round-robin (`block == 1`).
///
/// Row-to-shard assignment cannot affect results: each row's computation,
/// fault sites ([`dispatch_ordinal_base`] and the row coordinate) and counter
/// contributions are functions of the row alone, and the reduction sums
/// disjoint per-row terms in a fixed order.
pub(crate) fn shard_for_position(pos: usize, height: usize, shards: usize) -> usize {
    let block = height.div_ceil(shards * 4).max(1);
    (pos / block) % shards
}

/// The base dispatch ordinal of one `(ky, ci, chunk)` work unit — a pure
/// function of the layer plan, identical on every execution path and at
/// every thread count (the property fault determinism rests on). Channel
/// groups within the chunk add their starting channel `co0`.
pub(crate) fn dispatch_ordinal_base(
    plan: &LayerPlan,
    layer: &Layer,
    ky: usize,
    ci: usize,
    chunk_idx: usize,
) -> u64 {
    let ci_count = layer.input.channels as u64;
    let co_count = layer.output.channels as u64;
    ((ky as u64 * ci_count + ci as u64) * plan.chunks.len() as u64 + chunk_idx as u64) * co_count
}

/// Cycle budget of one per-column `mac` run: a stall-free run retires in
/// `taps` (× the single generator repetition) cycles plus one dispatch cycle,
/// so anything beyond a small fixed slack means the PE wedged. Deriving the
/// budget from the work keeps huge layers from spuriously timing out and
/// makes genuinely wedged small runs fail fast.
fn column_cycle_budget(taps: usize) -> u64 {
    2 * taps as u64 + 16
}

/// Cycle budget of one chunk dispatch: the per-column budgets of every column
/// in the chunk.
fn chunk_cycle_budget(chunk: &ColumnChunk) -> u64 {
    column_cycle_budget(chunk.taps) * chunk.cols as u64
}

impl GanaxMachine {
    /// Creates a machine for a configuration.
    pub fn new(config: GanaxConfig) -> Self {
        GanaxMachine { config }
    }

    /// Creates a machine for the paper's configuration.
    pub fn paper() -> Self {
        Self::new(GanaxConfig::paper())
    }

    /// The configuration this machine executes under.
    pub fn config(&self) -> &GanaxConfig {
        &self.config
    }

    /// Overrides the ABFT computation-integrity policy in place, leaving the
    /// rest of the configuration (and everything derived from it except the
    /// fingerprint) untouched. Used by the serving layer to apply a
    /// [`ServeConfig`](crate::serve::ServeConfig) integrity override before
    /// any artifact is compiled.
    pub(crate) fn set_integrity(&mut self, integrity: IntegrityMode) {
        self.config.integrity = integrity;
    }

    /// Executes one 2-D convolution or transposed-convolution layer, returning
    /// the computed output and the activity counters.
    ///
    /// Uses the fast path (per-layer plan + burst-stepped PEs) on a worker
    /// count chosen from [`std::thread::available_parallelism`]; results are
    /// bit-identical to [`GanaxMachine::execute_layer_reference`] and to any
    /// other thread count.
    ///
    /// # Errors
    /// Returns [`MachineError::Unsupported`] for projections and volumetric
    /// layers, [`MachineError::ShapeMismatch`] when the tensors do not match
    /// the layer, and [`MachineError::Timeout`] if a PE fails to drain.
    pub fn execute_layer(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &Tensor,
    ) -> Result<MachineRun, MachineError> {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Shards are whole output rows (`oy` slices); threads only pay off
        // when each worker gets a meaningful number of them.
        let threads = available.min(layer.output.height / 4).max(1);
        self.execute_layer_threaded(layer, input, weights, threads)
    }

    /// Executes one layer on `threads` `std::thread`-scoped worker PEs.
    ///
    /// Work units are sharded by whole output rows: worker `w` owns every row
    /// at a position congruent to `w` modulo `threads` in the plan's
    /// phase-major row order (all output channels of that row). Each work
    /// unit writes a disjoint output row and the per-worker `u64` counters
    /// are order-independent sums, so the output feature map, cycle counts
    /// and [`EventCounts`] are bit-identical for every `threads` value
    /// (including 1, the serial fast path).
    ///
    /// # Errors
    /// As [`GanaxMachine::execute_layer`].
    pub fn execute_layer_threaded(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &Tensor,
        threads: usize,
    ) -> Result<MachineRun, MachineError> {
        let planned = self.plan_layer(layer, weights)?;
        let (run, _shard_busy) = self.execute_planned(layer, input, &planned, threads, 0)?;
        Ok(run)
    }

    /// Validates a layer and builds everything the hot path needs to execute
    /// it: the hoisted [`LayerPlan`] and the PE sizing the plan was built for.
    ///
    /// Planning is the expensive per-layer prologue (tap analysis, chunking,
    /// weight gathering); separating it from execution lets
    /// [`crate::network::NetworkExecution`] stage layer `N + 1`'s plan on a
    /// spare thread while layer `N` is still retiring.
    pub(crate) fn plan_layer(
        &self,
        layer: &Layer,
        weights: &Tensor,
    ) -> Result<PlannedLayer, MachineError> {
        self.config
            .validate()
            .map_err(|error| MachineError::Config { error })?;
        let params = self.validate_weights(layer, weights)?;
        // One PE sizing governs both the plan (chunk/stream limits) and the
        // worker PEs, so chunks can never outgrow the engines executing them.
        // The sizing comes from the config (`GanaxConfig::sim_pe`; the
        // deep simulation default unless overridden).
        let pe_config = self.config.sim_pe;
        let plan = LayerPlan::build(layer, &params, weights, &pe_config);
        Ok(PlannedLayer { pe_config, plan })
    }

    /// Executes one layer from a prebuilt [`PlannedLayer`], returning the run
    /// and the per-worker busy-cycle split (for load-balance reporting).
    ///
    /// `layer_index` is the network-level layer index used as the fault
    /// coordinate when the config arms a [`FaultSpec`](ganax_sim::FaultSpec)
    /// (0 for the one-shot layer APIs). Each call builds a fresh
    /// [`FaultInjector`], so the same seed reproduces the same corruption on
    /// every call and at every thread count.
    pub(crate) fn execute_planned(
        &self,
        layer: &Layer,
        input: &Tensor,
        planned: &PlannedLayer,
        threads: usize,
        layer_index: usize,
    ) -> Result<(MachineRun, Vec<u64>), MachineError> {
        if input.shape() != layer.input {
            return Err(MachineError::ShapeMismatch {
                detail: format!("input {} != layer input {}", input.shape(), layer.input),
            });
        }
        let pe_config = &planned.pe_config;
        let plan = &planned.plan;
        let mut output = Tensor::zeros(layer.output);
        let width = layer.output.width;
        let height = layer.output.height;
        let threads = threads.clamp(1, height.max(1));

        let mut busy = 0u64;
        let mut counts = EventCounts::default();
        let mut work_units = 0u64;
        let mut shard_busy = Vec::with_capacity(threads);
        let verify = self.config.integrity.verifies();
        let mut checks: Vec<(usize, RowChecksum)> = Vec::new();
        let injector = FaultInjector::new(self.config.fault);
        injector.begin_epoch();
        let faults = ShardFaults {
            injector: &injector,
            layer_index,
        };
        {
            // Output rows in `(co, oy)` order are the contiguous `width`-sized
            // chunks of the output buffer; group them per output row `oy`
            // (every channel), because a shard processes whole `oy` slices —
            // that lets one input-stream load serve every output channel.
            let mut rows_by_oy: Vec<(usize, Vec<&mut [f32]>)> =
                (0..height).map(|oy| (oy, Vec::new())).collect();
            for (idx, row) in output.data_mut().chunks_mut(width).enumerate() {
                rows_by_oy[idx % height].1.push(row);
            }
            type ShardResult =
                Result<(u64, EventCounts, u64, Vec<(usize, RowChecksum)>), MachineError>;
            let shard_results: Vec<ShardResult> = if threads == 1 {
                vec![run_shard(
                    layer, input, plan, pe_config, rows_by_oy, faults, verify,
                )]
            } else {
                // Wide phase-major slices over the plan's row order: rows of
                // one phase share a tap count, and block striping (see
                // `shard_for_position`) keeps every worker's mix of shallow-
                // and deep-phase rows balanced while handing off work in
                // contiguous runs (assigning by raw `oy` would hand one
                // worker every deep-phase row whenever `threads` divides the
                // phase stride).
                let mut position = vec![0usize; height];
                for (pos, &oy) in plan.row_order.iter().enumerate() {
                    position[oy] = pos;
                }
                let mut shards: Vec<Vec<(usize, Vec<&mut [f32]>)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (oy, rows) in rows_by_oy {
                    shards[shard_for_position(position[oy], height, threads)].push((oy, rows));
                }
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .into_iter()
                        .map(|shard| {
                            scope.spawn(move || {
                                run_shard(layer, input, plan, pe_config, shard, faults, verify)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| {
                            handle.join().unwrap_or_else(|_| {
                                Err(MachineError::WorkerPanic {
                                    layer: layer.name.clone(),
                                })
                            })
                        })
                        .collect()
                })
            };
            // Deterministic reduction: worker-index order. The totals are
            // `u64` sums over disjoint work units, so they are identical for
            // every thread count and shard assignment.
            for result in shard_results {
                let (busy_one, shard_counts, shard_units, shard_checks) = result?;
                busy += busy_one;
                counts += shard_counts;
                work_units += shard_units;
                shard_busy.push(busy_one);
                checks.extend(shard_checks);
            }
        }

        // ABFT verification at retire time, with surgical healing: flagged
        // rows re-execute in a fresh fault epoch (serially — they are the
        // exception path) and only their slices are recomputed, so unflagged
        // rows, the activity counters and the busy split keep their original
        // (bit-identical at every thread count) values. Repair work is
        // excluded from the counters entirely: corruption never changes what
        // the clean computation would have counted.
        if verify {
            let mut rounds = 0u32;
            loop {
                let mut flagged: Vec<usize> = checks
                    .iter()
                    .filter(|(oy, check)| !row_checksum_ok(plan, *oy, check))
                    .map(|(oy, _)| *oy)
                    .collect();
                if flagged.is_empty() {
                    break;
                }
                flagged.sort_unstable();
                flagged.dedup();
                if !self.config.integrity.heals() || rounds >= MAX_HEAL_ROUNDS {
                    return Err(MachineError::IntegrityViolation {
                        layer: layer.name.clone(),
                        rows: flagged,
                    });
                }
                rounds += 1;
                injector.begin_epoch();
                let mut heal_rows: Vec<(usize, Vec<&mut [f32]>)> =
                    flagged.iter().map(|&oy| (oy, Vec::new())).collect();
                for (idx, row) in output.data_mut().chunks_mut(width).enumerate() {
                    let oy = idx % height;
                    if let Ok(slot) = flagged.binary_search(&oy) {
                        row.fill(0.0);
                        heal_rows[slot].1.push(row);
                    }
                }
                let (_, _, _, healed) =
                    run_shard(layer, input, plan, pe_config, heal_rows, faults, true)?;
                for (oy, check) in &mut checks {
                    if let Some(new) = healed.iter().find(|(h, _)| h == oy) {
                        *check = new.1;
                    }
                }
            }
        }

        // Horizontal accumulation of each node's partial sums into the output
        // row (one hop per produced element).
        counts.inter_pe_transfers += work_units * width as u64;

        Ok((
            MachineRun {
                output,
                busy_pe_cycles: busy,
                counts,
                work_units,
            },
            shard_busy,
        ))
    }

    /// Executes one layer on the seed one-cycle-at-a-time serial path: one PE,
    /// [`ProcessingEngine::run_until_idle`] (no bursts), and per-work-unit
    /// row/weight gathering. Kept as the measured baseline the fast paths are
    /// property-tested against — and benchmarked against in
    /// `BENCH_machine.json`.
    ///
    /// # Errors
    /// As [`GanaxMachine::execute_layer`].
    pub fn execute_layer_reference(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &Tensor,
    ) -> Result<MachineRun, MachineError> {
        self.config
            .validate()
            .map_err(|error| MachineError::Config { error })?;
        let params = self.validate(layer, input, weights)?;
        let geometry = LayerGeometry::for_layer(layer);
        let mut output = Tensor::zeros(layer.output);
        let mut counts = EventCounts::default();
        let mut busy = 0u64;
        let mut work_units = 0u64;

        // One PE is reused per work unit; the mapping of units to physical PEs
        // round-robins across the array, which only matters for the activity
        // counters (each unit's traffic is identical wherever it runs).
        let mut pe = ProcessingEngine::new(self.config.sim_pe);

        for co in 0..layer.output.channels {
            for oy in 0..layer.output.height {
                // Consequential vertical taps for this output row.
                let ky_taps: Vec<usize> = match &geometry.height_phases {
                    Some(phases) if layer.is_tconv() => phases.taps_at(oy),
                    _ => (0..params.kernel.1)
                        .filter(|ky| conv_input_row(oy, *ky, &params, layer.input.height).is_some())
                        .collect(),
                };
                for &ky in &ky_taps {
                    let Some(iy) = input_row_for(oy, ky, &params, layer.input.height) else {
                        continue;
                    };
                    for ci in 0..layer.input.channels {
                        work_units += 1;
                        let row: Vec<f32> = (0..layer.input.width)
                            .map(|ix| input.at(ci, 0, iy, ix))
                            .collect();
                        let weight_row: Vec<f32> = (0..params.kernel.2)
                            .map(|kx| {
                                if layer.is_tconv() {
                                    weights.at_filter(
                                        co,
                                        ci,
                                        0,
                                        params.kernel.1 - 1 - ky,
                                        params.kernel.2 - 1 - kx,
                                    )
                                } else {
                                    weights.at_filter(co, ci, 0, ky, kx)
                                }
                            })
                            .collect();
                        let (unit_busy, unit_counts) = run_unit_single_step(
                            &mut pe,
                            &row,
                            &weight_row,
                            &params,
                            layer,
                            |ox, value| {
                                output.add_at(co, 0, oy, ox, value);
                            },
                        )?;
                        busy += unit_busy;
                        counts += unit_counts;
                        counts.inter_pe_transfers += layer.output.width as u64;
                    }
                }
            }
        }

        Ok(MachineRun {
            output,
            busy_pe_cycles: busy,
            counts,
            work_units,
        })
    }

    /// Checks layer support and tensor shapes, returning the convolution
    /// parameters.
    fn validate(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &Tensor,
    ) -> Result<ConvParams, MachineError> {
        let params = self.validate_weights(layer, weights)?;
        if input.shape() != layer.input {
            return Err(MachineError::ShapeMismatch {
                detail: format!("input {} != layer input {}", input.shape(), layer.input),
            });
        }
        Ok(params)
    }

    /// Checks layer support and the weight tensor's shape (everything the
    /// planning stage needs — the input tensor is checked at execution time).
    fn validate_weights(
        &self,
        layer: &Layer,
        weights: &Tensor,
    ) -> Result<ConvParams, MachineError> {
        let params = match &layer.op {
            LayerOp::Conv(p) | LayerOp::TConv(p) => *p,
            LayerOp::Projection => {
                return Err(MachineError::Unsupported {
                    detail: "projection layers are executed by the host, not the PE array".into(),
                })
            }
        };
        if layer.input.depth != 1 {
            return Err(MachineError::Unsupported {
                detail: "the cycle-level machine covers 2-D layers".into(),
            });
        }
        let expected_weights = Shape::filter(
            layer.output.channels,
            layer.input.channels,
            params.kernel.0,
            params.kernel.1,
            params.kernel.2,
        );
        if weights.shape() != expected_weights {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "weights {} != expected {}",
                    weights.shape(),
                    expected_weights
                ),
            });
        }
        Ok(params)
    }
}

/// Runs every work unit of one shard of whole output rows (`oy` slices, all
/// channels) on a fresh worker PE, accumulating partial sums into the
/// shard's (disjoint) output-row slices.
///
/// The hot path exploits the work-unit structure twice over:
///
/// * columns dispatch chunk-wise — a chunk's operand values are gathered
///   into contiguous streams walked by linear index generators while one
///   `repeat`+`mac` µop pair per column drains them, which the PE retires as
///   a single provably stall-free burst;
/// * output channels batch — a gathered input stream depends only on
///   `(oy, ky, ci)`, so it is loaded once and *replayed* by the input
///   generator's repeat register across a whole group of output channels,
///   whose weight streams concatenate in the weight scratchpad and whose
///   partial sums land in disjoint output words.
///
/// Per work unit and column this performs exactly the reference path's
/// traffic (`taps` input + `taps` weight reads, two µop fetches, one
/// write-back, `taps` busy cycles), so counter totals and the f32
/// accumulation order per output element are bit-identical; only the
/// scratchpad layout differs. Bulk loads are excluded from the returned
/// counts, as the reference path excludes its own per-unit loads. The output
/// scratchpad is not cleared between dispatches: every program overwrites
/// its output word before it is read back.
fn run_shard(
    layer: &Layer,
    input: &Tensor,
    plan: &LayerPlan,
    pe_config: &PeConfig,
    shard: Vec<(usize, Vec<&mut [f32]>)>,
    faults: ShardFaults<'_>,
    verify: bool,
) -> Result<(u64, EventCounts, u64, Vec<(usize, RowChecksum)>), MachineError> {
    let mut pe = ProcessingEngine::new(*pe_config);
    let mut load_words = 0u64;
    let mut work_units = 0u64;
    let mut checks: Vec<(usize, RowChecksum)> = Vec::new();

    for (oy, mut co_rows) in shard {
        // On this scoped path an injected worker disturbance surfaces as a
        // typed error (the caller has no supervision to recover a panic);
        // the engine's persistent workers turn the same decision into a real
        // panic that its supervision catches.
        match faults.worker_fault(oy) {
            Some(WorkerFault::Panic) => {
                return Err(MachineError::WorkerPanic {
                    layer: layer.name.clone(),
                })
            }
            Some(WorkerFault::Stall) => {
                std::thread::sleep(std::time::Duration::from_millis(STALL_MILLIS))
            }
            None => {}
        }
        let mut check = RowChecksum::default();
        for &(ky, iy) in &plan.row_taps[oy] {
            for ci in 0..layer.input.channels {
                work_units += co_rows.len() as u64;
                let input_row = input.row_2d(ci, iy);
                for (chunk_idx, chunk) in plan.chunks.iter().enumerate() {
                    let base = dispatch_ordinal_base(plan, layer, ky, ci, chunk_idx);
                    let stream = chunk.taps * chunk.cols;
                    pe.load_input_with(stream, |buf| {
                        gather_chunk_input(plan, chunk, input_row, buf);
                        if verify {
                            // Checksum the stream *before* corruption: the
                            // prediction must track the clean computation.
                            accumulate_input_checksum(
                                plan, chunk_idx, stream, ky, ci, buf, &mut check,
                            );
                        }
                        faults.corrupt_input_stream(oy, base, buf);
                    });
                    load_words += stream as u64;

                    let group_max = chunk_group_max(pe_config, chunk, stream);
                    let mut co0 = 0;
                    while co0 < co_rows.len() {
                        let group = group_max.min(co_rows.len() - co0);
                        load_words += load_chunk_weights(
                            &mut pe,
                            plan,
                            chunk_idx,
                            stream,
                            group,
                            co0,
                            ci,
                            ky,
                            faults,
                            base + co0 as u64,
                        );
                        retire_chunk_group(&mut pe, chunk, stream, group, 0, layer, |k, slots| {
                            let row = &mut co_rows[co0 + k];
                            let mut ox = chunk.ox_start;
                            match faults.emit_fault(oy, base + co0 as u64, co0 + k) {
                                Some(EmitFault::StuckLane | EmitFault::DroppedUop) => {}
                                Some(EmitFault::DuplicatedUop) => {
                                    for &value in slots {
                                        row[ox] += value;
                                        row[ox] += value;
                                        ox += chunk.col_step;
                                    }
                                }
                                None => {
                                    for &value in slots {
                                        row[ox] += value;
                                        ox += chunk.col_step;
                                    }
                                }
                            }
                        })?;
                        co0 += group;
                    }
                }
            }
        }
        if verify {
            // The observed checksum walks the finished row channel-major
            // (`co` ascending, columns ascending) — the same linear order
            // the engine's resident buffer layout yields.
            for row in &co_rows {
                for &value in row.iter() {
                    check.observed += f64::from(value);
                }
            }
            checks.push((oy, check));
        }
    }

    let mut counts = pe.counts();
    counts.register_file_writes -= load_words;
    Ok((pe.busy_cycles(), counts, work_units, checks))
}

/// The largest output-channel group one dispatch of `chunk` can carry: its
/// µop pairs must fit the µop FIFO, its concatenated weight streams the
/// weight scratchpad, and its output words the output scratchpad. Shared by
/// the per-layer shard runner and the engine's resident-PE worker so the two
/// paths can never disagree on dispatch shapes (their results are
/// contractually bit-identical).
pub(crate) fn chunk_group_max(pe_config: &PeConfig, chunk: &ColumnChunk, stream: usize) -> usize {
    (pe_config.uop_fifo_entries / 2 / chunk.cols)
        .min(pe_config.weight_words / stream)
        .min(pe_config.output_words / chunk.cols)
        .max(1)
}

/// Gathers one input row's operand stream for `chunk` into `dst`
/// (`taps × cols` words, one contiguous column run after another).
pub(crate) fn gather_chunk_input(
    plan: &LayerPlan,
    chunk: &ColumnChunk,
    input_row: &[f32],
    dst: &mut [f32],
) {
    let mut i = 0;
    for c in 0..chunk.cols {
        let run = plan.column_runs[chunk.ox_start + c * chunk.col_step]
            .as_ref()
            .expect("chunks cover consequential columns");
        dst[i..i + chunk.taps]
            .copy_from_slice(&input_row[run.input_start..run.input_start + chunk.taps]);
        i += chunk.taps;
    }
}

/// Stages the gathered weight streams of one `(chunk, ci, ky, channel
/// group)` into the weight scratchpad, returning the words loaded (bulk
/// loads are excluded from the reported counts by the callers). `ordinal`
/// is the group's dispatch ordinal ([`dispatch_ordinal_base`]` + co0`),
/// the coordinate of any scheduled weight corruption.
///
/// The streams were gathered once at plan time ([`LayerPlan::weight_streams`])
/// so the load is a single contiguous copy. Scheduled corruption applies to
/// the PE-local buffer *after* the copy — the shared plan is never mutated —
/// and weight fault sites carry no row coordinate, so every load of the same
/// `(ky, ci, chunk, group)` corrupts identically, exactly as the per-load
/// gather did.
#[allow(clippy::too_many_arguments)]
pub(crate) fn load_chunk_weights(
    pe: &mut ProcessingEngine,
    plan: &LayerPlan,
    chunk_idx: usize,
    stream: usize,
    group: usize,
    co0: usize,
    ci: usize,
    ky: usize,
    faults: ShardFaults<'_>,
    ordinal: u64,
) -> u64 {
    let base = plan.weight_stream_base[chunk_idx]
        + ((ky * plan.input_channels + ci) * plan.output_channels + co0) * stream;
    pe.load_weights_with(group * stream, |buf| {
        buf.copy_from_slice(&plan.weight_streams[base..base + group * stream]);
        faults.corrupt_weight_block(ordinal, buf);
    });
    (group * stream) as u64
}

/// Dispatches one chunk × channel-group program against the input stream
/// resident at `input_base`, retires it as one burst, and hands each
/// channel's produced partial sums to `emit(k, slots)` (`k` indexes the
/// channel within the group; `slots[c]` belongs to output column
/// `ox_start + c * col_step`). The slice form lets callers scatter with a
/// tight per-row loop instead of a bounds-checked store per element. This is
/// the single definition of the hot dispatch body shared by `run_shard` and
/// the engine's resident-PE worker — the bit-identity guarantee between
/// those paths rests on them issuing exactly this program.
///
/// # Errors
/// [`MachineError::Timeout`] when the PE fails to drain within the chunk's
/// work-derived budget, and [`MachineError::UopOverflow`] from the dispatch.
pub(crate) fn retire_chunk_group(
    pe: &mut ProcessingEngine,
    chunk: &ColumnChunk,
    stream: usize,
    group: usize,
    input_base: usize,
    layer: &Layer,
    mut emit: impl FnMut(usize, &[f32]),
) -> Result<(), MachineError> {
    dispatch_group(pe, chunk, stream, group, input_base, layer)?;
    pe.run_until_idle_burst(chunk_cycle_budget(chunk) * group as u64);
    if !pe.is_idle() {
        return Err(MachineError::Timeout {
            layer: layer.name.clone(),
        });
    }
    let produced = pe.output_contents();
    for k in 0..group {
        emit(k, &produced[k * chunk.cols..(k + 1) * chunk.cols]);
    }
    Ok(())
}

/// Configures the index generators for one chunk × channel-group dispatch
/// and enqueues its µop pairs: the input generator replays the shared stream
/// once per channel, the weight generator walks the concatenated per-channel
/// streams, and the output generator hands each program its own word. The
/// pairs are pushed virtually ([`ProcessingEngine::try_push_mac_pairs`]), so
/// the µop FIFO records a count instead of materializing `2 × cols × group`
/// entries and the PE retires the whole dispatch in closed form.
///
/// `input_base` selects which resident input stream the dispatch reads: the
/// input generator walks `[input_base, input_base + stream)` through its
/// constant-offset register. The per-layer paths keep a single stream resident
/// (`input_base == 0`); the inference engine stages a whole block of rows'
/// streams and addresses one per dispatch.
fn dispatch_group(
    pe: &mut ProcessingEngine,
    chunk: &ColumnChunk,
    stream: usize,
    group: usize,
    input_base: usize,
    layer: &Layer,
) -> Result<(), MachineError> {
    pe.configure_generator(
        AddrGenKind::Input,
        GeneratorConfig {
            addr: 0,
            offset: input_base as u16,
            step: 1,
            end: stream as u16,
            repeat: group as u16,
        },
    );
    pe.configure_generator(
        AddrGenKind::Weight,
        GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: (group * stream) as u16,
            repeat: 1,
        },
    );
    pe.configure_generator(
        AddrGenKind::Output,
        GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: (group * chunk.cols) as u16,
            repeat: 1,
        },
    );
    pe.start_all();
    pe.set_repeat(chunk.taps as u16);
    pe.try_push_mac_pairs(chunk.cols * group)
        .map_err(|_| MachineError::UopOverflow {
            layer: layer.name.clone(),
        })
}

/// The seed single-step work-unit body, preserved as the reference
/// implementation (and the benchmark baseline).
fn run_unit_single_step(
    pe: &mut ProcessingEngine,
    input_row: &[f32],
    weight_row: &[f32],
    params: &ConvParams,
    layer: &Layer,
    mut emit: impl FnMut(usize, f32),
) -> Result<(u64, EventCounts), MachineError> {
    pe.load_input(input_row);
    pe.load_weights(weight_row);
    pe.clear_output();
    let before = pe.counts();
    let busy_before = pe.busy_cycles();
    let output_words = pe.config().output_words;

    for ox in 0..layer.output.width {
        let Some(run) = column_run(ox, params, layer.input.width) else {
            continue;
        };
        dispatch_column(pe, &run, ox, output_words, layer)?;
        pe.run_until_idle(column_cycle_budget(run.taps));
        if !pe.is_idle() {
            return Err(MachineError::Timeout {
                layer: layer.name.clone(),
            });
        }
        emit(ox, pe.read_output((ox % output_words) as u16));
    }

    Ok((pe.busy_cycles() - busy_before, pe.counts() - before))
}

/// Configures the three index generators for one column run and enqueues its
/// `repeat`+`mac` program through the fallible µop push.
fn dispatch_column(
    pe: &mut ProcessingEngine,
    run: &ColumnRun,
    ox: usize,
    output_words: usize,
    layer: &Layer,
) -> Result<(), MachineError> {
    pe.configure_generator(
        AddrGenKind::Input,
        GeneratorConfig {
            addr: run.input_start as u16,
            offset: 0,
            step: 1,
            end: (run.input_start + run.taps) as u16,
            repeat: 1,
        },
    );
    pe.configure_generator(
        AddrGenKind::Weight,
        GeneratorConfig {
            addr: run.kernel_start as u16,
            offset: 0,
            step: run.kernel_step as u16,
            end: (run.kernel_start + (run.taps - 1) * run.kernel_step + 1) as u16,
            repeat: 1,
        },
    );
    pe.configure_generator(
        AddrGenKind::Output,
        GeneratorConfig {
            addr: (ox % output_words) as u16,
            offset: 0,
            step: 1,
            end: (ox % output_words + 1) as u16,
            repeat: 1,
        },
    );
    pe.start_all();
    pe.set_repeat(run.taps as u16);
    for uop in [ExecUop::Repeat, ExecUop::Mac] {
        pe.try_push_uop(uop)
            .map_err(|_| MachineError::UopOverflow {
                layer: layer.name.clone(),
            })?;
    }
    Ok(())
}

impl Default for GanaxMachine {
    fn default() -> Self {
        Self::paper()
    }
}

/// The original input row a (output row, vertical kernel tap) pair reads, or
/// `None` if the tap falls on padding / an inserted zero row.
fn input_row_for(oy: usize, ky: usize, params: &ConvParams, input_height: usize) -> Option<usize> {
    match params.kind {
        ConvKind::Transposed => {
            let ins = ZeroInsertion::from_params(params);
            ins.source(1, oy + ky, input_height)
        }
        ConvKind::Conventional => conv_input_row(oy, ky, params, input_height),
    }
}

/// Input row of a conventional convolution tap, or `None` when it lands in the
/// padding.
fn conv_input_row(oy: usize, ky: usize, params: &ConvParams, input_height: usize) -> Option<usize> {
    let pos = (oy * params.stride.1 + ky) as isize - params.padding.1 as isize;
    if pos >= 0 && (pos as usize) < input_height {
        Some(pos as usize)
    } else {
        None
    }
}

/// The consequential column taps of one output column: which input columns and
/// kernel columns participate, and with which kernel stride.
fn column_run(ox: usize, params: &ConvParams, input_width: usize) -> Option<ColumnRun> {
    match params.kind {
        ConvKind::Transposed => {
            let ins = ZeroInsertion::from_params(params);
            let step = params.stride.2;
            let mut first: Option<(usize, usize)> = None;
            let mut taps = 0usize;
            for kx in 0..params.kernel.2 {
                if let Some(ix) = ins.source(2, ox + kx, input_width) {
                    if first.is_none() {
                        first = Some((ix, kx));
                    }
                    taps += 1;
                }
            }
            first.map(|(input_start, kernel_start)| ColumnRun {
                input_start,
                kernel_start,
                kernel_step: step,
                taps,
            })
        }
        ConvKind::Conventional => {
            let mut first: Option<(usize, usize)> = None;
            let mut taps = 0usize;
            for kx in 0..params.kernel.2 {
                let pos = (ox * params.stride.2 + kx) as isize - params.padding.2 as isize;
                if pos >= 0 && (pos as usize) < input_width {
                    if first.is_none() {
                        first = Some((pos as usize, kx));
                    }
                    taps += 1;
                }
            }
            first.map(|(input_start, kernel_start)| ColumnRun {
                input_start,
                kernel_start,
                kernel_step: 1,
                taps,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::Activation;
    use ganax_tensor::{conv, tconv};
    use proptest::prelude::*;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 / 1000.0) - 1.0
        };
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = next();
        }
        t
    }

    fn layer_tensors(layer: &Layer, seed: u64) -> (Tensor, Tensor) {
        let params = layer.op.conv_params().unwrap();
        let input = random_tensor(layer.input, seed);
        let weights = random_tensor(
            Shape::filter(
                layer.output.channels,
                layer.input.channels,
                params.kernel.0,
                params.kernel.1,
                params.kernel.2,
            ),
            seed + 1,
        );
        (input, weights)
    }

    fn check_layer(layer: Layer, seed: u64) {
        let (input, weights) = layer_tensors(&layer, seed);
        let reference = if layer.is_tconv() {
            tconv(&input, &weights, &layer.op.conv_params().unwrap()).unwrap()
        } else {
            conv(&input, &weights, &layer.op.conv_params().unwrap()).unwrap()
        };
        let run = GanaxMachine::paper()
            .execute_layer(&layer, &input, &weights)
            .unwrap();
        assert!(
            run.output.approx_eq(&reference, 1e-3),
            "machine output diverges from reference for {} (max diff {})",
            layer.name,
            run.output.max_abs_diff(&reference).unwrap()
        );
        assert!(run.busy_pe_cycles > 0);
        assert_eq!(run.counts.alu_ops, run.busy_pe_cycles);

        // The fast path must agree bit for bit with the seed single-step
        // serial path, and with every thread count.
        let machine = GanaxMachine::paper();
        let single_step = machine
            .execute_layer_reference(&layer, &input, &weights)
            .unwrap();
        assert_eq!(run, single_step, "fast path diverged from reference");
        for threads in [2, 3, 8] {
            let threaded = machine
                .execute_layer_threaded(&layer, &input, &weights, threads)
                .unwrap();
            assert_eq!(run, threaded, "{threads}-thread run diverged");
        }
    }

    #[test]
    fn matches_reference_on_paper_example_geometry() {
        let layer = Layer::conv(
            "paper-example",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 11);
    }

    #[test]
    fn matches_reference_on_multichannel_tconv() {
        let layer = Layer::conv(
            "tconv-multi",
            Shape::new_2d(3, 5, 5),
            2,
            ConvParams::transposed_2d(4, 2, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 23);
    }

    #[test]
    fn matches_reference_on_stride1_tconv() {
        let layer = Layer::conv(
            "tconv-refine",
            Shape::new_2d(2, 6, 6),
            2,
            ConvParams::transposed_2d(3, 1, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 37);
    }

    #[test]
    fn matches_reference_on_conventional_convolution() {
        let layer = Layer::conv(
            "conv",
            Shape::new_2d(2, 8, 8),
            3,
            ConvParams::conv_2d(3, 2, 1),
            Activation::None,
        )
        .unwrap();
        check_layer(layer, 41);
    }

    #[test]
    fn machine_performs_only_consequential_macs() {
        let layer = Layer::conv(
            "tconv-count",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        let params = layer.op.conv_params().unwrap();
        let input = random_tensor(layer.input, 5);
        let weights = random_tensor(Shape::filter(1, 1, 1, 5, 5), 6);
        let run = GanaxMachine::paper()
            .execute_layer(&layer, &input, &weights)
            .unwrap();
        let consequential = params.consequential_macs(layer.input, 1).unwrap();
        assert_eq!(run.counts.alu_ops, consequential);
        assert!(run.counts.alu_ops < layer.dense_macs());
    }

    #[test]
    fn rejects_projection_and_volumetric_layers() {
        let machine = GanaxMachine::paper();
        let projection = Layer::projection(
            "proj",
            Shape::new_2d(10, 1, 1),
            Shape::new_2d(4, 2, 2),
            Activation::None,
        );
        let input = Tensor::zeros(projection.input);
        let weights = Tensor::zeros(Shape::filter(4, 10, 1, 1, 1));
        assert!(matches!(
            machine.execute_layer(&projection, &input, &weights),
            Err(MachineError::Unsupported { .. })
        ));

        let volumetric = Layer::conv(
            "tconv3d",
            Shape::new(2, 2, 2, 2),
            1,
            ConvParams::transposed_3d(4, 2, 1),
            Activation::None,
        )
        .unwrap();
        let input = Tensor::zeros(volumetric.input);
        let weights = Tensor::zeros(Shape::filter(1, 2, 4, 4, 4));
        assert!(matches!(
            machine.execute_layer(&volumetric, &input, &weights),
            Err(MachineError::Unsupported { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_tensors() {
        let layer = Layer::conv(
            "tconv",
            Shape::new_2d(1, 4, 4),
            1,
            ConvParams::transposed_2d(5, 2, 2),
            Activation::None,
        )
        .unwrap();
        let machine = GanaxMachine::paper();
        let bad_input = Tensor::zeros(Shape::new_2d(1, 5, 5));
        let weights = Tensor::zeros(Shape::filter(1, 1, 1, 5, 5));
        assert!(matches!(
            machine.execute_layer(&layer, &bad_input, &weights),
            Err(MachineError::ShapeMismatch { .. })
        ));
        let input = Tensor::zeros(Shape::new_2d(1, 4, 4));
        let bad_weights = Tensor::zeros(Shape::filter(1, 1, 1, 3, 3));
        assert!(matches!(
            machine.execute_layer(&layer, &input, &bad_weights),
            Err(MachineError::ShapeMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Across random conv/tconv geometries, the burst-stepped fast path
        /// (serial and threaded) produces outputs, `busy_pe_cycles` and
        /// `EventCounts` bit-identical to the seed single-step serial path.
        #[test]
        fn prop_fast_paths_match_single_step_reference(
            tconv in 0u16..2,
            in_channels in 1usize..3,
            out_channels in 1usize..3,
            extent in 3usize..7,
            kernel in 1usize..6,
            stride in 1usize..3,
            threads in 2usize..6,
            seed in 0u64..1_000,
        ) {
            let params = if tconv == 1 {
                ConvParams::transposed_2d(kernel, stride, kernel / 2)
            } else {
                ConvParams::conv_2d(kernel, stride, kernel / 2)
            };
            let layer = match Layer::conv(
                "prop-geometry",
                Shape::new_2d(in_channels, extent, extent),
                out_channels,
                params,
                Activation::None,
            ) {
                Ok(layer) => layer,
                // Degenerate geometry (e.g. kernel larger than the padded
                // input): nothing to compare.
                Err(_) => return Ok(()),
            };
            let (input, weights) = layer_tensors(&layer, seed);
            let machine = GanaxMachine::paper();
            let reference = machine.execute_layer_reference(&layer, &input, &weights).unwrap();
            let fast = machine.execute_layer_threaded(&layer, &input, &weights, 1).unwrap();
            prop_assert_eq!(&reference, &fast, "serial fast path diverged");
            let threaded = machine.execute_layer_threaded(&layer, &input, &weights, threads).unwrap();
            prop_assert_eq!(&reference, &threaded, "threaded fast path diverged");
        }
    }
}
