//! End-to-end network execution on the cycle-level machine.
//!
//! [`GanaxMachine::execute_network`] chains every layer of a [`Network`]
//! through the fast burst/threaded path of
//! [`GanaxMachine::execute_layer_threaded`]:
//!
//! * **inter-layer handoff** — each layer's output feature map (bias applied,
//!   activation applied) becomes the next layer's input; for transposed
//!   convolutions the next layer's plan addresses the original (non-inserted)
//!   elements directly through the zero-insertion phase analysis of
//!   `ganax_dataflow`, and its rows are staged in the phase-major order of
//!   the Figure 5 output-row reorganization;
//! * **host stages** — fully-connected projection layers (latent vector →
//!   initial feature map) run on the host, exactly as the machine's layer
//!   API documents; their cycles and counts are reported as zero and flagged
//!   [`LayerExecution::host`];
//! * **double-buffered operand staging** — while layer `N` retires on the
//!   worker PEs, layer `N + 1`'s [`plan`](GanaxMachine) (tap analysis,
//!   column chunking, gathered weight rows) is built on a spare thread, so
//!   the planning prologue overlaps simulation instead of serializing with
//!   it.
//!
//! The result is a [`NetworkExecution`] report: per-layer busy cycles,
//! [`EventCounts`], load-balance utilization and wall-clock, plus the final
//! output tensor. The report plugs into the analytic models through
//! [`GanaxModel::cross_check`](crate::GanaxModel::cross_check) and
//! [`SimulatedComparison`](crate::compare::SimulatedComparison).
//!
//! # Example
//!
//! ```
//! use ganax::{GanaxMachine, NetworkWeights};
//! use ganax_models::{Activation, NetworkBuilder};
//! use ganax_tensor::{ConvParams, Shape, Tensor};
//!
//! let net = NetworkBuilder::new("toy", Shape::new_2d(1, 4, 4))
//!     .tconv("up", 1, ConvParams::transposed_2d(5, 2, 2), Activation::Relu)
//!     .build()
//!     .unwrap();
//! let weights =
//!     NetworkWeights::new(&net, vec![Tensor::filled_filter(1, 1, 1, 5, 5, 0.5)]).unwrap();
//! let input = Tensor::filled(net.input_shape(), 1.0);
//! let run = GanaxMachine::paper()
//!     .execute_network(&net, &input, &weights)
//!     .unwrap();
//! assert_eq!(run.output.shape(), net.output_shape());
//! assert!(run.total_busy_pe_cycles() > 0);
//! ```

use std::time::Instant;

use ganax_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use ganax_models::{Activation, Layer, LayerOp, Network};
use ganax_sim::ActivationKind;
use ganax_tensor::{conv, tconv, Shape, Tensor};

use crate::machine::{GanaxMachine, MachineError, MachineRun, PlannedLayer};

/// Per-layer weight tensors (and optional per-channel biases) for one
/// [`Network`], validated against the network's layer shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWeights {
    weights: Vec<Tensor>,
    biases: Vec<Option<Vec<f32>>>,
    /// Output channels per layer, kept for bias validation.
    out_channels: Vec<usize>,
}

impl NetworkWeights {
    /// The weight-tensor shape a layer expects: the usual
    /// `out_channels × in_channels × kd × kh × kw` filter for convolutions,
    /// and a flattened `output_volume × input_volume` matrix (carried as a
    /// `filter(out_volume, in_volume, 1, 1, 1)` tensor) for projections.
    pub fn expected_shape(layer: &Layer) -> Shape {
        match &layer.op {
            LayerOp::Projection => {
                Shape::filter(layer.output.volume(), layer.input.volume(), 1, 1, 1)
            }
            LayerOp::Conv(p) | LayerOp::TConv(p) => Shape::filter(
                layer.output.channels,
                layer.input.channels,
                p.kernel.0,
                p.kernel.1,
                p.kernel.2,
            ),
        }
    }

    /// Bundles one weight tensor per layer, validating count and shapes.
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when the number of tensors
    /// differs from the number of layers or any tensor's shape differs from
    /// [`NetworkWeights::expected_shape`].
    pub fn new(network: &Network, weights: Vec<Tensor>) -> Result<Self, MachineError> {
        let layers = network.layers();
        if weights.len() != layers.len() {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "{} weight tensors for {} layers",
                    weights.len(),
                    layers.len()
                ),
            });
        }
        for (layer, weight) in layers.iter().zip(&weights) {
            let expected = Self::expected_shape(layer);
            if weight.shape() != expected {
                return Err(MachineError::ShapeMismatch {
                    detail: format!(
                        "layer `{}` weights {} != expected {}",
                        layer.name,
                        weight.shape(),
                        expected
                    ),
                });
            }
        }
        let biases = vec![None; layers.len()];
        let out_channels = layers.iter().map(|l| l.output.channels).collect();
        Ok(NetworkWeights {
            weights,
            biases,
            out_channels,
        })
    }

    /// Attaches a per-output-channel bias to layer `index` (applied before
    /// the activation).
    ///
    /// # Errors
    /// Returns [`MachineError::ShapeMismatch`] when `index` is out of range
    /// or the bias length differs from the layer's output channels.
    pub fn with_bias(mut self, index: usize, bias: Vec<f32>) -> Result<Self, MachineError> {
        let Some(&channels) = self.out_channels.get(index) else {
            return Err(MachineError::ShapeMismatch {
                detail: format!("bias index {index} beyond {} layers", self.weights.len()),
            });
        };
        if bias.len() != channels {
            return Err(MachineError::ShapeMismatch {
                detail: format!(
                    "bias of {} entries for layer {index} with {channels} output channels",
                    bias.len()
                ),
            });
        }
        self.biases[index] = Some(bias);
        Ok(self)
    }

    /// The weight tensor of layer `index`.
    pub fn weight(&self, index: usize) -> &Tensor {
        &self.weights[index]
    }

    /// The bias of layer `index`, if one was attached.
    pub fn bias(&self, index: usize) -> Option<&[f32]> {
        self.biases[index].as_deref()
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the bundle covers no layers (never true for a validated
    /// network, which cannot be empty).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// A stable 64-bit fingerprint of the model: the network's structure
    /// (name, input shape, every layer description) folded together with
    /// every weight value's exact `f32` bit pattern and every attached bias.
    ///
    /// Two `(network, weights)` pairs fingerprint equal exactly when they
    /// describe the same computation, so the serving plan cache
    /// ([`crate::serve::Server`]) can key compiled artifacts by
    /// `(model fingerprint, config fingerprint)` and safely share one cache
    /// across many resident models. `network` should be the network this
    /// bundle was validated against; extra layers beyond the bundle's length
    /// are ignored (a validated pair never has any).
    pub fn fingerprint(&self, network: &Network) -> u64 {
        let mut hash = crate::config::FNV_OFFSET;
        let fold = crate::config::fnv1a64;
        fold(&mut hash, network.name().as_bytes());
        fold(&mut hash, format!("{:?}", network.input_shape()).as_bytes());
        for (layer, weight) in network.layers().iter().zip(&self.weights) {
            fold(&mut hash, format!("{layer:?}").as_bytes());
            for &value in weight.data() {
                fold(&mut hash, &value.to_bits().to_le_bytes());
            }
        }
        for bias in &self.biases {
            match bias {
                Some(values) => {
                    for &value in values {
                        fold(&mut hash, &value.to_bits().to_le_bytes());
                    }
                }
                None => fold(&mut hash, b"-"),
            }
        }
        hash
    }
}

/// The report of one layer's execution inside
/// [`GanaxMachine::execute_network`].
#[derive(Debug, Clone)]
pub struct LayerExecution {
    /// Layer name.
    pub name: String,
    /// Whether the layer is a transposed convolution.
    pub is_tconv: bool,
    /// Whether the layer ran on the host (projections) instead of the PE
    /// array; host layers report zero cycles and counts.
    pub host: bool,
    /// Cycles in which PEs performed arithmetic (summed over all PEs; equals
    /// the layer's exact in-bounds MAC count,
    /// [`ConvParams::in_bounds_macs`](ganax_tensor::ConvParams::in_bounds_macs)).
    pub busy_pe_cycles: u64,
    /// `(output row, filter tap, channel)` work units executed.
    pub work_units: u64,
    /// Aggregated activity counters of every PE used.
    pub counts: EventCounts,
    /// Load balance of the threaded PE-array scheduler: total busy cycles
    /// over `workers × busiest worker's busy cycles` (1.0 when perfectly
    /// balanced or serial; 1.0 for host layers by convention).
    pub balance: f64,
    /// Wall-clock seconds this layer took to simulate (including the staged
    /// planning overlap).
    pub wall_seconds: f64,
}

/// The report of [`GanaxMachine::execute_network`]: the final output feature
/// map plus per-layer cycle, counter and wall-clock aggregates.
#[derive(Debug, Clone)]
pub struct NetworkExecution {
    /// Network name.
    pub network: String,
    /// Worker threads requested for the PE-array layers.
    pub threads: usize,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerExecution>,
    /// The network's final output (bias and activation applied).
    pub output: Tensor,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Wall-clock seconds spent planning layers **during this call**: the
    /// one-shot paths ([`GanaxMachine::execute_network`] and the staged
    /// baseline) report their per-call planning cost here; runs from a
    /// prebuilt [`CompiledNetwork`](crate::CompiledNetwork) report exactly
    /// `0.0` — the plan cache was hit.
    pub plan_seconds: f64,
}

impl NetworkExecution {
    /// Total busy PE cycles across all PE-array layers.
    pub fn total_busy_pe_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.busy_pe_cycles).sum()
    }

    /// Total activity counters across all layers.
    pub fn total_counts(&self) -> EventCounts {
        self.layers
            .iter()
            .fold(EventCounts::default(), |acc, l| acc + l.counts)
    }

    /// Total work units across all layers.
    pub fn total_work_units(&self) -> u64 {
        self.layers.iter().map(|l| l.work_units).sum()
    }

    /// The layers that ran on the PE array (everything but host projections).
    pub fn machine_layers(&self) -> impl Iterator<Item = &LayerExecution> {
        self.layers.iter().filter(|l| !l.host)
    }

    /// Wall cycles an ideal `num_pes`-wide array needs for the simulated
    /// work: per layer, the busy cycles divided across the array (the
    /// reorganized dataflow keeps every remaining compute node consequential,
    /// so the division is the paper's best case).
    pub fn array_cycles(&self, num_pes: u64) -> u64 {
        let num_pes = num_pes.max(1);
        self.machine_layers()
            .map(|l| l.busy_pe_cycles.div_ceil(num_pes))
            .sum()
    }

    /// Busy-cycle-weighted average load balance of the PE-array layers.
    pub fn average_balance(&self) -> f64 {
        let total = self.total_busy_pe_cycles();
        if total == 0 {
            return 1.0;
        }
        self.machine_layers()
            .map(|l| l.balance * l.busy_pe_cycles as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Simulated busy cycles per wall-clock second — the simulator's
    /// throughput.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_busy_pe_cycles() as f64 / self.wall_seconds
    }

    /// Energy of the simulated activity under a Table II energy model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.energy(&self.total_counts())
    }
}

/// The [`ActivationKind`] the execute µ-engine uses for a layer's
/// [`Activation`].
pub fn activation_kind(activation: Activation) -> ActivationKind {
    match activation {
        Activation::None => ActivationKind::Identity,
        Activation::Relu => ActivationKind::Relu,
        Activation::LeakyRelu => ActivationKind::LeakyRelu,
        Activation::Tanh => ActivationKind::Tanh,
        Activation::Sigmoid => ActivationKind::Sigmoid,
    }
}

/// Applies a layer's inter-stage epilogue in place: the per-output-channel
/// bias (when present), then the layer's activation. Both the machine path
/// and the tensor reference chain use this exact routine, so the epilogue
/// cannot introduce divergence between them.
pub fn finish_layer_output(layer: &Layer, output: &mut Tensor, bias: Option<&[f32]>) {
    let shape = output.shape();
    debug_assert_eq!(shape, layer.output, "epilogue output shape mismatch");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), shape.channels, "bias length mismatch");
        let plane = shape.volume() / shape.channels;
        for (c, chunk) in output.data_mut().chunks_mut(plane).enumerate() {
            for v in chunk {
                *v += bias[c];
            }
        }
    }
    let kind = activation_kind(layer.activation);
    if kind != ActivationKind::Identity {
        for v in output.data_mut() {
            *v = kind.apply(*v);
        }
    }
}

/// Executes a fully-connected projection layer on the host: the flattened
/// input times the `output_volume × input_volume` weight matrix, in output
/// storage order (one fixed accumulation order, so results are deterministic).
///
/// # Errors
/// Returns [`MachineError::ShapeMismatch`] when the input or weight tensor
/// does not match the layer.
pub fn host_projection(
    layer: &Layer,
    input: &Tensor,
    weights: &Tensor,
) -> Result<Tensor, MachineError> {
    if !matches!(layer.op, LayerOp::Projection) {
        return Err(MachineError::Unsupported {
            detail: format!("layer `{}` is not a projection", layer.name),
        });
    }
    if input.shape() != layer.input {
        return Err(MachineError::ShapeMismatch {
            detail: format!("input {} != layer input {}", input.shape(), layer.input),
        });
    }
    let expected = NetworkWeights::expected_shape(layer);
    if weights.shape() != expected {
        return Err(MachineError::ShapeMismatch {
            detail: format!("weights {} != expected {}", weights.shape(), expected),
        });
    }
    let flat_in = input.data();
    let mut output = Tensor::zeros(layer.output);
    for (o, slot) in output.data_mut().iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (i, &v) in flat_in.iter().enumerate() {
            acc += weights.at_filter(o, i, 0, 0, 0) * v;
        }
        *slot = acc;
    }
    Ok(output)
}

/// Runs a whole network through the `ganax_tensor` reference implementations
/// ([`conv`]/[`tconv`] plus [`host_projection`]), applying the same
/// inter-stage epilogue as the machine. This is the functional oracle
/// [`GanaxMachine::execute_network`] is validated against.
///
/// # Errors
/// Returns [`MachineError::ShapeMismatch`] when the input does not match the
/// network or a layer's weights do not match its geometry.
pub fn reference_network_forward(
    network: &Network,
    input: &Tensor,
    weights: &NetworkWeights,
) -> Result<Tensor, MachineError> {
    check_network_inputs(network, input, weights)?;
    let mut current = input.clone();
    for (i, layer) in network.layers().iter().enumerate() {
        let mut out = match &layer.op {
            LayerOp::Projection => host_projection(layer, &current, weights.weight(i))?,
            LayerOp::Conv(p) => {
                conv(&current, weights.weight(i), p).map_err(|e| MachineError::ShapeMismatch {
                    detail: format!("layer `{}`: {e}", layer.name),
                })?
            }
            LayerOp::TConv(p) => {
                tconv(&current, weights.weight(i), p).map_err(|e| MachineError::ShapeMismatch {
                    detail: format!("layer `{}`: {e}", layer.name),
                })?
            }
        };
        finish_layer_output(layer, &mut out, weights.bias(i));
        current = out;
    }
    Ok(current)
}

/// Shared entry validation of the network-execution paths.
fn check_network_inputs(
    network: &Network,
    input: &Tensor,
    weights: &NetworkWeights,
) -> Result<(), MachineError> {
    if weights.len() != network.layers().len() {
        return Err(MachineError::ShapeMismatch {
            detail: format!(
                "{} weight tensors for {} layers",
                weights.len(),
                network.layers().len()
            ),
        });
    }
    if input.shape() != network.input_shape() {
        return Err(MachineError::ShapeMismatch {
            detail: format!(
                "input {} != network input {}",
                input.shape(),
                network.input_shape()
            ),
        });
    }
    Ok(())
}

impl GanaxMachine {
    /// Executes a whole network end to end on the cycle-level machine,
    /// choosing the worker count from [`std::thread::available_parallelism`].
    ///
    /// See [`NetworkExecution`] for what is reported. Outputs and counters
    /// are bit-identical for every worker count.
    ///
    /// # Errors
    /// Returns [`MachineError::Unsupported`] for volumetric layers,
    /// [`MachineError::ShapeMismatch`] when the input or weights do not match
    /// the network, and propagates per-layer execution errors.
    pub fn execute_network(
        &self,
        network: &Network,
        input: &Tensor,
        weights: &NetworkWeights,
    ) -> Result<NetworkExecution, MachineError> {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.execute_network_threaded(network, input, weights, available)
    }

    /// Executes a whole network end to end with an explicit worker count, by
    /// compiling it and running the result once on a fresh
    /// [`InferenceEngine`](crate::InferenceEngine) — so every one-shot caller
    /// exercises the exact serving path, paying the compile cost that a
    /// long-lived engine amortizes across requests. The returned report's
    /// [`NetworkExecution::plan_seconds`] carries that compile cost;
    /// [`NetworkExecution::wall_seconds`] includes it.
    ///
    /// Results are bit-identical to [`GanaxMachine::execute_network_staged`]
    /// (the pre-engine baseline) at every worker count.
    ///
    /// # Errors
    /// As [`GanaxMachine::execute_network`].
    pub fn execute_network_threaded(
        &self,
        network: &Network,
        input: &Tensor,
        weights: &NetworkWeights,
        threads: usize,
    ) -> Result<NetworkExecution, MachineError> {
        check_network_inputs(network, input, weights)?;
        let start = Instant::now();
        let engine = crate::InferenceEngine::new(*self, threads);
        let compiled = engine.compile(network, weights)?;
        let mut run = engine.execute(&compiled, input)?;
        run.plan_seconds = compiled.plan_seconds();
        run.wall_seconds = start.elapsed().as_secs_f64();
        Ok(run)
    }

    /// Executes a whole network through the **pre-engine staged path**: plans
    /// are rebuilt on every call (layer `N + 1`'s plan staged on a spare
    /// thread while layer `N` retires), each layer spawns fresh
    /// `std::thread::scope` workers with newly constructed PEs, and operand
    /// streams are re-gathered per output row.
    ///
    /// This is the **cold / uncompiled serving baseline**: what one request
    /// costs without a cached [`CompiledNetwork`](crate::CompiledNetwork).
    /// It is retained verbatim (plus planning-time accounting) as the oracle
    /// the engine paths are validated against — outputs, cycles and counters
    /// are bit-identical between the two — and as the `cold` measurement of
    /// `bench_serve`.
    ///
    /// # Errors
    /// As [`GanaxMachine::execute_network`].
    pub fn execute_network_staged(
        &self,
        network: &Network,
        input: &Tensor,
        weights: &NetworkWeights,
        threads: usize,
    ) -> Result<NetworkExecution, MachineError> {
        check_network_inputs(network, input, weights)?;
        let start = Instant::now();
        let mut plan_seconds = 0.0f64;
        let layers = network.layers();
        let next_machine_layer = |from: usize| {
            layers[from..]
                .iter()
                .position(|l| !matches!(l.op, LayerOp::Projection))
                .map(|p| p + from)
        };

        let mut reports = Vec::with_capacity(layers.len());
        let mut current = input.clone();
        // The staged plan for the next PE-array layer, built while the
        // previous one was executing.
        let mut staged: Option<(usize, PlannedLayer)> = None;

        /// What one stage produced: a host projection's output, or a machine
        /// run with its per-worker busy split.
        enum StageRun {
            Host(Tensor),
            Machine(MachineRun, Vec<u64>),
        }

        for (i, layer) in layers.iter().enumerate() {
            let layer_start = Instant::now();
            let is_host = matches!(layer.op, LayerOp::Projection);
            // A plan staged earlier for exactly this layer, if any; a plan
            // staged for a later layer stays staged.
            let prebuilt = match staged.take() {
                Some((idx, plan)) if idx == i => Some(plan),
                other => {
                    staged = other;
                    None
                }
            };
            // Double-buffered staging: build the next PE-array layer's plan
            // on a spare thread while this layer — host projection or PE
            // array alike — executes.
            let next = next_machine_layer(i + 1)
                .filter(|j| staged.as_ref().map_or(true, |(idx, _)| idx != j));
            let (result, staged_next) = std::thread::scope(|scope| {
                let handle = next.map(|j| {
                    scope.spawn(move || {
                        let plan_start = Instant::now();
                        let plan = self.plan_layer(&layers[j], weights.weight(j));
                        (plan, plan_start.elapsed().as_secs_f64())
                    })
                });
                let result = if is_host {
                    host_projection(layer, &current, weights.weight(i)).map(StageRun::Host)
                } else {
                    let planned = match prebuilt {
                        Some(plan) => Ok(plan),
                        None => {
                            let plan_start = Instant::now();
                            let plan = self.plan_layer(layer, weights.weight(i));
                            plan_seconds += plan_start.elapsed().as_secs_f64();
                            plan
                        }
                    };
                    planned.and_then(|plan| {
                        self.execute_planned(layer, &current, &plan, threads, i)
                            .map(|(run, shard_busy)| StageRun::Machine(run, shard_busy))
                    })
                };
                let staged_next = handle.map(|h| h.join().expect("planner thread panicked"));
                (result, staged_next)
            });
            let stage = result?;
            if let (Some(j), Some((plan_result, plan_elapsed))) = (next, staged_next) {
                plan_seconds += plan_elapsed;
                staged = Some((j, plan_result?));
            }
            let (mut out, report) = match stage {
                StageRun::Host(out) => (
                    out,
                    LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: false,
                        host: true,
                        busy_pe_cycles: 0,
                        work_units: 0,
                        counts: EventCounts::default(),
                        balance: 1.0,
                        wall_seconds: 0.0,
                    },
                ),
                StageRun::Machine(run, shard_busy) => {
                    let max_shard = shard_busy.iter().copied().max().unwrap_or(0);
                    let balance = if max_shard == 0 {
                        1.0
                    } else {
                        run.busy_pe_cycles as f64 / (shard_busy.len() as u64 * max_shard) as f64
                    };
                    let report = LayerExecution {
                        name: layer.name.clone(),
                        is_tconv: layer.is_tconv(),
                        host: false,
                        busy_pe_cycles: run.busy_pe_cycles,
                        work_units: run.work_units,
                        counts: run.counts,
                        balance,
                        wall_seconds: 0.0,
                    };
                    (run.output, report)
                }
            };
            finish_layer_output(layer, &mut out, weights.bias(i));
            current = out;
            reports.push(LayerExecution {
                wall_seconds: layer_start.elapsed().as_secs_f64(),
                ..report
            });
        }

        Ok(NetworkExecution {
            network: network.name().to_string(),
            threads,
            layers: reports,
            output: current,
            wall_seconds: start.elapsed().as_secs_f64(),
            plan_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::NetworkBuilder;
    use ganax_tensor::ConvParams;

    fn xorshift_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 / 1000.0) - 1.0
        };
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = next();
        }
        t
    }

    fn toy_network() -> Network {
        NetworkBuilder::new("toy-generator", Shape::new_2d(8, 1, 1))
            .projection("project", Shape::new_2d(4, 4, 4), Activation::Relu)
            .tconv(
                "up1",
                3,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 2, ConvParams::conv_2d(3, 1, 1), Activation::Tanh)
            .build()
            .unwrap()
    }

    fn toy_weights(network: &Network, seed: u64) -> NetworkWeights {
        let tensors = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| xorshift_tensor(NetworkWeights::expected_shape(l), seed + i as u64))
            .collect();
        NetworkWeights::new(network, tensors).unwrap()
    }

    #[test]
    fn execute_network_matches_tensor_reference() {
        let net = toy_network();
        let weights = toy_weights(&net, 3);
        let input = xorshift_tensor(net.input_shape(), 17);
        let run = GanaxMachine::paper()
            .execute_network(&net, &input, &weights)
            .unwrap();
        let reference = reference_network_forward(&net, &input, &weights).unwrap();
        assert_eq!(run.output.shape(), net.output_shape());
        assert!(
            run.output.approx_eq(&reference, 1e-4),
            "machine network run diverges from the tensor reference (max diff {})",
            run.output.max_abs_diff(&reference).unwrap()
        );
        assert_eq!(run.layers.len(), 3);
        assert!(run.layers[0].host);
        assert_eq!(run.layers[0].busy_pe_cycles, 0);
        assert!(run.layers[1].is_tconv);
        assert!(run.total_busy_pe_cycles() > 0);
        assert_eq!(
            run.total_counts().alu_ops,
            run.total_busy_pe_cycles(),
            "PE-array layers are all consequential MACs"
        );
    }

    #[test]
    fn execute_network_is_thread_count_invariant() {
        let net = toy_network();
        let weights = toy_weights(&net, 5);
        let input = xorshift_tensor(net.input_shape(), 23);
        let machine = GanaxMachine::paper();
        let serial = machine
            .execute_network_threaded(&net, &input, &weights, 1)
            .unwrap();
        for threads in [2, 3, 7] {
            let threaded = machine
                .execute_network_threaded(&net, &input, &weights, threads)
                .unwrap();
            assert_eq!(serial.output, threaded.output, "{threads}-thread output");
            for (a, b) in serial.layers.iter().zip(&threaded.layers) {
                assert_eq!(a.busy_pe_cycles, b.busy_pe_cycles, "{}", a.name);
                assert_eq!(a.counts, b.counts, "{}", a.name);
                assert_eq!(a.work_units, b.work_units, "{}", a.name);
            }
        }
    }

    #[test]
    fn execute_network_matches_hand_chained_layers() {
        let net = toy_network();
        let weights = toy_weights(&net, 11);
        let input = xorshift_tensor(net.input_shape(), 29);
        let machine = GanaxMachine::paper();
        let run = machine
            .execute_network_threaded(&net, &input, &weights, 2)
            .unwrap();

        let mut current = input.clone();
        for (i, layer) in net.layers().iter().enumerate() {
            let mut out = if matches!(layer.op, LayerOp::Projection) {
                host_projection(layer, &current, weights.weight(i)).unwrap()
            } else {
                machine
                    .execute_layer_threaded(layer, &current, weights.weight(i), 2)
                    .unwrap()
                    .output
            };
            finish_layer_output(layer, &mut out, weights.bias(i));
            current = out;
        }
        assert_eq!(run.output, current, "network path diverged from hand chain");
    }

    #[test]
    fn bias_is_applied_before_activation() {
        let net = NetworkBuilder::new("biased", Shape::new_2d(1, 3, 3))
            .conv("c", 1, ConvParams::conv_2d(1, 1, 0), Activation::Relu)
            .build()
            .unwrap();
        // Identity 1×1 kernel; bias -2 pushes small positives below zero, so
        // Relu(x + b) must clamp them (activation-after-bias ordering).
        let weights = NetworkWeights::new(&net, vec![Tensor::filled_filter(1, 1, 1, 1, 1, 1.0)])
            .unwrap()
            .with_bias(0, vec![-2.0])
            .unwrap();
        let input = Tensor::from_fn_2d(1, 3, 3, |_, y, x| (y * 3 + x) as f32);
        let run = GanaxMachine::paper()
            .execute_network(&net, &input, &weights)
            .unwrap();
        let expected = Tensor::from_fn_2d(1, 3, 3, |_, y, x| ((y * 3 + x) as f32 - 2.0).max(0.0));
        assert_eq!(run.output, expected);
        let reference = reference_network_forward(&net, &input, &weights).unwrap();
        assert_eq!(run.output, reference);
    }

    #[test]
    fn rejects_mismatched_weight_bundles() {
        let net = toy_network();
        // Too few tensors.
        assert!(matches!(
            NetworkWeights::new(&net, vec![Tensor::zeros(Shape::new_2d(1, 1, 1))]),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Wrong shape for the first layer.
        let mut tensors: Vec<Tensor> = net
            .layers()
            .iter()
            .map(|l| Tensor::zeros(NetworkWeights::expected_shape(l)))
            .collect();
        tensors[1] = Tensor::zeros(Shape::filter(1, 1, 1, 2, 2));
        assert!(matches!(
            NetworkWeights::new(&net, tensors),
            Err(MachineError::ShapeMismatch { .. })
        ));
        // Bad bias length.
        let weights = toy_weights(&net, 1);
        assert!(matches!(
            weights.clone().with_bias(1, vec![0.0; 99]),
            Err(MachineError::ShapeMismatch { .. })
        ));
        assert!(weights.clone().with_bias(1, vec![0.0; 3]).is_ok());
        // Bad input shape at execution time.
        let input = Tensor::zeros(Shape::new_2d(2, 1, 1));
        assert!(matches!(
            GanaxMachine::paper().execute_network(&net, &input, &weights),
            Err(MachineError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn cross_check_agrees_with_the_analytic_model() {
        let net = toy_network();
        let weights = toy_weights(&net, 59);
        let input = xorshift_tensor(net.input_shape(), 61);
        let run = GanaxMachine::paper()
            .execute_network(&net, &input, &weights)
            .unwrap();
        let checks = crate::GanaxModel::paper().cross_check(&net, &run);
        assert_eq!(checks.len(), net.layers().len());
        for check in &checks {
            assert!(
                check.is_consistent(),
                "{}: analytic {} MACs vs simulated {}",
                check.layer,
                check.analytical_macs,
                check.simulated_macs
            );
            if !check.host {
                assert!(check.analytical_cycles > 0);
            }
        }
    }

    #[test]
    fn balance_and_throughput_are_reported() {
        let net = toy_network();
        let weights = toy_weights(&net, 41);
        let input = xorshift_tensor(net.input_shape(), 43);
        let run = GanaxMachine::paper()
            .execute_network_threaded(&net, &input, &weights, 2)
            .unwrap();
        for layer in run.machine_layers() {
            assert!(
                layer.balance > 0.0 && layer.balance <= 1.0,
                "{}",
                layer.name
            );
        }
        assert!(run.average_balance() > 0.0);
        assert!(run.cycles_per_second() > 0.0);
        assert!(run.array_cycles(256) >= 1);
        assert!(run.array_cycles(256) <= run.total_busy_pe_cycles());
    }
}
