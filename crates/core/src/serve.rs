//! The async serving front-end: an admission queue with dynamic batching and
//! multi-model residency over the compile-once [`InferenceEngine`].
//!
//! [`CompiledNetwork`] (PR 5) made the expensive half of serving — planning —
//! a one-time cost; this module puts the deployment-scale admission layer on
//! top, the ROADMAP's "one process, many models, many clients, bounded tails"
//! story:
//!
//! * **submit/poll and blocking-wait APIs** — [`Server::submit`] enqueues a
//!   request from any client thread and returns a [`Ticket`]; the ticket is
//!   polled ([`Ticket::poll`]) or waited on ([`Ticket::wait`],
//!   [`Ticket::wait_timeout`]). [`Server::run`] is the blocking convenience
//!   (submit + wait). Many client threads share one worker pool.
//! * **dynamic batching** — a dedicated batcher thread coalesces waiting
//!   requests for the *same model* into [`InferenceEngine::execute_batch`]
//!   waves, sized by a configurable latency budget
//!   ([`ServeConfig::batch_window`]) and cap ([`ServeConfig::max_batch`]).
//!   Batched execution is bit-identical per element to solo execution (the
//!   PR 5 property), so coalescing changes *when* work runs, never *what* it
//!   computes.
//! * **multi-model residency** — several models live behind one pool. The
//!   plan cache keys [`CompiledNetwork`] artifacts by `(network fingerprint,
//!   config fingerprint)` ([`NetworkWeights::fingerprint`],
//!   [`GanaxConfig::fingerprint`](crate::GanaxConfig::fingerprint)) with LRU
//!   eviction at [`ServeConfig::plan_cache_capacity`]; an evicted model is
//!   transparently recompiled on its next wave (the round-trip is counted in
//!   [`ServeStats::plan_builds`] and surfaces in [`Response::plan_seconds`]).
//! * **bounded admission** — the queue holds at most
//!   [`ServeConfig::queue_capacity`] requests; saturation returns the typed
//!   [`ServeError::QueueFull`] instead of blocking the client (backpressure,
//!   not deadlock).
//! * **shutdown liveness** — dropping the [`Server`] finishes the in-flight
//!   wave, resolves every queued ticket with [`ServeError::Cancelled`], and
//!   joins the batcher. A dead worker pool
//!   ([`InferenceEngine::shut_down_pool`], or a mid-task panic) resolves
//!   tickets with a typed [`ServeError::Engine`] through the engine's
//!   pool-death timeout path — tickets never hang.
//! * **self-healing under faults** — transient wave failures (a worker panic
//!   the engine's supervisor recovered from, NaN-poisoned outputs, a pool
//!   hiccup) are retried with backoff up to [`ServeConfig::max_retries`]; a
//!   retried wave re-executes in a fresh fault epoch, so its responses are
//!   bit-identical to a fault-free run. Per-request deadlines
//!   ([`ServeConfig::request_deadline`]) resolve overdue tickets with the
//!   typed [`ServeError::DeadlineExceeded`], and a per-model **circuit
//!   breaker** ([`ServeConfig::breaker_threshold`] consecutive final
//!   failures) sheds load with [`ServeError::ModelUnhealthy`] until a
//!   cooldown probe succeeds. [`Server::health`] snapshots pool liveness and
//!   every breaker; [`Server::stats`] counts retries, respawns, requeues,
//!   deadline misses and breaker activity. Every path resolves tickets with
//!   typed errors — the batcher itself never panics.
//!
//! # Example
//!
//! ```
//! use ganax::serve::{ServeConfig, Server};
//! use ganax::{GanaxMachine, InferenceEngine, NetworkWeights};
//! use ganax_models::{Activation, NetworkBuilder};
//! use ganax_tensor::{ConvParams, Shape, Tensor};
//!
//! let net = NetworkBuilder::new("toy", Shape::new_2d(1, 4, 4))
//!     .tconv("up", 1, ConvParams::transposed_2d(5, 2, 2), Activation::Relu)
//!     .build()
//!     .unwrap();
//! let weights =
//!     NetworkWeights::new(&net, vec![Tensor::filled_filter(1, 1, 1, 5, 5, 0.5)]).unwrap();
//!
//! let engine = InferenceEngine::new(GanaxMachine::paper(), 2);
//! let server = Server::new(engine, ServeConfig::default()).unwrap();
//! let model = server.register(&net, &weights).unwrap();
//!
//! // Async: submit from any thread, wait on the ticket.
//! let input = Tensor::filled(net.input_shape(), 1.0);
//! let ticket = server.submit(model, input.clone()).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.model, "toy");
//! assert_eq!(response.plan_seconds, 0.0, "registration primed the plan cache");
//!
//! // Blocking convenience; outputs are bit-identical however they are served.
//! let again = server.run(model, input).unwrap();
//! assert_eq!(again.output, response.output);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ganax_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use ganax_models::Network;
use ganax_tensor::{Shape, Tensor};

use crate::config::IntegrityMode;
use crate::engine::{lock_unpoisoned, CompiledNetwork, InferenceEngine};
use crate::machine::MachineError;
use crate::network::NetworkWeights;

/// Monotonic source of server identities, so a [`ModelHandle`] issued by one
/// server is rejected (typed, not silently misrouted) by every other.
static SERVER_IDS: AtomicU64 = AtomicU64::new(1);

/// Errors of the serving front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The [`ServeConfig`] is invalid (a zero capacity or batch bound).
    Config {
        /// Description of the invalid field.
        detail: String,
    },
    /// The [`ModelHandle`] was not issued by this server.
    UnknownModel {
        /// Description of the mismatch.
        detail: String,
    },
    /// The input tensor does not match the model's input shape.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// The admission queue is at capacity — backpressure, retry later.
    QueueFull {
        /// The configured [`ServeConfig::queue_capacity`].
        capacity: usize,
    },
    /// The server is shutting down and accepts no new requests.
    ShuttingDown,
    /// The request was admitted but the server shut down before serving it.
    Cancelled,
    /// The wave executing this request failed in the engine (including the
    /// pool-death path: every worker thread gone), after any configured
    /// retries were exhausted.
    Engine {
        /// The underlying machine error.
        error: MachineError,
    },
    /// The request outlived its [`ServeConfig::request_deadline`] — either
    /// waiting in the queue or riding a wave that finished too late.
    DeadlineExceeded {
        /// Name of the model the request was submitted against.
        model: String,
        /// The configured deadline that was exceeded.
        deadline: Duration,
    },
    /// The model's circuit breaker is open: its last
    /// [`ServeConfig::breaker_threshold`] waves all failed, and the cooldown
    /// probe has not yet succeeded. Other models are unaffected.
    ModelUnhealthy {
        /// Name of the unhealthy model.
        model: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { detail } => write!(f, "invalid serve config: {detail}"),
            ServeError::UnknownModel { detail } => write!(f, "unknown model: {detail}"),
            ServeError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests)")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Cancelled => write!(f, "request cancelled by server shutdown"),
            ServeError::Engine { error } => write!(f, "wave execution failed: {error}"),
            ServeError::DeadlineExceeded { model, deadline } => write!(
                f,
                "request for model `{model}` exceeded its {:.1} ms deadline",
                deadline.as_secs_f64() * 1e3
            ),
            ServeError::ModelUnhealthy { model } => {
                write!(f, "model `{model}` is unhealthy (circuit breaker open)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission-layer tuning of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Most requests coalesced into one [`InferenceEngine::execute_batch`]
    /// wave (≥ 1; 1 disables batching — serial per-request dispatch).
    pub max_batch: usize,
    /// The latency budget a wave leader waits for same-model company before
    /// dispatching. Larger budgets trade first-request latency for bigger
    /// waves; `Duration::ZERO` dispatches whatever is already queued.
    pub batch_window: Duration,
    /// Bound of the admission queue (≥ 1). A full queue rejects submissions
    /// with [`ServeError::QueueFull`] instead of blocking the client.
    pub queue_capacity: usize,
    /// Most [`CompiledNetwork`] artifacts resident at once (≥ 1). The
    /// least-recently-used artifact is evicted beyond this; evicted models
    /// recompile transparently on their next wave.
    pub plan_cache_capacity: usize,
    /// Per-request latency bound. A request that outlives it — queued or
    /// riding a late wave — resolves with [`ServeError::DeadlineExceeded`].
    /// `Duration::ZERO` (the default) disables deadlines.
    pub request_deadline: Duration,
    /// Times a wave is re-executed after a *transient* engine failure
    /// ([`MachineError::is_transient`]: a worker panic, a non-finite output,
    /// a pool hiccup) before the failure becomes final. A retried wave runs
    /// in a fresh fault epoch, so its responses are bit-identical to a
    /// fault-free run. 0 disables retries.
    pub max_retries: u32,
    /// Sleep between retry attempts of one wave.
    pub retry_backoff: Duration,
    /// Consecutive *final* wave failures that open a model's circuit
    /// breaker; an open breaker rejects submissions with
    /// [`ServeError::ModelUnhealthy`] until a post-cooldown probe wave
    /// succeeds. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting one probe request.
    pub breaker_cooldown: Duration,
    /// ABFT computation-integrity policy override. [`IntegrityMode::Off`]
    /// (the default) defers to the engine's machine-level configuration —
    /// byte-identical serving to a stack without the integrity layer; a
    /// non-`Off` mode is applied to the engine at [`Server::new`], before
    /// any artifact is compiled.
    pub integrity: IntegrityMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_capacity: 256,
            plan_cache_capacity: 4,
            request_deadline: Duration::ZERO,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(100),
            integrity: IntegrityMode::Off,
        }
    }
}

impl ServeConfig {
    /// Validates the bounds.
    fn validate(&self) -> Result<(), ServeError> {
        for (label, value) in [
            ("max_batch", self.max_batch),
            ("queue_capacity", self.queue_capacity),
            ("plan_cache_capacity", self.plan_cache_capacity),
        ] {
            if value == 0 {
                return Err(ServeError::Config {
                    detail: format!("{label} must be at least 1"),
                });
            }
        }
        Ok(())
    }
}

/// A model registered with a [`Server`] — cheap to copy, valid only for the
/// issuing server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelHandle {
    server: u64,
    index: usize,
}

/// One admitted request waiting in the queue.
struct Request {
    model: usize,
    input: Tensor,
    submitted: Instant,
    reply: Sender<Result<Response, ServeError>>,
}

/// The response carried by a resolved [`Ticket`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Name of the model that served the request.
    pub model: String,
    /// The inference output — bit-identical to a fresh
    /// [`GanaxMachine::execute_network`](crate::GanaxMachine::execute_network)
    /// of the same input, whatever wave the request rode in.
    pub output: Tensor,
    /// Identifier of the wave that served this request (1-based, per server).
    pub wave: u64,
    /// Requests coalesced into that wave (1 = served solo).
    pub wave_size: usize,
    /// Seconds the request waited between submission and wave dispatch.
    pub queue_seconds: f64,
    /// Wall-clock seconds of the wave's batched execution.
    pub exec_seconds: f64,
    /// Planning seconds charged to this request's wave: `0.0` when the plan
    /// cache was hit (the warm steady state), the recompile cost after an
    /// eviction round-trip otherwise.
    pub plan_seconds: f64,
    /// End-to-end seconds from submission to resolution.
    pub latency_seconds: f64,
}

/// The asynchronous receipt for one submitted request.
///
/// A ticket resolves exactly once — with the [`Response`], or with a typed
/// [`ServeError`] (cancellation on shutdown, a wave failure). Resolution is
/// guaranteed by construction: if the server (or its batcher) goes away
/// without replying, the channel disconnects and the ticket reports
/// [`ServeError::Cancelled`] instead of hanging.
pub struct Ticket {
    model: String,
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Name of the model the request was submitted against.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Non-blocking check: `None` while the request is still queued or
    /// executing, `Some(result)` once resolved. After the resolution has
    /// been taken (by any method), later calls report
    /// [`ServeError::Cancelled`].
    pub fn poll(&self) -> Option<Result<Response, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::Cancelled)),
        }
    }

    /// Blocks until the ticket resolves.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Cancelled))
    }

    /// Blocks up to `timeout`: `None` when the request is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Cancelled)),
        }
    }
}

/// Aggregate activity of a [`Server`] since construction (a consistent
/// snapshot from [`Server::stats`]).
///
/// Counter conservation is a serving invariant: `counts`, `busy_pe_cycles`
/// and `work_units` equal the sums a fresh
/// [`GanaxMachine::execute_network`](crate::GanaxMachine::execute_network)
/// would have produced per completed request, because batched waves aggregate
/// exactly the per-element activity (the PR 5 property) — the stress suite
/// asserts this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Submissions rejected with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests completed with a [`Response`].
    pub completed: u64,
    /// Admitted requests cancelled by shutdown.
    pub cancelled: u64,
    /// Admitted requests whose wave failed in the engine *after* exhausting
    /// any retries — final failures only; recovered retries are counted in
    /// [`ServeStats::retries`] instead.
    pub failed: u64,
    /// Wave re-executions after transient engine failures.
    pub retries: u64,
    /// Pool workers respawned by the engine's supervisor after crashes.
    pub respawns: u64,
    /// Shards requeued by the engine after their worker panicked mid-task.
    pub requeued_shards: u64,
    /// Requests resolved with [`ServeError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Times a model's circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Submissions rejected with [`ServeError::ModelUnhealthy`].
    pub breaker_rejections: u64,
    /// Waves dispatched.
    pub waves: u64,
    /// Requests that rode in a wave of size ≥ 2.
    pub batched_requests: u64,
    /// Largest wave dispatched.
    pub max_wave: usize,
    /// Artifacts compiled (registration, cache misses, eviction round-trips).
    pub plan_builds: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Artifacts evicted from the plan cache.
    pub cache_evictions: u64,
    /// Seconds spent planning across all builds.
    pub plan_seconds: f64,
    /// Busy PE cycles aggregated over every completed wave.
    pub busy_pe_cycles: u64,
    /// Work units aggregated over every completed wave.
    pub work_units: u64,
    /// Activity counters aggregated over every completed wave.
    pub counts: EventCounts,
    /// ABFT row-slice checksum verifications performed by the engine (0
    /// under [`IntegrityMode::Off`]).
    pub integrity_checks: u64,
    /// Row-slice verifications that failed (every failed verdict counts,
    /// including re-flags across healing rounds).
    pub integrity_violations: u64,
    /// Row slices surgically re-executed and merged back by
    /// [`IntegrityMode::VerifyAndHeal`].
    pub rows_healed: u64,
    /// Corruptions that escaped ABFT verification and were only caught by
    /// the downstream non-finite guard.
    pub integrity_undetected: u64,
}

impl ServeStats {
    /// Mean requests per dispatched wave.
    pub fn mean_wave(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        self.completed as f64 / self.waves as f64
    }

    /// Energy of the aggregated activity under a Table II model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.energy(&self.counts)
    }
}

/// The position of one model's circuit breaker (see [`Server::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests are admitted normally.
    Closed,
    /// Tripped: submissions are rejected with [`ServeError::ModelUnhealthy`]
    /// until the cooldown elapses.
    Open,
    /// Probing: the cooldown elapsed and one request was admitted; its
    /// wave's outcome closes or re-opens the breaker.
    HalfOpen,
}

/// The mutable core of one model's circuit breaker.
struct BreakerCore {
    state: CircuitState,
    /// Consecutive final wave failures since the last success.
    failures: u32,
    /// When the breaker last opened.
    opened_at: Option<Instant>,
}

impl BreakerCore {
    fn new() -> Self {
        BreakerCore {
            state: CircuitState::Closed,
            failures: 0,
            opened_at: None,
        }
    }
}

/// Health snapshot of one registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelHealth {
    /// Model name.
    pub name: String,
    /// Circuit-breaker position.
    pub circuit: CircuitState,
    /// Consecutive final wave failures since the model's last success.
    pub consecutive_failures: u32,
    /// Waves of this model that failed with a final (unhealable)
    /// [`MachineError::IntegrityViolation`], over the model's lifetime.
    pub integrity_violations: u64,
}

/// Health snapshot of the whole serving stack (see [`Server::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHealth {
    /// Whether the engine's worker pool has at least one live worker.
    pub pool_alive: bool,
    /// The pool's target worker count.
    pub pool_threads: usize,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Per-model breaker state, in registration order.
    pub models: Vec<ModelHealth>,
}

impl ServerHealth {
    /// Whether the stack can currently serve every registered model: the
    /// pool is alive and no breaker is open.
    pub fn is_healthy(&self) -> bool {
        self.pool_alive
            && self
                .models
                .iter()
                .all(|m| m.circuit == CircuitState::Closed)
    }
}

/// One registered model: everything needed to (re)compile its plan after an
/// eviction round-trip, plus its circuit breaker.
struct ModelEntry {
    name: String,
    network: Network,
    weights: NetworkWeights,
    input_shape: Shape,
    fingerprint: u64,
    breaker: Mutex<BreakerCore>,
    /// Waves that failed with a final [`MachineError::IntegrityViolation`].
    integrity_violations: AtomicU64,
}

impl ModelEntry {
    /// Admission decision: `true` to admit. An open breaker whose cooldown
    /// has elapsed transitions to [`CircuitState::HalfOpen`] and admits that
    /// one request as the probe; further requests are rejected until the
    /// probe's wave resolves.
    fn breaker_admits(&self, cooldown: Duration) -> bool {
        let mut breaker = lock_unpoisoned(&self.breaker);
        match breaker.state {
            CircuitState::Closed => true,
            CircuitState::Open => {
                let elapsed = breaker
                    .opened_at
                    .map(|at| at.elapsed())
                    .unwrap_or(Duration::MAX);
                if elapsed >= cooldown {
                    breaker.state = CircuitState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            CircuitState::HalfOpen => false,
        }
    }

    /// Records a successful wave: the breaker closes and the failure streak
    /// resets.
    fn breaker_success(&self) {
        let mut breaker = lock_unpoisoned(&self.breaker);
        breaker.state = CircuitState::Closed;
        breaker.failures = 0;
        breaker.opened_at = None;
    }

    /// Records a final wave failure. Returns `true` when this failure trips
    /// the breaker open (from closed at the threshold, or a failed probe).
    fn breaker_failure(&self, threshold: u32) -> bool {
        let mut breaker = lock_unpoisoned(&self.breaker);
        breaker.failures = breaker.failures.saturating_add(1);
        if threshold == 0 {
            return false;
        }
        match breaker.state {
            CircuitState::HalfOpen => {
                breaker.state = CircuitState::Open;
                breaker.opened_at = Some(Instant::now());
                true
            }
            CircuitState::Closed if breaker.failures >= threshold => {
                breaker.state = CircuitState::Open;
                breaker.opened_at = Some(Instant::now());
                true
            }
            _ => false,
        }
    }
}

/// One resident artifact of the plan cache.
struct CacheSlot {
    key: (u64, u64),
    artifact: Arc<CompiledNetwork>,
    last_used: u64,
}

/// The LRU plan cache: a handful of resident [`CompiledNetwork`]s, so a
/// linear scan beats any map. `tick` is the LRU clock.
struct PlanCache {
    capacity: usize,
    tick: u64,
    slots: Vec<CacheSlot>,
}

/// The admission queue shared between clients and the batcher.
#[derive(Default)]
struct AdmissionQueue {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// Everything the server's clients and batcher share.
struct ServerShared {
    id: u64,
    engine: InferenceEngine,
    config: ServeConfig,
    config_fingerprint: u64,
    models: Mutex<Vec<Arc<ModelEntry>>>,
    queue: Mutex<AdmissionQueue>,
    arrivals: Condvar,
    cache: Mutex<PlanCache>,
    stats: Mutex<ServeStats>,
}

impl ServerShared {
    /// Fetches the model's compiled artifact from the plan cache, compiling
    /// (and possibly evicting the least-recently-used resident) on a miss.
    /// Returns the artifact plus the planning seconds paid *now* (0.0 on a
    /// hit — the warm path).
    fn plan_for(&self, entry: &ModelEntry) -> Result<(Arc<CompiledNetwork>, f64), MachineError> {
        let key = (entry.fingerprint, self.config_fingerprint);
        let (artifact, plan_seconds, evictions, hit) = {
            let mut cache = lock_unpoisoned(&self.cache);
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(slot) = cache.slots.iter_mut().find(|slot| slot.key == key) {
                slot.last_used = tick;
                (Arc::clone(&slot.artifact), 0.0, 0u64, true)
            } else {
                let compiled = Arc::new(CompiledNetwork::compile(
                    self.engine.machine(),
                    &entry.network,
                    &entry.weights,
                )?);
                let plan_seconds = compiled.plan_seconds();
                cache.slots.push(CacheSlot {
                    key,
                    artifact: Arc::clone(&compiled),
                    last_used: tick,
                });
                let mut evictions = 0u64;
                while cache.slots.len() > cache.capacity {
                    let Some(oldest) = cache
                        .slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, slot)| slot.last_used)
                        .map(|(i, _)| i)
                    else {
                        break;
                    };
                    cache.slots.remove(oldest);
                    evictions += 1;
                }
                (compiled, plan_seconds, evictions, false)
            }
        };
        let mut stats = lock_unpoisoned(&self.stats);
        if hit {
            stats.cache_hits += 1;
        } else {
            stats.plan_builds += 1;
            stats.plan_seconds += plan_seconds;
            stats.cache_evictions += evictions;
        }
        drop(stats);
        Ok((artifact, plan_seconds))
    }

    /// Resolves a batch of drained requests with [`ServeError::Cancelled`].
    fn cancel(&self, requests: impl IntoIterator<Item = Request>) {
        let mut cancelled = 0u64;
        for request in requests {
            let _ = request.reply.send(Err(ServeError::Cancelled));
            cancelled += 1;
        }
        if cancelled > 0 {
            lock_unpoisoned(&self.stats).cancelled += cancelled;
        }
    }
}

/// The async serving front-end: one [`InferenceEngine`] pool, many resident
/// models, many concurrent clients. See the [module docs](self).
///
/// The server is `Sync`: share it across client threads by reference (or
/// `Arc`) and call [`Server::submit`] / [`Server::run`] concurrently.
/// Dropping it finishes the in-flight wave, cancels the queued remainder
/// (typed, never hanging) and joins the batcher and pool.
pub struct Server {
    shared: Arc<ServerShared>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds a server over an engine (taking ownership of its worker pool).
    ///
    /// # Errors
    /// Returns [`ServeError::Config`] when a capacity or batch bound is zero.
    pub fn new(mut engine: InferenceEngine, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // Apply the integrity override before the config fingerprint is
        // taken and before anything compiles: the mode is part of the
        // machine configuration every artifact records.
        if config.integrity != IntegrityMode::Off {
            engine.set_integrity(config.integrity);
        }
        let config_fingerprint = engine.machine().config().fingerprint();
        let shared = Arc::new(ServerShared {
            id: SERVER_IDS.fetch_add(1, Ordering::Relaxed),
            engine,
            config,
            config_fingerprint,
            models: Mutex::new(Vec::new()),
            queue: Mutex::new(AdmissionQueue::default()),
            arrivals: Condvar::new(),
            cache: Mutex::new(PlanCache {
                capacity: config.plan_cache_capacity,
                tick: 0,
                slots: Vec::new(),
            }),
            stats: Mutex::new(ServeStats::default()),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        Ok(Server {
            shared,
            batcher: Some(batcher),
        })
    }

    /// The admission configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// The engine whose pool serves every model.
    pub fn engine(&self) -> &InferenceEngine {
        &self.shared.engine
    }

    /// Registers a model for serving: validates it by compiling its plan
    /// (priming the plan cache) and returns the handle requests are submitted
    /// against. Models may be registered at any time, including while other
    /// models are being served.
    ///
    /// # Errors
    /// Returns [`ServeError::Engine`] when the model does not compile for the
    /// engine's configuration (mismatched weights, unsupported layers).
    pub fn register(
        &self,
        network: &Network,
        weights: &NetworkWeights,
    ) -> Result<ModelHandle, ServeError> {
        let entry = Arc::new(ModelEntry {
            name: network.name().to_string(),
            network: network.clone(),
            weights: weights.clone(),
            input_shape: network.input_shape(),
            fingerprint: weights.fingerprint(network),
            breaker: Mutex::new(BreakerCore::new()),
            integrity_violations: AtomicU64::new(0),
        });
        self.shared
            .plan_for(&entry)
            .map_err(|error| ServeError::Engine { error })?;
        let mut models = lock_unpoisoned(&self.shared.models);
        models.push(entry);
        Ok(ModelHandle {
            server: self.shared.id,
            index: models.len() - 1,
        })
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        lock_unpoisoned(&self.shared.models).len()
    }

    /// Looks a handle up, validating provenance.
    fn entry(&self, model: ModelHandle) -> Result<Arc<ModelEntry>, ServeError> {
        if model.server != self.shared.id {
            return Err(ServeError::UnknownModel {
                detail: "handle was issued by a different server".into(),
            });
        }
        lock_unpoisoned(&self.shared.models)
            .get(model.index)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                detail: format!("model index {} out of range", model.index),
            })
    }

    /// Submits one inference request — non-blocking admission.
    ///
    /// # Errors
    /// Returns [`ServeError::UnknownModel`] for a foreign handle,
    /// [`ServeError::ShapeMismatch`] when the input does not match the
    /// model, [`ServeError::ModelUnhealthy`] while the model's circuit
    /// breaker is open, [`ServeError::QueueFull`] when the admission queue
    /// is at capacity (backpressure — retry later), and
    /// [`ServeError::ShuttingDown`] during shutdown.
    pub fn submit(&self, model: ModelHandle, input: Tensor) -> Result<Ticket, ServeError> {
        let entry = self.entry(model)?;
        if input.shape() != entry.input_shape {
            return Err(ServeError::ShapeMismatch {
                detail: format!(
                    "input {} != model `{}` input {}",
                    input.shape(),
                    entry.name,
                    entry.input_shape
                ),
            });
        }
        if !entry.breaker_admits(self.shared.config.breaker_cooldown) {
            lock_unpoisoned(&self.shared.stats).breaker_rejections += 1;
            return Err(ServeError::ModelUnhealthy {
                model: entry.name.clone(),
            });
        }
        let (reply, rx) = channel();
        let admitted = {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if queue.pending.len() >= self.shared.config.queue_capacity {
                false
            } else {
                queue.pending.push_back(Request {
                    model: model.index,
                    input,
                    submitted: Instant::now(),
                    reply,
                });
                true
            }
        };
        let mut stats = lock_unpoisoned(&self.shared.stats);
        if admitted {
            stats.submitted += 1;
            drop(stats);
            self.shared.arrivals.notify_all();
            Ok(Ticket {
                model: entry.name.clone(),
                rx,
            })
        } else {
            stats.rejected += 1;
            Err(ServeError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            })
        }
    }

    /// Blocking convenience: submit and wait for the response.
    ///
    /// # Errors
    /// As [`Server::submit`], plus any error the wave resolves the ticket
    /// with.
    pub fn run(&self, model: ModelHandle, input: Tensor) -> Result<Response, ServeError> {
        self.submit(model, input)?.wait()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).pending.len()
    }

    /// Compiled artifacts currently resident in the plan cache.
    pub fn resident_plans(&self) -> usize {
        lock_unpoisoned(&self.shared.cache).slots.len()
    }

    /// A consistent snapshot of the server's aggregate activity, including
    /// the engine's supervision counters (respawned workers, requeued
    /// shards).
    pub fn stats(&self) -> ServeStats {
        let mut stats = lock_unpoisoned(&self.shared.stats).clone();
        stats.respawns = self.shared.engine.respawns();
        stats.requeued_shards = self.shared.engine.requeued_shards();
        stats.integrity_checks = self.shared.engine.integrity_checks();
        stats.integrity_violations = self.shared.engine.integrity_violations();
        stats.rows_healed = self.shared.engine.rows_healed();
        stats.integrity_undetected = self.shared.engine.integrity_undetected();
        stats
    }

    /// A health snapshot: pool liveness, queue depth and every model's
    /// circuit-breaker position.
    pub fn health(&self) -> ServerHealth {
        let models = lock_unpoisoned(&self.shared.models)
            .iter()
            .map(|entry| {
                let breaker = lock_unpoisoned(&entry.breaker);
                ModelHealth {
                    name: entry.name.clone(),
                    circuit: breaker.state,
                    consecutive_failures: breaker.failures,
                    integrity_violations: entry.integrity_violations.load(Ordering::Relaxed),
                }
            })
            .collect();
        ServerHealth {
            pool_alive: self.shared.engine.pool_is_alive(),
            pool_threads: self.shared.engine.threads(),
            queue_depth: self.queue_depth(),
            models,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.arrivals.notify_all();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

/// The batcher: the single thread that turns the admission queue into
/// [`InferenceEngine::execute_batch`] waves.
///
/// Each iteration claims a wave leader, coalesces same-model requests up to
/// the batch cap within the latency budget (other models stay queued, in
/// order), and dispatches. On shutdown the in-flight wave completes and the
/// queued remainder resolves with [`ServeError::Cancelled`].
fn batcher_loop(shared: &Arc<ServerShared>) {
    let mut wave_id = 0u64;
    loop {
        // Claim a wave leader — or drain and exit on shutdown.
        let leader = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if queue.shutdown {
                    let drained = std::mem::take(&mut queue.pending);
                    drop(queue);
                    shared.cancel(drained);
                    return;
                }
                if let Some(request) = queue.pending.pop_front() {
                    break request;
                }
                queue = shared
                    .arrivals
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let model = leader.model;
        let mut wave = vec![leader];

        // Coalesce: sweep waiting same-model requests, then wait out the
        // remaining latency budget for more to arrive. Shutdown stops the
        // wait but the claimed wave still executes.
        let deadline = Instant::now() + shared.config.batch_window;
        {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                let mut i = 0;
                while wave.len() < shared.config.max_batch && i < queue.pending.len() {
                    if queue.pending[i].model == model {
                        match queue.pending.remove(i) {
                            Some(request) => wave.push(request),
                            None => break,
                        }
                    } else {
                        i += 1;
                    }
                }
                if wave.len() >= shared.config.max_batch || queue.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = shared
                    .arrivals
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        wave_id += 1;
        // Last-resort containment: every failure path inside `run_wave` is
        // typed, but if something below it ever panics anyway, the wave's
        // reply senders drop (tickets resolve `Cancelled`) and the batcher
        // itself survives to serve the next wave.
        let wave_len = wave.len() as u64;
        if catch_unwind(AssertUnwindSafe(|| run_wave(shared, wave_id, model, wave))).is_err() {
            let mut stats = lock_unpoisoned(&shared.stats);
            stats.failed += wave_len;
        }
    }
}

/// Executes one coalesced wave and resolves its tickets: deadline-checks at
/// formation, retries transient engine failures with backoff (each retry is
/// a fresh fault epoch, so a recovered wave is bit-identical to a fault-free
/// one), records the outcome on the model's circuit breaker, and
/// deadline-checks again at retirement. Every path resolves every ticket
/// with a typed result.
fn run_wave(shared: &ServerShared, wave_id: u64, model: usize, wave: Vec<Request>) {
    let Some(entry) = lock_unpoisoned(&shared.models).get(model).map(Arc::clone) else {
        // Unreachable by construction (requests carry validated indices);
        // resolve rather than panic if it ever happens.
        shared.cancel(wave);
        return;
    };
    let wave_start = Instant::now();
    let request_deadline = shared.config.request_deadline;
    let mut inputs = Vec::with_capacity(wave.len());
    let mut replies = Vec::with_capacity(wave.len());
    let mut expired = 0u64;
    for request in wave {
        // A request that already outlived its deadline in the queue is
        // resolved here instead of burning pool time on a dead answer.
        if !request_deadline.is_zero() && request.submitted.elapsed() > request_deadline {
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded {
                model: entry.name.clone(),
                deadline: request_deadline,
            }));
            expired += 1;
            continue;
        }
        inputs.push(request.input);
        replies.push((request.submitted, request.reply));
    }
    if expired > 0 {
        lock_unpoisoned(&shared.stats).deadline_exceeded += expired;
    }
    if inputs.is_empty() {
        return;
    }

    let fail = |error: MachineError, replies: Vec<(Instant, Sender<_>)>| {
        if matches!(error, MachineError::IntegrityViolation { .. }) {
            // A final integrity violation: detection worked but healing
            // could not repair it (or Verify mode fails fast) — recorded
            // per model so `health()` can name the corrupted model.
            entry.integrity_violations.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut stats = lock_unpoisoned(&shared.stats);
            stats.failed += replies.len() as u64;
            if entry.breaker_failure(shared.config.breaker_threshold) {
                stats.breaker_trips += 1;
            }
        }
        for (_, reply) in replies {
            let _ = reply.send(Err(ServeError::Engine {
                error: error.clone(),
            }));
        }
    };

    let (artifact, plan_seconds) = match shared.plan_for(&entry) {
        Ok(planned) => planned,
        Err(error) => return fail(error, replies),
    };
    let mut attempt = 0u32;
    let batch = loop {
        match shared.engine.execute_batch(&artifact, &inputs) {
            Ok(batch) => break batch,
            Err(error) if error.is_transient() && attempt < shared.config.max_retries => {
                attempt += 1;
                lock_unpoisoned(&shared.stats).retries += 1;
                std::thread::sleep(shared.config.retry_backoff);
            }
            Err(error) => return fail(error, replies),
        }
    };
    entry.breaker_success();

    let wave_size = replies.len();
    let mut completed = 0u64;
    let mut late = 0u64;
    let mut sends = Vec::with_capacity(wave_size);
    for ((submitted, reply), output) in replies.into_iter().zip(batch.outputs) {
        // The work is done, but the latency contract is not met: a response
        // after the deadline is as good as none.
        if !request_deadline.is_zero() && submitted.elapsed() > request_deadline {
            late += 1;
            sends.push((
                reply,
                Err(ServeError::DeadlineExceeded {
                    model: entry.name.clone(),
                    deadline: request_deadline,
                }),
            ));
            continue;
        }
        completed += 1;
        sends.push((
            reply,
            Ok(Response {
                model: entry.name.clone(),
                output,
                wave: wave_id,
                wave_size,
                queue_seconds: wave_start
                    .saturating_duration_since(submitted)
                    .as_secs_f64(),
                exec_seconds: batch.wall_seconds,
                plan_seconds,
                latency_seconds: submitted.elapsed().as_secs_f64(),
            }),
        ));
    }
    {
        let mut stats = lock_unpoisoned(&shared.stats);
        stats.waves += 1;
        stats.completed += completed;
        stats.deadline_exceeded += late;
        stats.max_wave = stats.max_wave.max(wave_size);
        if wave_size > 1 {
            stats.batched_requests += wave_size as u64;
        }
        stats.busy_pe_cycles += batch.busy_pe_cycles;
        stats.work_units += batch.work_units;
        stats.counts += batch.counts;
    }
    for (reply, result) in sends {
        let _ = reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GanaxMachine;
    use ganax_models::{Activation, NetworkBuilder};
    use ganax_tensor::ConvParams;

    fn toy_network(name: &str, mid_channels: usize) -> Network {
        NetworkBuilder::new(name, Shape::new_2d(1, 4, 4))
            .tconv(
                "up",
                mid_channels,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .conv("smooth", 1, ConvParams::conv_2d(3, 1, 1), Activation::None)
            .build()
            .unwrap()
    }

    fn toy_weights(network: &Network, seed: u64) -> NetworkWeights {
        let tensors = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| Tensor::deterministic(NetworkWeights::expected_shape(l), seed + i as u64))
            .collect();
        NetworkWeights::new(network, tensors).unwrap()
    }

    fn toy_server(threads: usize, config: ServeConfig) -> Server {
        Server::new(InferenceEngine::new(GanaxMachine::paper(), threads), config).unwrap()
    }

    #[test]
    fn rejects_invalid_configs() {
        for bad in [
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                plan_cache_capacity: 0,
                ..ServeConfig::default()
            },
        ] {
            let engine = InferenceEngine::new(GanaxMachine::paper(), 1);
            assert!(matches!(
                Server::new(engine, bad),
                Err(ServeError::Config { .. })
            ));
        }
    }

    #[test]
    fn serves_bit_identically_and_reports_warm_plans() {
        let network = toy_network("toy-a", 2);
        let weights = toy_weights(&network, 5);
        let server = toy_server(2, ServeConfig::default());
        let model = server.register(&network, &weights).unwrap();
        let machine = GanaxMachine::paper();
        for k in 0..3u64 {
            let input = Tensor::deterministic(network.input_shape(), 40 + k);
            let response = server.run(model, input.clone()).unwrap();
            let fresh = machine
                .execute_network_threaded(&network, &input, &weights, 2)
                .unwrap();
            assert_eq!(response.output, fresh.output, "request {k}");
            assert_eq!(response.plan_seconds, 0.0, "registration primed the cache");
            assert_eq!(response.model, "toy-a");
            assert!(response.wave >= 1 && response.wave_size >= 1);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.plan_builds, 1, "one build at registration");
        assert!(stats.cache_hits >= 3);
    }

    #[test]
    fn rejects_foreign_handles_and_bad_shapes() {
        let network = toy_network("toy-b", 1);
        let weights = toy_weights(&network, 9);
        let server = toy_server(1, ServeConfig::default());
        let other = toy_server(1, ServeConfig::default());
        let model = server.register(&network, &weights).unwrap();
        assert!(matches!(
            other.submit(model, Tensor::zeros(network.input_shape())),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            server.submit(model, Tensor::zeros(Shape::new_2d(2, 4, 4))),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn eviction_round_trips_recompile_transparently() {
        let a = toy_network("toy-a", 1);
        let b = toy_network("toy-b", 2);
        let wa = toy_weights(&a, 11);
        let wb = toy_weights(&b, 13);
        let server = toy_server(
            1,
            ServeConfig {
                plan_cache_capacity: 1,
                ..ServeConfig::default()
            },
        );
        let ha = server.register(&a, &wa).unwrap();
        let hb = server.register(&b, &wb).unwrap();
        assert_eq!(server.resident_plans(), 1, "capacity-1 cache");
        let machine = GanaxMachine::paper();
        for k in 0..2u64 {
            for (net, weights, handle) in [(&a, &wa, ha), (&b, &wb, hb)] {
                let input = Tensor::deterministic(net.input_shape(), 60 + k);
                let response = server.run(handle, input.clone()).unwrap();
                let fresh = machine
                    .execute_network_threaded(net, &input, weights, 1)
                    .unwrap();
                assert_eq!(response.output, fresh.output);
            }
        }
        let stats = server.stats();
        assert!(
            stats.cache_evictions >= 3,
            "alternating models through a capacity-1 cache must evict: {stats:?}"
        );
        assert!(stats.plan_builds >= 4, "evicted models recompile");
    }

    use ganax_sim::{FaultKind, FaultSpec};

    fn faulty_server(threads: usize, config: ServeConfig, spec: FaultSpec) -> Server {
        let machine = GanaxMachine::new(crate::GanaxConfig::paper().with_fault(spec).unwrap());
        Server::new(InferenceEngine::new(machine, threads), config).unwrap()
    }

    #[test]
    fn transient_nan_poison_is_retried_and_bit_identical() {
        let network = toy_network("toy-r", 1);
        let weights = toy_weights(&network, 17);
        let input = Tensor::deterministic(network.input_shape(), 21);
        let clean = {
            let server = toy_server(2, ServeConfig::default());
            let model = server.register(&network, &weights).unwrap();
            server.run(model, input.clone()).unwrap().output
        };
        // Poison the second layer (its activation is `None`, so NaN survives
        // to the output guard); non-persistent, so the retry epoch is clean.
        let spec = FaultSpec {
            layer: 1,
            ..FaultSpec::seeded(5, 1_000_000, FaultKind::NAN_POISON)
        };
        let server = faulty_server(2, ServeConfig::default(), spec);
        let model = server.register(&network, &weights).unwrap();
        let response = server.run(model, input).unwrap();
        assert_eq!(response.output, clean, "retried wave output");
        let stats = server.stats();
        assert!(stats.retries >= 1, "the failure was retried: {stats:?}");
        assert_eq!(stats.failed, 0, "the failure was masked");
        assert_eq!(stats.completed, 1);
        assert!(server.health().is_healthy());
    }

    #[test]
    fn persistent_failures_trip_the_breaker() {
        let network = toy_network("toy-p", 1);
        let weights = toy_weights(&network, 19);
        let input = Tensor::deterministic(network.input_shape(), 23);
        let spec = FaultSpec {
            layer: 1,
            persistent: true,
            ..FaultSpec::seeded(5, 1_000_000, FaultKind::NAN_POISON)
        };
        let config = ServeConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(3600),
            max_retries: 1,
            retry_backoff: Duration::ZERO,
            ..ServeConfig::default()
        };
        let server = faulty_server(1, config, spec);
        let model = server.register(&network, &weights).unwrap();
        for k in 0..2 {
            assert!(
                matches!(
                    server.run(model, input.clone()),
                    Err(ServeError::Engine {
                        error: MachineError::NonFiniteOutput { .. }
                    })
                ),
                "persistent poison must fail every attempt (request {k})"
            );
        }
        let health = server.health();
        assert_eq!(health.models[0].circuit, CircuitState::Open);
        assert_eq!(health.models[0].consecutive_failures, 2);
        assert!(!health.is_healthy());
        assert!(matches!(
            server.submit(model, input),
            Err(ServeError::ModelUnhealthy { .. })
        ));
        let stats = server.stats();
        assert_eq!(stats.failed, 2, "final failures only");
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_rejections, 1);
        assert!(stats.retries >= 2, "each wave retried before failing");
    }

    #[test]
    fn the_breaker_state_machine_probes_and_recovers() {
        let network = toy_network("toy-m", 1);
        let weights = toy_weights(&network, 29);
        let entry = ModelEntry {
            name: "toy-m".into(),
            network: network.clone(),
            weights,
            input_shape: network.input_shape(),
            fingerprint: 0,
            breaker: Mutex::new(BreakerCore::new()),
            integrity_violations: AtomicU64::new(0),
        };
        let hour = Duration::from_secs(3600);
        assert!(entry.breaker_admits(hour), "closed admits");
        assert!(!entry.breaker_failure(2), "first failure stays closed");
        assert!(entry.breaker_failure(2), "second failure trips");
        assert!(!entry.breaker_admits(hour), "open rejects within cooldown");
        assert!(
            entry.breaker_admits(Duration::ZERO),
            "cooldown admits probe"
        );
        assert!(!entry.breaker_admits(Duration::ZERO), "one probe at a time");
        assert!(entry.breaker_failure(2), "failed probe re-trips");
        assert!(entry.breaker_admits(Duration::ZERO), "next probe");
        entry.breaker_success();
        assert!(entry.breaker_admits(hour), "successful probe closes");
        assert!(
            !entry.breaker_failure(0),
            "threshold 0 disables the breaker"
        );
        assert!(entry.breaker_admits(hour));
    }

    #[test]
    fn expired_requests_resolve_with_typed_deadline_errors() {
        let network = toy_network("toy-d", 1);
        let weights = toy_weights(&network, 31);
        let config = ServeConfig {
            request_deadline: Duration::from_nanos(1),
            ..ServeConfig::default()
        };
        let server = toy_server(1, config);
        let model = server.register(&network, &weights).unwrap();
        match server.run(model, Tensor::deterministic(network.input_shape(), 37)) {
            Err(ServeError::DeadlineExceeded { model, .. }) => assert_eq!(model, "toy-d"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed, 0, "a deadline miss is not an engine failure");
    }
}
