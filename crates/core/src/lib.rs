//! GANAX: a unified MIMD-SIMD accelerator for generative adversarial networks.
//!
//! This crate is the primary contribution of the reproduction: the GANAX
//! accelerator model itself, built on the substrates of the sibling crates.
//!
//! * [`compiler`](GanaxCompiler) lowers a layer description into the µop
//!   program of Section IV: access-engine configurations, per-PV local µop
//!   images and the global SIMD / MIMD-SIMD µop sequence.
//! * [`machine`](GanaxMachine) executes layers cycle-by-cycle on the
//!   decoupled access-execute PE array of `ganax-sim`, producing actual output
//!   feature maps that are validated against the `ganax-tensor` references.
//! * [`network`] chains whole generators through the machine's fast path —
//!   [`GanaxMachine::execute_network`] returns a [`NetworkExecution`] report
//!   with per-layer cycles, counters and wall-clock, cross-checkable against
//!   the analytic models.
//! * [`engine`](InferenceEngine) is the compile-once, run-many serving path:
//!   [`CompiledNetwork`] hoists every layer's plan into an immutable
//!   artifact, and [`InferenceEngine`] runs it (single requests or whole
//!   batches) on a persistent worker pool whose PEs and buffers are reset in
//!   place between inferences.
//! * [`serve`](serve::Server) is the async serving front-end over the engine:
//!   a submit/poll ticket API, an admission queue that coalesces same-model
//!   requests into dynamically sized batches, and multi-model residency via
//!   an LRU plan cache — many client threads, many models, one worker pool.
//! * [`perf`](GanaxModel) is the layer-level performance and energy model that
//!   evaluates full GAN workloads (the counterpart of
//!   [`EyerissModel`](ganax_eyeriss::EyerissModel)).
//! * [`compare`](compare::ModelComparison) runs a GAN on both accelerators and
//!   derives every number the paper's evaluation section reports: speedup,
//!   energy reduction, runtime/energy breakdowns and PE utilization —
//!   analytically ([`ModelComparison`](compare::ModelComparison)) and from
//!   measured machine activity
//!   ([`SimulatedComparison`](compare::SimulatedComparison)).
//! * [`config`](GanaxConfig) is the validated, JSON-round-trippable
//!   description of the accelerator geometry (PE rows and SIMD lanes, clock,
//!   energies, storage sizing) every model above is parameterized by.
//! * [`sweep`](sweep::SweepSpec) explores the design space: a grid of
//!   [`GanaxConfig`] points × Table I networks evaluated in parallel, with a
//!   Pareto front over (speedup, energy reduction) against the same-budget
//!   Eyeriss baseline at every point.
//!
//! # Example
//!
//! ```
//! use ganax::compare::ModelComparison;
//! use ganax_models::zoo;
//!
//! let report = ModelComparison::compare(&zoo::dcgan());
//! // DCGAN's generator is dominated by stride-2 transposed convolutions, so
//! // GANAX speeds it up substantially while the discriminator is unaffected.
//! assert!(report.generator_speedup() > 2.0);
//! assert!((report.discriminator_speedup() - 1.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
mod compiler;
mod config;
pub mod engine;
mod machine;
pub mod network;
mod perf;
pub mod serve;
pub mod sweep;

pub use compiler::GanaxCompiler;
pub use config::{ConfigError, GanaxConfig, IntegrityMode};
pub use engine::{BatchExecution, CompiledNetwork, InferenceEngine};
pub use ganax_sim::{FaultKind, FaultPlan, FaultSpec};
pub use machine::{GanaxMachine, MachineError, MachineRun};
pub use network::{LayerExecution, NetworkExecution, NetworkWeights};
pub use perf::{AblationVariant, GanaxModel, LayerCrossCheck};
pub use serve::{
    CircuitState, ModelHandle, ModelHealth, Response, ServeConfig, ServeError, ServeStats, Server,
    ServerHealth, Ticket,
};
pub use sweep::{DesignPoint, DesignSummary, SweepCell, SweepError, SweepResult, SweepSpec};
