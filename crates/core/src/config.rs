//! GANAX accelerator configuration: validated, serializable geometry.
//!
//! [`GanaxConfig`] gathers every sizing knob of the modeled accelerator — PE
//! rows (PVs) and SIMD lanes, clock frequency, per-access energies, Table III
//! per-PE storage, and the cycle-level machine's worker-PE sizing — into one
//! value that is threaded through the analytic models
//! ([`GanaxModel`](crate::GanaxModel), [`EyerissModel`](ganax_eyeriss::EyerissModel)),
//! the cycle-level machine ([`GanaxMachine`](crate::GanaxMachine)) and the
//! comparison reports ([`compare`](crate::compare)). The
//! [`Default`]/[`GanaxConfig::paper`] value reproduces the paper's design
//! point (16 × 16 PEs, 500 MHz, Table II/III constants) bit-identically;
//! every other point is reachable through the `with_*` builders or by
//! deserializing a JSON file.
//!
//! ```
//! use ganax::GanaxConfig;
//!
//! // An 8×8-PV design with halved SIMD lanes, same clock and energies.
//! let small = GanaxConfig::paper().with_geometry(8, 8).unwrap();
//! assert_eq!(small.array().total_pes(), 64);
//! assert_eq!(small.array().simd_lanes(), 8);
//!
//! // Configs round-trip through JSON (the sweep engine and the handbook's
//! // custom-config workflow rely on this).
//! let json = small.to_json().unwrap();
//! let back = GanaxConfig::from_json(&json).unwrap();
//! assert_eq!(back, small);
//! ```

use std::fmt;

use ganax_dataflow::ArrayConfig;
use ganax_energy::{AreaModel, EnergyModel};
use ganax_eyeriss::AcceleratorConfig;
use ganax_sim::{FaultSpec, PeConfig};
use serde::{DeError, Deserialize, Serialize, Value};

/// Policy of the ABFT computation-integrity layer (Huang–Abraham checksums
/// over the machine's linear per-layer dataflow).
///
/// The checksum invariant — `checksum(W) · checksum(x) ≈ checksum(y)` per
/// output-row slice, under a deterministic geometry-scaled tolerance — is
/// verified at shard-retire time, so a finite bit flip that would otherwise
/// reach the client as a silently wrong image is caught where it happened.
/// Verdicts are bit-identical at every pool size (the checksums are
/// accumulated in a fixed order that does not depend on sharding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No checksum verification — byte-identical behavior (outputs, counters
    /// and fingerprints) to a build without the integrity layer.
    #[default]
    Off,
    /// Verify every retired output-row slice; a mismatch fails the layer
    /// immediately with the typed
    /// [`MachineError::IntegrityViolation`](crate::MachineError::IntegrityViolation)
    /// (fail-fast: detection without re-execution).
    Verify,
    /// Verify, and on a mismatch surgically re-execute just the offending
    /// shards in a fresh fault epoch — bit-identical recovery without
    /// redoing the layer. Only a *persistent* mismatch (one that reproduces
    /// after healing) surfaces as
    /// [`MachineError::IntegrityViolation`](crate::MachineError::IntegrityViolation).
    VerifyAndHeal,
}

impl IntegrityMode {
    /// The canonical JSON spelling (`"off"`, `"verify"`,
    /// `"verify_and_heal"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Verify => "verify",
            IntegrityMode::VerifyAndHeal => "verify_and_heal",
        }
    }

    /// Whether any checksum verification runs at all.
    pub fn verifies(&self) -> bool {
        !matches!(self, IntegrityMode::Off)
    }

    /// Whether a detected mismatch is healed before it becomes an error.
    pub fn heals(&self) -> bool {
        matches!(self, IntegrityMode::VerifyAndHeal)
    }
}

impl fmt::Display for IntegrityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Hand-written (the derive shim only handles structs): the mode serializes
// as its canonical string, so config JSON stays human-editable.
impl Serialize for IntegrityMode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for IntegrityMode {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => match s.as_str() {
                "off" => Ok(IntegrityMode::Off),
                "verify" => Ok(IntegrityMode::Verify),
                "verify_and_heal" => Ok(IntegrityMode::VerifyAndHeal),
                other => Err(DeError::new(format!(
                    "unknown integrity mode `{other}` (expected `off`, `verify` or \
                     `verify_and_heal`)"
                ))),
            },
            _ => Err(DeError::new("integrity mode must be a string")),
        }
    }
}

/// A typed configuration-validation error ([`GanaxConfig::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The PE array has a zero-sized dimension.
    EmptyArray {
        /// Configured number of processing vectors.
        num_pvs: usize,
        /// Configured PEs per processing vector (SIMD lanes).
        pes_per_pv: usize,
    },
    /// The area model's PE count disagrees with the array geometry (the area
    /// and performance models would describe different machines).
    ArrayAreaMismatch {
        /// PEs implied by the array geometry.
        array_pes: usize,
        /// PEs the area model budgets for.
        area_pes: usize,
    },
    /// The clock frequency is zero, negative or non-finite.
    InvalidFrequency {
        /// The offending frequency in hertz.
        frequency_hz: f64,
    },
    /// A per-access energy constant is negative or non-finite, or the gated
    /// fraction falls outside `[0, 1]`.
    InvalidEnergy {
        /// Which energy-model field is invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The datapath word width is zero.
    ZeroWordBits,
    /// A PE scratchpad has no words.
    EmptyScratchpad {
        /// Which PE sizing is affected (`"pe"` for the Table III sizing,
        /// `"sim_pe"` for the machine's worker PEs).
        pe: &'static str,
        /// Which scratchpad is empty.
        scratchpad: &'static str,
    },
    /// The execute µop FIFO cannot hold one `repeat`+`mac` program pair.
    UopFifoTooShallow {
        /// Which PE sizing is affected.
        pe: &'static str,
        /// Configured FIFO entries (must be ≥ 2).
        entries: usize,
    },
    /// An address FIFO has no entries (the access engine could never hand an
    /// operand address to the execute engine).
    EmptyAddrFifo {
        /// Which PE sizing is affected.
        pe: &'static str,
    },
    /// The fault-injection schedule is malformed (unknown kind bits or a
    /// rate above one million ppm).
    InvalidFault {
        /// What is wrong with the [`FaultSpec`].
        detail: &'static str,
    },
    /// JSON text could not be parsed into a config at all
    /// ([`GanaxConfig::from_json`]); distinct from the validation variants so
    /// callers can tell "malformed file" from "well-formed but invalid
    /// design".
    Malformed {
        /// The underlying parse error.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyArray {
                num_pvs,
                pes_per_pv,
            } => write!(
                f,
                "PE array has a zero-sized dimension ({num_pvs} PVs x {pes_per_pv} lanes)"
            ),
            ConfigError::ArrayAreaMismatch {
                array_pes,
                area_pes,
            } => write!(
                f,
                "array geometry has {array_pes} PEs but the area model budgets {area_pes}"
            ),
            ConfigError::InvalidFrequency { frequency_hz } => {
                write!(
                    f,
                    "clock frequency {frequency_hz} Hz is not positive and finite"
                )
            }
            ConfigError::InvalidEnergy { field, value } => {
                write!(f, "energy model field `{field}` has invalid value {value}")
            }
            ConfigError::ZeroWordBits => write!(f, "datapath word width is zero bits"),
            ConfigError::EmptyScratchpad { pe, scratchpad } => {
                write!(f, "{pe} sizing has an empty {scratchpad} scratchpad")
            }
            ConfigError::UopFifoTooShallow { pe, entries } => write!(
                f,
                "{pe} sizing has a {entries}-entry uop FIFO; at least 2 entries \
                 (one repeat+mac pair) are required"
            ),
            ConfigError::EmptyAddrFifo { pe } => {
                write!(f, "{pe} sizing has an empty address FIFO")
            }
            ConfigError::InvalidFault { detail } => {
                write!(f, "fault-injection spec is invalid: {detail}")
            }
            ConfigError::Malformed { detail } => {
                write!(f, "config JSON could not be parsed: {detail}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the GANAX accelerator.
///
/// GANAX shares the PE-array organization, clock and on-chip memory sizes of
/// the Eyeriss baseline (Section V: "the same number of PEs and on-chip memory
/// are used for both accelerators") and adds the µop-buffer and access-engine
/// sizing of Table III. The `Default` reproduces the paper's design point
/// bit-identically; [`GanaxConfig::validate`] and the `with_*` builders
/// guard every other point, and [`GanaxConfig::to_json`] /
/// [`GanaxConfig::from_json`] round-trip configs through files.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanaxConfig {
    /// The shared accelerator configuration (array geometry, clock frequency,
    /// per-access energy model) — also the Eyeriss baseline's configuration,
    /// which keeps every comparison same-budget by construction.
    pub base: AcceleratorConfig,
    /// Table III per-PE sizing (register files, weight SRAM, FIFOs) used by
    /// the analytic and area models.
    pub pe: PeConfig,
    /// Worker-PE sizing used by the cycle-level machine's functional fast
    /// path. Defaults to [`PeConfig::deep`] — scratchpads and µop FIFO sized
    /// so a whole channel group of a full-size layer dispatches in one burst;
    /// outputs and counters do not depend on this sizing (only simulation
    /// wall-clock does), as the machine's per-column traffic is invariant
    /// under chunking.
    pub sim_pe: PeConfig,
    /// Area model (Table III). `area.num_pes` must match the array geometry;
    /// [`GanaxConfig::with_geometry`] keeps them in sync.
    pub area: AreaModel,
    /// Seeded fault-injection schedule for the cycle-level machine
    /// ([`FaultSpec`], default disabled). When armed, the machine and the
    /// serving engine inject the scheduled faults deterministically — the
    /// same seed reproduces the same corruption at any thread count.
    pub fault: FaultSpec,
    /// ABFT computation-integrity policy ([`IntegrityMode`], default
    /// [`IntegrityMode::Off`]). When on, every retired output-row slice is
    /// checksum-verified against the plan's precomputed weight checksums;
    /// `VerifyAndHeal` additionally re-executes mismatching shards in a
    /// fresh fault epoch before surfacing a violation.
    pub integrity: IntegrityMode,
}

impl GanaxConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        GanaxConfig {
            base: AcceleratorConfig::paper(),
            pe: PeConfig::paper(),
            sim_pe: PeConfig::deep(),
            area: AreaModel::table_iii(),
            fault: FaultSpec::disabled(),
            integrity: IntegrityMode::Off,
        }
    }

    /// The PE-array organization.
    pub fn array(&self) -> ArrayConfig {
        self.base.array
    }

    /// The energy model.
    pub fn energy(&self) -> EnergyModel {
        self.base.energy
    }

    /// Fractional area overhead of GANAX over the baseline (≈7.8 %).
    pub fn area_overhead(&self) -> f64 {
        self.area.overhead_fraction()
    }

    /// Returns a copy with a different PE-array geometry (`num_pvs` MIMD rows
    /// × `pes_per_pv` SIMD lanes), keeping the area model's PE count in sync,
    /// validated.
    ///
    /// # Errors
    /// Returns [`ConfigError::EmptyArray`] when either dimension is zero (and
    /// propagates any other validation failure of the modified config).
    pub fn with_geometry(mut self, num_pvs: usize, pes_per_pv: usize) -> Result<Self, ConfigError> {
        self.base.array = ArrayConfig {
            num_pvs,
            pes_per_pv,
        };
        self.area.num_pes = num_pvs * pes_per_pv;
        self.validated()
    }

    /// Returns a copy with a different clock frequency, validated.
    ///
    /// # Errors
    /// Returns [`ConfigError::InvalidFrequency`] when `frequency_hz` is not
    /// positive and finite.
    pub fn with_frequency_hz(mut self, frequency_hz: f64) -> Result<Self, ConfigError> {
        self.base.frequency_hz = frequency_hz;
        self.validated()
    }

    /// Returns a copy with a different worker-PE sizing for the cycle-level
    /// machine, validated.
    ///
    /// # Errors
    /// Propagates scratchpad/FIFO validation failures for the new sizing.
    pub fn with_sim_pe(mut self, sim_pe: PeConfig) -> Result<Self, ConfigError> {
        self.sim_pe = sim_pe;
        self.validated()
    }

    /// Returns a copy with a different fault-injection schedule, validated.
    ///
    /// # Errors
    /// Returns [`ConfigError::InvalidFault`] when the spec's kind bits or
    /// rate are out of range.
    pub fn with_fault(mut self, fault: FaultSpec) -> Result<Self, ConfigError> {
        self.fault = fault;
        self.validated()
    }

    /// Returns a copy with a different computation-integrity policy,
    /// validated.
    ///
    /// # Errors
    /// Propagates any validation failure of the modified config (the mode
    /// itself is always valid; the `Result` keeps the builder chainable).
    pub fn with_integrity(mut self, integrity: IntegrityMode) -> Result<Self, ConfigError> {
        self.integrity = integrity;
        self.validated()
    }

    /// Checks every invariant the models rely on: non-empty array geometry,
    /// area/array agreement, a positive finite clock, sane energy constants
    /// and usable PE sizings.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let array = self.base.array;
        if array.num_pvs == 0 || array.pes_per_pv == 0 {
            return Err(ConfigError::EmptyArray {
                num_pvs: array.num_pvs,
                pes_per_pv: array.pes_per_pv,
            });
        }
        if self.area.num_pes != array.total_pes() {
            return Err(ConfigError::ArrayAreaMismatch {
                array_pes: array.total_pes(),
                area_pes: self.area.num_pes,
            });
        }
        if !(self.base.frequency_hz.is_finite() && self.base.frequency_hz > 0.0) {
            return Err(ConfigError::InvalidFrequency {
                frequency_hz: self.base.frequency_hz,
            });
        }
        let energy = &self.base.energy;
        for (field, value) in [
            ("register_file_pj_per_bit", energy.register_file_pj_per_bit),
            ("pe_pj_per_bit", energy.pe_pj_per_bit),
            ("inter_pe_pj_per_bit", energy.inter_pe_pj_per_bit),
            ("global_buffer_pj_per_bit", energy.global_buffer_pj_per_bit),
            ("dram_pj_per_bit", energy.dram_pj_per_bit),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ConfigError::InvalidEnergy { field, value });
            }
        }
        if !(energy.gated_op_fraction.is_finite()
            && (0.0..=1.0).contains(&energy.gated_op_fraction))
        {
            return Err(ConfigError::InvalidEnergy {
                field: "gated_op_fraction",
                value: energy.gated_op_fraction,
            });
        }
        if energy.word_bits == 0 {
            return Err(ConfigError::ZeroWordBits);
        }
        validate_pe(&self.pe, "pe")?;
        validate_pe(&self.sim_pe, "sim_pe")?;
        self.fault
            .validate()
            .map_err(|detail| ConfigError::InvalidFault { detail })?;
        Ok(())
    }

    /// [`GanaxConfig::validate`], returning the config itself for chaining.
    ///
    /// # Errors
    /// As [`GanaxConfig::validate`].
    pub fn validated(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self)
    }

    /// Serializes the config to pretty-printed JSON.
    ///
    /// # Errors
    /// Propagates the (shim-infallible) serializer error for call-site
    /// compatibility with the real `serde_json`.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a config from JSON and validates it.
    ///
    /// # Errors
    /// Returns [`ConfigError::Malformed`] when the JSON cannot be parsed or
    /// its shape does not match [`GanaxConfig`], and the matching typed
    /// variant when the parsed config fails [`GanaxConfig::validate`].
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        let config: GanaxConfig =
            serde_json::from_str(json).map_err(|e| ConfigError::Malformed {
                detail: e.to_string(),
            })?;
        config.validated()
    }

    /// A stable 64-bit fingerprint of the whole configuration, hashed over
    /// its canonical JSON form. Two configs fingerprint equal exactly when
    /// every field (geometry, clock, energies, PE sizings, area) is equal —
    /// the serving plan cache uses this as the config half of its
    /// `(network fingerprint, config fingerprint)` key, so artifacts planned
    /// for one machine are never served on another.
    pub fn fingerprint(&self) -> u64 {
        let json = self
            .to_json()
            .expect("the shim serializer is infallible for derived configs");
        let mut hash = FNV_OFFSET;
        fnv1a64(&mut hash, json.as_bytes());
        hash
    }
}

/// FNV-1a offset basis — the seed of every fingerprint in the workspace.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit hash in place. Shared by
/// [`GanaxConfig::fingerprint`] and the network/weights fingerprint in
/// [`crate::network`], so every plan-cache key component uses one hash.
pub(crate) fn fnv1a64(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Validates one PE sizing (`label` distinguishes the Table III sizing from
/// the machine's worker-PE sizing in error messages).
fn validate_pe(pe: &PeConfig, label: &'static str) -> Result<(), ConfigError> {
    for (scratchpad, words) in [
        ("input", pe.input_words),
        ("weight", pe.weight_words),
        ("output", pe.output_words),
    ] {
        if words == 0 {
            return Err(ConfigError::EmptyScratchpad {
                pe: label,
                scratchpad,
            });
        }
    }
    if pe.addr_fifo_entries == 0 {
        return Err(ConfigError::EmptyAddrFifo { pe: label });
    }
    if pe.uop_fifo_entries < 2 {
        return Err(ConfigError::UopFifoTooShallow {
            pe: label,
            entries: pe.uop_fifo_entries,
        });
    }
    Ok(())
}

impl Default for GanaxConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_the_baseline() {
        let cfg = GanaxConfig::paper();
        assert_eq!(cfg.array().total_pes(), 256);
        assert_eq!(cfg.base.frequency_hz, 500.0e6);
        assert_eq!(cfg.energy().pe_pj_per_bit, 0.36);
        cfg.validate().expect("the paper design point is valid");
    }

    #[test]
    fn area_overhead_is_about_7_8_percent() {
        let overhead = GanaxConfig::paper().area_overhead();
        assert!(overhead > 0.07 && overhead < 0.085, "overhead = {overhead}");
    }

    #[test]
    fn with_geometry_keeps_area_in_sync() {
        let cfg = GanaxConfig::paper().with_geometry(8, 32).unwrap();
        assert_eq!(cfg.array().num_pvs, 8);
        assert_eq!(cfg.array().simd_lanes(), 32);
        assert_eq!(cfg.area.num_pes, 256);
        let small = GanaxConfig::paper().with_geometry(4, 4).unwrap();
        assert_eq!(small.area.num_pes, 16);
    }

    #[test]
    fn zero_sized_arrays_are_rejected_with_typed_errors() {
        assert_eq!(
            GanaxConfig::paper().with_geometry(0, 16).unwrap_err(),
            ConfigError::EmptyArray {
                num_pvs: 0,
                pes_per_pv: 16
            }
        );
        assert_eq!(
            GanaxConfig::paper().with_geometry(16, 0).unwrap_err(),
            ConfigError::EmptyArray {
                num_pvs: 16,
                pes_per_pv: 0
            }
        );
    }

    #[test]
    fn area_array_mismatch_is_rejected() {
        let mut cfg = GanaxConfig::paper();
        cfg.base.array = ArrayConfig {
            num_pvs: 8,
            pes_per_pv: 8,
        };
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::ArrayAreaMismatch {
                array_pes: 64,
                area_pes: 256
            }
        );
    }

    #[test]
    fn bad_frequency_energy_and_pe_sizings_are_rejected() {
        assert!(matches!(
            GanaxConfig::paper().with_frequency_hz(0.0).unwrap_err(),
            ConfigError::InvalidFrequency { .. }
        ));
        assert!(matches!(
            GanaxConfig::paper()
                .with_frequency_hz(f64::INFINITY)
                .unwrap_err(),
            ConfigError::InvalidFrequency { .. }
        ));

        let mut cfg = GanaxConfig::paper();
        cfg.base.energy.dram_pj_per_bit = -1.0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::InvalidEnergy {
                field: "dram_pj_per_bit",
                value: -1.0
            }
        );

        let mut cfg = GanaxConfig::paper();
        cfg.base.energy.gated_op_fraction = 1.5;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::InvalidEnergy {
                field: "gated_op_fraction",
                ..
            }
        ));

        let mut cfg = GanaxConfig::paper();
        cfg.base.energy.word_bits = 0;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ZeroWordBits);

        let mut shallow = PeConfig::paper();
        shallow.uop_fifo_entries = 1;
        assert_eq!(
            GanaxConfig::paper().with_sim_pe(shallow).unwrap_err(),
            ConfigError::UopFifoTooShallow {
                pe: "sim_pe",
                entries: 1
            }
        );

        let mut empty = PeConfig::paper();
        empty.weight_words = 0;
        assert_eq!(
            GanaxConfig::paper().with_sim_pe(empty).unwrap_err(),
            ConfigError::EmptyScratchpad {
                pe: "sim_pe",
                scratchpad: "weight"
            }
        );

        let mut cfg = GanaxConfig::paper();
        cfg.pe.addr_fifo_entries = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::EmptyAddrFifo { pe: "pe" }
        );
    }

    #[test]
    fn invalid_fault_specs_are_rejected() {
        use ganax_sim::{FaultKind, FaultSpec};

        let mut bad = FaultSpec::disabled();
        bad.kinds = FaultKind::ALL << 1;
        assert!(matches!(
            GanaxConfig::paper().with_fault(bad).unwrap_err(),
            ConfigError::InvalidFault { .. }
        ));

        let armed = FaultSpec::seeded(7, 1_000, FaultKind::ALL);
        let cfg = GanaxConfig::paper().with_fault(armed).unwrap();
        assert_eq!(cfg.fault, armed);
        // An armed schedule changes the fingerprint: plans built under
        // faults are never served as fault-free (and vice versa).
        assert_ne!(cfg.fingerprint(), GanaxConfig::paper().fingerprint());
    }

    #[test]
    fn json_round_trip_is_identity() {
        for cfg in [
            GanaxConfig::paper(),
            GanaxConfig::paper().with_geometry(8, 8).unwrap(),
            GanaxConfig::paper().with_frequency_hz(750.0e6).unwrap(),
            GanaxConfig::paper()
                .with_integrity(IntegrityMode::Verify)
                .unwrap(),
            GanaxConfig::paper()
                .with_integrity(IntegrityMode::VerifyAndHeal)
                .unwrap(),
        ] {
            let json = cfg.to_json().unwrap();
            let back = GanaxConfig::from_json(&json).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn integrity_modes_parse_fingerprint_and_default_sanely() {
        assert_eq!(IntegrityMode::default(), IntegrityMode::Off);
        assert_eq!(GanaxConfig::paper().integrity, IntegrityMode::Off);
        assert!(!IntegrityMode::Off.verifies());
        assert!(IntegrityMode::Verify.verifies() && !IntegrityMode::Verify.heals());
        assert!(IntegrityMode::VerifyAndHeal.verifies() && IntegrityMode::VerifyAndHeal.heals());

        // Each mode fingerprints differently: plans built under one policy
        // are never served as another.
        let verify = GanaxConfig::paper()
            .with_integrity(IntegrityMode::Verify)
            .unwrap();
        let heal = GanaxConfig::paper()
            .with_integrity(IntegrityMode::VerifyAndHeal)
            .unwrap();
        assert_ne!(verify.fingerprint(), GanaxConfig::paper().fingerprint());
        assert_ne!(verify.fingerprint(), heal.fingerprint());

        // An unknown mode string is a malformed config, not a panic.
        let json = verify.to_json().unwrap().replace("verify", "sometimes");
        assert!(matches!(
            GanaxConfig::from_json(&json).unwrap_err(),
            ConfigError::Malformed { .. }
        ));
    }

    #[test]
    fn from_json_rejects_garbage_and_invalid_configs() {
        assert!(matches!(
            GanaxConfig::from_json("{not json").unwrap_err(),
            ConfigError::Malformed { .. }
        ));
        let mut invalid = GanaxConfig::paper();
        invalid.area.num_pes = 99;
        let json = invalid.to_json().unwrap();
        assert_eq!(
            GanaxConfig::from_json(&json).unwrap_err(),
            ConfigError::ArrayAreaMismatch {
                array_pes: 256,
                area_pes: 99
            }
        );
    }

    #[test]
    fn error_messages_name_the_problem() {
        let msg = ConfigError::UopFifoTooShallow {
            pe: "sim_pe",
            entries: 1,
        }
        .to_string();
        assert!(msg.contains("sim_pe") && msg.contains("1-entry"), "{msg}");
    }
}
