//! GANAX accelerator configuration.

use ganax_dataflow::ArrayConfig;
use ganax_energy::{AreaModel, EnergyModel};
use ganax_eyeriss::AcceleratorConfig;
use ganax_sim::PeConfig;

/// Configuration of the GANAX accelerator.
///
/// GANAX shares the PE-array organization, clock and on-chip memory sizes of
/// the Eyeriss baseline (Section V: "the same number of PEs and on-chip memory
/// are used for both accelerators") and adds the µop-buffer and access-engine
/// sizing of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanaxConfig {
    /// The shared accelerator configuration (array, clock, energy model).
    pub base: AcceleratorConfig,
    /// Per-PE sizing used by the cycle-level machine.
    pub pe: PeConfig,
    /// Area model (Table III).
    pub area: AreaModel,
}

impl GanaxConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        GanaxConfig {
            base: AcceleratorConfig::paper(),
            pe: PeConfig::paper(),
            area: AreaModel::table_iii(),
        }
    }

    /// The PE-array organization.
    pub fn array(&self) -> ArrayConfig {
        self.base.array
    }

    /// The energy model.
    pub fn energy(&self) -> EnergyModel {
        self.base.energy
    }

    /// Fractional area overhead of GANAX over the baseline (≈7.8 %).
    pub fn area_overhead(&self) -> f64 {
        self.area.overhead_fraction()
    }
}

impl Default for GanaxConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_the_baseline() {
        let cfg = GanaxConfig::paper();
        assert_eq!(cfg.array().total_pes(), 256);
        assert_eq!(cfg.base.frequency_hz, 500.0e6);
        assert_eq!(cfg.energy().pe_pj_per_bit, 0.36);
    }

    #[test]
    fn area_overhead_is_about_7_8_percent() {
        let overhead = GanaxConfig::paper().area_overhead();
        assert!(overhead > 0.07 && overhead < 0.085, "overhead = {overhead}");
    }
}
