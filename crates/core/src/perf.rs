//! The GANAX layer-level performance and energy model.

use ganax_dataflow::{DataflowMode, LayerGeometry, ScheduleEstimate};
use ganax_eyeriss::{AcceleratorConfig, LayerStats, NetworkStats, TrafficModel};
use ganax_models::{Layer, Network};

use crate::compiler::GanaxCompiler;
use crate::config::GanaxConfig;
use crate::network::NetworkExecution;

/// Which subset of the GANAX mechanisms is enabled — used by the ablation
/// study of the design choices called out in Section III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationVariant {
    /// The full design: reorganized dataflow, MIMD-SIMD execution and the
    /// decoupled access-execute µ-engines.
    Full,
    /// Output/filter-row reorganization but a *pure SIMD* schedule: every pass
    /// must wait for the slowest phase group (the situation Section II ends
    /// with, before the MIMD-SIMD architecture is introduced).
    ReorganizedSimdOnly,
    /// No reorganization at all: the baseline's dense schedule, but with zero
    /// gating (this is simply the Eyeriss behaviour and is provided so
    /// ablation sweeps can include the baseline point).
    ConventionalDense,
}

/// The GANAX accelerator's analytic model (the counterpart of
/// [`ganax_eyeriss::EyerissModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanaxModel {
    config: GanaxConfig,
    variant: AblationVariant,
}

impl GanaxModel {
    /// Creates a model with an explicit configuration.
    pub fn new(config: GanaxConfig) -> Self {
        GanaxModel {
            config,
            variant: AblationVariant::Full,
        }
    }

    /// Creates the model with the paper's configuration.
    pub fn paper() -> Self {
        Self::new(GanaxConfig::paper())
    }

    /// Creates a model restricted to an ablation variant.
    pub fn with_variant(config: GanaxConfig, variant: AblationVariant) -> Self {
        GanaxModel { config, variant }
    }

    /// The configuration in use.
    pub fn config(&self) -> GanaxConfig {
        self.config
    }

    /// The ablation variant in use.
    pub fn variant(&self) -> AblationVariant {
        self.variant
    }

    /// The shared accelerator configuration.
    fn base(&self) -> AcceleratorConfig {
        self.config.base
    }

    /// Runs one layer and returns its statistics.
    pub fn run_layer(&self, layer: &Layer) -> LayerStats {
        let geometry = LayerGeometry::for_layer(layer);
        let array = self.base().array;

        let (schedule, mode) = match self.variant {
            AblationVariant::ConventionalDense => (
                ScheduleEstimate::estimate(&geometry, array, DataflowMode::Conventional),
                DataflowMode::Conventional,
            ),
            AblationVariant::Full => (
                ScheduleEstimate::estimate(&geometry, array, DataflowMode::Reorganized),
                DataflowMode::Reorganized,
            ),
            AblationVariant::ReorganizedSimdOnly => {
                let mut schedule =
                    ScheduleEstimate::estimate(&geometry, array, DataflowMode::Reorganized);
                // Without MIMD-SIMD the phase groups cannot run concurrently
                // with different microprograms: every pass stretches to the
                // longest group's length. First-order penalty: scale the
                // schedule by the ratio of the dense accumulation depth to the
                // average consequential depth, bounded by the dense schedule.
                let dense =
                    ScheduleEstimate::estimate(&geometry, array, DataflowMode::Conventional);
                let groups = geometry.phase_groups();
                if geometry.is_tconv && !groups.is_empty() {
                    let max_nodes = groups
                        .iter()
                        .map(|g| g.consequential_nodes)
                        .max()
                        .unwrap_or(1) as f64;
                    let avg_nodes = groups
                        .iter()
                        .map(|g| g.num_rows as f64 * g.consequential_nodes as f64)
                        .sum::<f64>()
                        / groups
                            .iter()
                            .map(|g| g.num_rows as f64)
                            .sum::<f64>()
                            .max(1.0);
                    let penalty = (max_nodes / avg_nodes.max(1.0)).max(1.0);
                    let stretched = (schedule.schedule_cycles as f64 * penalty) as u64;
                    schedule.schedule_cycles = stretched.min(dense.schedule_cycles);
                }
                (schedule, DataflowMode::Reorganized)
            }
        };

        let traffic = TrafficModel::layer_traffic(&geometry, &schedule, mode);

        // GANAX never executes an inconsequential MAC; the conventional-dense
        // ablation variant behaves like the zero-gated baseline.
        let (full_ops, gated_ops) = match mode {
            DataflowMode::Reorganized => (geometry.consequential_macs, 0),
            DataflowMode::Conventional => (
                geometry.consequential_macs,
                geometry.dense_macs - geometry.consequential_macs,
            ),
        };

        // µop-fetch accounting: SIMD layers fetch one global µop per pass;
        // MIMD-SIMD layers additionally fetch one local µop per PV per pass.
        let global_uop_fetches = schedule.passes;
        let local_uop_fetches = if GanaxCompiler::uses_simd_mode(layer) {
            0
        } else {
            schedule.passes * array.num_pvs as u64
        };

        let counts = TrafficModel::to_event_counts(
            &traffic,
            full_ops,
            gated_ops,
            local_uop_fetches,
            global_uop_fetches,
        );
        let energy = self.base().energy.energy(&counts);

        LayerStats {
            name: layer.name.clone(),
            is_tconv: layer.is_tconv(),
            cycles: schedule.schedule_cycles,
            dense_macs: geometry.dense_macs,
            consequential_macs: geometry.consequential_macs,
            counts,
            energy,
            utilization: schedule.utilization(array),
        }
    }

    /// Runs a whole network.
    pub fn run_network(&self, network: &Network) -> NetworkStats {
        NetworkStats {
            network: network.name().to_string(),
            accelerator: "GANAX",
            layers: network.layers().iter().map(|l| self.run_layer(l)).collect(),
        }
    }

    /// Cross-checks a cycle-level [`NetworkExecution`] against this analytic
    /// model, layer by layer: the machine's measured ALU operations must
    /// equal the layer's exact in-bounds MAC count
    /// ([`ganax_tensor::ConvParams::in_bounds_macs`]) and never exceed the
    /// consequential MACs the analytic schedule charges (the analytic model
    /// additionally counts zero-padding taps on conventional convolutions;
    /// host layers, which the machine does not simulate, are exempt).
    ///
    /// This is the contract that lets the analytic whole-GAN numbers stand on
    /// the machine's per-pass behaviour.
    ///
    /// # Panics
    /// Panics when `execution` does not report one layer per network layer —
    /// i.e. it was produced from a different network (a reduced variant, for
    /// example); a silent partial check would vacuously pass.
    pub fn cross_check(
        &self,
        network: &Network,
        execution: &NetworkExecution,
    ) -> Vec<LayerCrossCheck> {
        assert_eq!(
            network.layers().len(),
            execution.layers.len(),
            "cross_check requires the execution of this very network \
             (`{}` has {} layers, the execution reports {})",
            network.name(),
            network.layers().len(),
            execution.layers.len(),
        );
        network
            .layers()
            .iter()
            .zip(&execution.layers)
            .map(|(layer, run)| {
                let stats = self.run_layer(layer);
                let expected_machine_macs = match layer.op.conv_params() {
                    Some(p) => p
                        .in_bounds_macs(layer.input, layer.output.channels)
                        .expect("layer geometry validated at construction"),
                    // Projections run on the host; the machine simulates none
                    // of their MACs.
                    None => 0,
                };
                LayerCrossCheck {
                    layer: layer.name.clone(),
                    host: run.host,
                    analytical_cycles: stats.cycles,
                    analytical_macs: stats.consequential_macs,
                    expected_machine_macs,
                    simulated_macs: run.counts.alu_ops,
                }
            })
            .collect()
    }
}

/// One row of [`GanaxModel::cross_check`]: the analytic model's per-layer
/// charge next to what the cycle-level machine actually did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerCrossCheck {
    /// Layer name.
    pub layer: String,
    /// Whether the machine ran the layer on the host (no simulated MACs).
    pub host: bool,
    /// Analytic schedule cycles of the layer.
    pub analytical_cycles: u64,
    /// Consequential MACs the analytic model charges.
    pub analytical_macs: u64,
    /// Exact in-bounds MACs the machine is expected to execute.
    pub expected_machine_macs: u64,
    /// ALU operations the machine measured.
    pub simulated_macs: u64,
}

impl LayerCrossCheck {
    /// Whether the machine's measured work agrees with the analytic charge.
    pub fn is_consistent(&self) -> bool {
        self.host
            || (self.simulated_macs == self.expected_machine_macs
                && self.simulated_macs <= self.analytical_macs)
    }
}

impl Default for GanaxModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_eyeriss::EyerissModel;
    use ganax_models::zoo;

    #[test]
    fn ganax_never_performs_gated_ops_in_full_mode() {
        let model = GanaxModel::paper();
        let stats = model.run_network(&zoo::dcgan().generator);
        for layer in &stats.layers {
            assert_eq!(layer.counts.gated_ops, 0, "{}", layer.name);
        }
    }

    #[test]
    fn generator_speedup_over_eyeriss_is_substantial() {
        let ganax = GanaxModel::paper();
        let eyeriss = EyerissModel::paper();
        let gen = zoo::dcgan().generator;
        let speedup = eyeriss.run_network(&gen).total_cycles() as f64
            / ganax.run_network(&gen).total_cycles() as f64;
        assert!(speedup > 2.0, "speedup = {speedup}");
        assert!(speedup < 8.0, "speedup = {speedup}");
    }

    #[test]
    fn discriminator_performance_is_preserved() {
        let ganax = GanaxModel::paper();
        let eyeriss = EyerissModel::paper();
        let disc = zoo::dcgan().discriminator;
        let g = ganax.run_network(&disc).total_cycles();
        let e = eyeriss.run_network(&disc).total_cycles();
        assert_eq!(g, e, "GANAX must not slow conventional convolutions down");
    }

    #[test]
    fn ganax_pe_utilization_is_high_on_generators() {
        let model = GanaxModel::paper();
        for gan in zoo::all_models() {
            let util = model.run_network(&gan.generator).average_utilization();
            assert!(util > 0.55, "{}: utilization = {util}", gan.name);
        }
    }

    #[test]
    fn mimd_layers_fetch_local_uops() {
        let model = GanaxModel::paper();
        let gen = zoo::dcgan().generator;
        let stats = model.run_network(&gen);
        let tconv = stats.layers.iter().find(|l| l.is_tconv).unwrap();
        assert!(tconv.counts.local_uop_fetches > 0);
        let disc_stats = model.run_network(&zoo::dcgan().discriminator);
        for layer in &disc_stats.layers {
            assert_eq!(layer.counts.local_uop_fetches, 0);
        }
    }

    #[test]
    fn ablation_ordering_full_beats_simd_only_beats_dense() {
        let config = GanaxConfig::paper();
        let gen = zoo::dcgan().generator;
        let full = GanaxModel::with_variant(config, AblationVariant::Full)
            .run_network(&gen)
            .total_cycles();
        let simd_only = GanaxModel::with_variant(config, AblationVariant::ReorganizedSimdOnly)
            .run_network(&gen)
            .total_cycles();
        let dense = GanaxModel::with_variant(config, AblationVariant::ConventionalDense)
            .run_network(&gen)
            .total_cycles();
        assert!(full <= simd_only, "{full} > {simd_only}");
        assert!(simd_only <= dense, "{simd_only} > {dense}");
        assert!(full < dense);
    }

    #[test]
    fn energy_reduction_over_eyeriss() {
        let ganax = GanaxModel::paper();
        let eyeriss = EyerissModel::paper();
        let gen = zoo::three_d_gan().generator;
        let reduction = eyeriss.run_network(&gen).total_energy().total_pj()
            / ganax.run_network(&gen).total_energy().total_pj();
        assert!(reduction > 2.0, "reduction = {reduction}");
    }
}
