//! Design-space sweeps over the accelerator geometry.
//!
//! The paper evaluates one fixed design point (16 × 16 PEs with
//! Eyeriss-equivalent storage); this module turns that fixed reproduction
//! into an explorable simulator. A [`SweepSpec`] names a set of validated
//! [`GanaxConfig`] design points (typically a geometry grid) and a set of
//! Table I networks; [`SweepSpec::run`] evaluates every (point, network)
//! cell in parallel through the analytic models — GANAX *and* a same-budget
//! Eyeriss baseline built from the very same [`GanaxConfig::base`] — and
//! derives a Pareto front over (speedup, energy reduction) per design point.
//! [`SweepSpec::machine_spot_checks`] optionally grounds chosen points in
//! the cycle-level machine on reduced networks.
//!
//! ```
//! use ganax::SweepSpec;
//!
//! let spec = SweepSpec::geometry_grid(
//!     &[(16, 16), (8, 8), (8, 32)],
//!     &["DCGAN", "3D-GAN"],
//! )
//! .unwrap();
//! let result = spec.run();
//! assert_eq!(result.cells.len(), 3 * 2);
//! // Every point beats its same-budget baseline, and the Pareto front over
//! // (geomean speedup, geomean energy reduction) is never empty.
//! assert!(result.cells.iter().all(|c| c.speedup > 1.0));
//! assert!(!result.pareto_front().is_empty());
//! ```

use std::fmt;

use ganax_models::zoo;
use ganax_tensor::Tensor;
use serde::Serialize;

use crate::compare::{geometric_mean, ModelComparison, SimulatedComparison};
use crate::config::{ConfigError, GanaxConfig};
use crate::machine::MachineError;
use crate::network::NetworkWeights;

/// One labelled design point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DesignPoint {
    /// Human-readable label (e.g. `16x16`), unique within a sweep.
    pub label: String,
    /// The validated accelerator configuration of this point.
    pub config: GanaxConfig,
}

impl DesignPoint {
    /// A design point at `num_pvs × pes_per_pv` PEs, labelled
    /// `"{num_pvs}x{pes_per_pv}"`, otherwise identical to the paper's
    /// configuration.
    ///
    /// # Errors
    /// Propagates [`ConfigError`] for zero-sized geometries.
    pub fn from_geometry(num_pvs: usize, pes_per_pv: usize) -> Result<Self, ConfigError> {
        Ok(DesignPoint {
            label: format!("{num_pvs}x{pes_per_pv}"),
            config: GanaxConfig::paper().with_geometry(num_pvs, pes_per_pv)?,
        })
    }
}

/// Errors building a [`SweepSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A design point's configuration failed validation.
    Config(ConfigError),
    /// A network name is not in the Table I zoo.
    UnknownNetwork {
        /// The unresolvable name.
        name: String,
    },
    /// The spec has no design points or no networks.
    Empty {
        /// Which axis is empty (`"points"` or `"networks"`).
        what: &'static str,
    },
    /// Two design points share a label (results would be ambiguous).
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Config(error) => write!(f, "invalid design point: {error}"),
            SweepError::UnknownNetwork { name } => {
                write!(f, "`{name}` is not a Table I zoo model")
            }
            SweepError::Empty { what } => write!(f, "sweep has no {what}"),
            SweepError::DuplicateLabel { label } => {
                write!(f, "duplicate design-point label `{label}`")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ConfigError> for SweepError {
    fn from(error: ConfigError) -> Self {
        SweepError::Config(error)
    }
}

/// A grid of design points × Table I networks to evaluate.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSpec {
    /// The design points, each a validated configuration.
    pub points: Vec<DesignPoint>,
    /// Table I GAN names whose generators the sweep evaluates.
    pub networks: Vec<String>,
    /// Worker threads for [`SweepSpec::run`] (`0` = use
    /// [`std::thread::available_parallelism`]). Results are bit-identical
    /// for every thread count: cells are pure functions of their (point,
    /// network) pair and are reduced in task order.
    pub threads: usize,
}

impl SweepSpec {
    /// Builds a spec from explicit design points, validating every point's
    /// config, the network names, and label uniqueness.
    ///
    /// # Errors
    /// Returns the first [`SweepError`] found.
    pub fn new(points: Vec<DesignPoint>, networks: &[&str]) -> Result<Self, SweepError> {
        if points.is_empty() {
            return Err(SweepError::Empty { what: "points" });
        }
        if networks.is_empty() {
            return Err(SweepError::Empty { what: "networks" });
        }
        for (i, point) in points.iter().enumerate() {
            point.config.validate()?;
            if points[..i].iter().any(|p| p.label == point.label) {
                return Err(SweepError::DuplicateLabel {
                    label: point.label.clone(),
                });
            }
        }
        let mut resolved = Vec::with_capacity(networks.len());
        for name in networks {
            match zoo::by_name(name) {
                // Keep the zoo's canonical capitalization so cells join
                // cleanly against other reports.
                Some(model) => resolved.push(model.name),
                None => {
                    return Err(SweepError::UnknownNetwork {
                        name: (*name).to_string(),
                    })
                }
            }
        }
        Ok(SweepSpec {
            points,
            networks: resolved,
            threads: 0,
        })
    }

    /// Builds a spec over a list of `(num_pvs, pes_per_pv)` geometries, each
    /// otherwise identical to the paper's configuration.
    ///
    /// # Errors
    /// As [`SweepSpec::new`] (zero-sized geometries surface as
    /// [`SweepError::Config`]).
    pub fn geometry_grid(
        geometries: &[(usize, usize)],
        networks: &[&str],
    ) -> Result<Self, SweepError> {
        let points = geometries
            .iter()
            .map(|&(pvs, pes)| DesignPoint::from_geometry(pvs, pes))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(points, networks)
    }

    /// Returns the spec with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Evaluates every (design point, network) cell through the analytic
    /// models, in parallel, and summarizes each design point with geometric
    /// means and a Pareto-optimality flag.
    ///
    /// Every cell compares GANAX against an Eyeriss baseline built from the
    /// *same* [`GanaxConfig::base`] — the same array geometry, clock and
    /// energy constants — so each point is a same-budget head-to-head, not a
    /// comparison against the paper's fixed 16 × 16 baseline.
    pub fn run(&self) -> SweepResult {
        let gans: Vec<_> = self
            .networks
            .iter()
            .map(|name| zoo::by_name(name).expect("networks validated at construction"))
            .collect();
        let tasks: Vec<(usize, usize)> = (0..self.points.len())
            .flat_map(|p| (0..gans.len()).map(move |n| (p, n)))
            .collect();

        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threads = if self.threads == 0 {
            available
        } else {
            self.threads
        }
        .clamp(1, tasks.len());

        let evaluate = |&(p, n): &(usize, usize)| {
            let point = &self.points[p];
            let gan = &gans[n];
            let config = point.config;
            let report = ModelComparison::compare_with(gan, config);
            SweepCell {
                design: point.label.clone(),
                network: gan.name.clone(),
                num_pvs: config.array().num_pvs,
                pes_per_pv: config.array().pes_per_pv,
                total_pes: config.array().total_pes(),
                frequency_mhz: config.base.frequency_hz / 1e6,
                speedup: report.generator_speedup(),
                energy_reduction: report.generator_energy_reduction(),
                ganax_cycles: report.ganax_generator.total_cycles(),
                eyeriss_cycles: report.eyeriss_generator.total_cycles(),
                ganax_energy_pj: report.ganax_generator.total_energy().total_pj(),
                eyeriss_energy_pj: report.eyeriss_generator.total_energy().total_pj(),
                ganax_utilization: report.ganax_generator.average_utilization(),
                eyeriss_utilization: report.eyeriss_generator.average_utilization(),
                ganax_seconds: config
                    .base
                    .cycles_to_seconds(report.ganax_generator.total_cycles()),
            }
        };

        // Static round-robin sharding; each worker returns (task index, cell)
        // pairs and the reduction sorts by task index, so the result is
        // independent of the thread count and interleaving.
        let mut indexed: Vec<(usize, SweepCell)> = if threads == 1 {
            tasks.iter().map(evaluate).enumerate().collect()
        } else {
            let mut indexed = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let tasks = &tasks;
                        let evaluate = &evaluate;
                        scope.spawn(move || {
                            tasks
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(threads)
                                .map(|(i, task)| (i, evaluate(task)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Vec<_>>()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed
        };
        let cells: Vec<SweepCell> = indexed.drain(..).map(|(_, cell)| cell).collect();

        let mut designs: Vec<DesignSummary> = self
            .points
            .iter()
            .enumerate()
            .map(|(p, point)| {
                let point_cells = &cells[p * gans.len()..(p + 1) * gans.len()];
                DesignSummary {
                    design: point.label.clone(),
                    num_pvs: point.config.array().num_pvs,
                    pes_per_pv: point.config.array().pes_per_pv,
                    total_pes: point.config.array().total_pes(),
                    geomean_speedup: geometric_mean(point_cells.iter().map(|c| c.speedup)),
                    geomean_energy_reduction: geometric_mean(
                        point_cells.iter().map(|c| c.energy_reduction),
                    ),
                    pareto_optimal: false,
                }
            })
            .collect();
        mark_pareto_front(&mut designs);

        SweepResult {
            networks: self.networks.clone(),
            cells,
            designs,
        }
    }

    /// Grounds the sweep in the cycle-level machine: for every (point,
    /// network) cell, executes the network's *reduced* generator
    /// ([`zoo::reduced_generator`], channels capped at `max_channels`) end to
    /// end on the machine under that point's configuration, with
    /// deterministic weights, and reports the measured speedup/energy
    /// direction plus the machine-vs-analytic cross-check.
    ///
    /// # Errors
    /// Propagates [`MachineError`] from any machine execution.
    pub fn machine_spot_checks(
        &self,
        max_channels: usize,
    ) -> Result<Vec<MachineSweepCell>, MachineError> {
        let mut cells = Vec::with_capacity(self.points.len() * self.networks.len());
        for point in &self.points {
            for name in &self.networks {
                let network = zoo::reduced_generator(name, max_channels)
                    .expect("networks validated at construction");
                let weights = deterministic_weights(&network, 0x5EED);
                let input = Tensor::deterministic(network.input_shape(), 0xF00D);
                let report =
                    SimulatedComparison::run_with(&network, &input, &weights, point.config)?;
                cells.push(MachineSweepCell {
                    design: point.label.clone(),
                    network: name.clone(),
                    max_channels,
                    busy_pe_cycles: report.execution.total_busy_pe_cycles(),
                    simulated_speedup: report.simulated_speedup(),
                    simulated_energy_reduction: report.simulated_energy_reduction(),
                    consistent: report.is_consistent(),
                });
            }
        }
        Ok(cells)
    }
}

/// One (design point, network) cell of a sweep: the generator head-to-head
/// against the same-budget Eyeriss baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepCell {
    /// Design-point label.
    pub design: String,
    /// Table I GAN name.
    pub network: String,
    /// Processing vectors (MIMD rows) of the point.
    pub num_pvs: usize,
    /// PEs per processing vector (SIMD lanes) of the point.
    pub pes_per_pv: usize,
    /// Total PEs of the point.
    pub total_pes: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Generator speedup of GANAX over the same-budget Eyeriss baseline.
    pub speedup: f64,
    /// Generator energy reduction over the same-budget Eyeriss baseline.
    pub energy_reduction: f64,
    /// GANAX generator cycles.
    pub ganax_cycles: u64,
    /// Eyeriss generator cycles at the same geometry.
    pub eyeriss_cycles: u64,
    /// GANAX generator energy in picojoules.
    pub ganax_energy_pj: f64,
    /// Eyeriss generator energy in picojoules.
    pub eyeriss_energy_pj: f64,
    /// GANAX average PE utilization on the generator.
    pub ganax_utilization: f64,
    /// Eyeriss average PE utilization on the generator.
    pub eyeriss_utilization: f64,
    /// GANAX generator latency in seconds at the point's clock.
    pub ganax_seconds: f64,
}

/// Per-design-point summary across the sweep's networks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DesignSummary {
    /// Design-point label.
    pub design: String,
    /// Processing vectors (MIMD rows).
    pub num_pvs: usize,
    /// PEs per processing vector (SIMD lanes).
    pub pes_per_pv: usize,
    /// Total PEs.
    pub total_pes: usize,
    /// Geometric-mean speedup across the sweep's networks.
    pub geomean_speedup: f64,
    /// Geometric-mean energy reduction across the sweep's networks.
    pub geomean_energy_reduction: f64,
    /// Whether no other design point dominates this one on
    /// (geomean speedup, geomean energy reduction).
    pub pareto_optimal: bool,
}

/// One cycle-level spot check of [`SweepSpec::machine_spot_checks`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineSweepCell {
    /// Design-point label.
    pub design: String,
    /// Table I GAN name (its reduced generator was executed).
    pub network: String,
    /// Channel cap of the reduced generator.
    pub max_channels: usize,
    /// Measured busy PE cycles of the end-to-end run.
    pub busy_pe_cycles: u64,
    /// Measured speedup over the same-budget Eyeriss baseline.
    pub simulated_speedup: f64,
    /// Measured energy reduction over the same-budget Eyeriss baseline.
    pub simulated_energy_reduction: f64,
    /// Whether the machine's activity agrees with the analytic model
    /// ([`SimulatedComparison::is_consistent`]).
    pub consistent: bool,
}

/// The full result of [`SweepSpec::run`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepResult {
    /// The networks evaluated (canonical zoo names, sweep order).
    pub networks: Vec<String>,
    /// Every (design point, network) cell, point-major in spec order.
    pub cells: Vec<SweepCell>,
    /// Per-design-point summaries in spec order, Pareto-flagged.
    pub designs: Vec<DesignSummary>,
}

impl SweepResult {
    /// The Pareto-optimal design points (spec order).
    pub fn pareto_front(&self) -> Vec<&DesignSummary> {
        self.designs.iter().filter(|d| d.pareto_optimal).collect()
    }

    /// Looks one cell up by design label and network name.
    pub fn cell(&self, design: &str, network: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.design == design && c.network == network)
    }
}

/// Flags every design that no other design dominates on the maximization
/// objectives (geomean speedup, geomean energy reduction). `b` dominates `a`
/// when it is at least as good on both and strictly better on one.
fn mark_pareto_front(designs: &mut [DesignSummary]) {
    let metrics: Vec<(f64, f64)> = designs
        .iter()
        .map(|d| (d.geomean_speedup, d.geomean_energy_reduction))
        .collect();
    for (i, design) in designs.iter_mut().enumerate() {
        let (s, e) = metrics[i];
        design.pareto_optimal = !metrics
            .iter()
            .enumerate()
            .any(|(j, &(bs, be))| j != i && bs >= s && be >= e && (bs > s || be > e));
    }
}

/// Deterministic weights (no biases) for every layer of `network`, built
/// from [`Tensor::deterministic`] so spot-check numbers are reproducible
/// across runs and hosts and comparable with the bench/conformance suites.
fn deterministic_weights(network: &ganax_models::Network, seed: u64) -> NetworkWeights {
    let tensors = network
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| Tensor::deterministic(NetworkWeights::expected_shape(l), seed + i as u64))
        .collect();
    NetworkWeights::new(network, tensors).expect("weights generated from the network's own shapes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        assert_eq!(
            SweepSpec::geometry_grid(&[], &["DCGAN"]).unwrap_err(),
            SweepError::Empty { what: "points" }
        );
        assert_eq!(
            SweepSpec::geometry_grid(&[(16, 16)], &[]).unwrap_err(),
            SweepError::Empty { what: "networks" }
        );
        assert!(matches!(
            SweepSpec::geometry_grid(&[(0, 16)], &["DCGAN"]).unwrap_err(),
            SweepError::Config(ConfigError::EmptyArray { .. })
        ));
        assert_eq!(
            SweepSpec::geometry_grid(&[(16, 16)], &["NoSuchGAN"]).unwrap_err(),
            SweepError::UnknownNetwork {
                name: "NoSuchGAN".to_string()
            }
        );
        assert_eq!(
            SweepSpec::geometry_grid(&[(16, 16), (16, 16)], &["DCGAN"]).unwrap_err(),
            SweepError::DuplicateLabel {
                label: "16x16".to_string()
            }
        );
    }

    #[test]
    fn network_names_resolve_case_insensitively_to_canonical_names() {
        let spec = SweepSpec::geometry_grid(&[(16, 16)], &["dcgan", "3d-gan"]).unwrap();
        assert_eq!(spec.networks, vec!["DCGAN", "3D-GAN"]);
    }

    #[test]
    fn run_produces_point_major_cells_and_summaries() {
        let spec = SweepSpec::geometry_grid(&[(16, 16), (8, 8)], &["DCGAN"]).unwrap();
        let result = spec.run();
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.cells[0].design, "16x16");
        assert_eq!(result.cells[1].design, "8x8");
        assert_eq!(result.designs.len(), 2);
        for cell in &result.cells {
            assert!(
                cell.speedup > 1.0,
                "{}: speedup {}",
                cell.design,
                cell.speedup
            );
            assert!(cell.energy_reduction > 1.0);
            assert!(cell.ganax_cycles < cell.eyeriss_cycles);
            assert!(cell.ganax_seconds > 0.0);
        }
        // A single-network sweep's geomeans equal the cell values.
        for (design, cell) in result.designs.iter().zip(&result.cells) {
            assert!((design.geomean_speedup - cell.speedup).abs() < 1e-12);
        }
    }

    #[test]
    fn run_is_thread_count_invariant() {
        let spec =
            SweepSpec::geometry_grid(&[(16, 16), (8, 16), (16, 8)], &["DCGAN", "MAGAN"]).unwrap();
        let serial = spec.clone().with_threads(1).run();
        let threaded = spec.with_threads(4).run();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn pareto_front_is_consistent() {
        let spec = SweepSpec::geometry_grid(
            &[(16, 16), (8, 8), (8, 32), (32, 8), (4, 16)],
            &["DCGAN", "3D-GAN"],
        )
        .unwrap();
        let result = spec.run();
        let front = result.pareto_front();
        assert!(!front.is_empty());
        // The lexicographic argmax on (speedup, energy reduction) can never
        // be dominated, so it must be flagged.
        let best = result
            .designs
            .iter()
            .max_by(|a, b| {
                (a.geomean_speedup, a.geomean_energy_reduction)
                    .partial_cmp(&(b.geomean_speedup, b.geomean_energy_reduction))
                    .unwrap()
            })
            .unwrap();
        assert!(best.pareto_optimal, "argmax design off the front");
        // No front member may be dominated by any other design.
        for a in &front {
            for b in &result.designs {
                let dominates = b.geomean_speedup >= a.geomean_speedup
                    && b.geomean_energy_reduction >= a.geomean_energy_reduction
                    && (b.geomean_speedup > a.geomean_speedup
                        || b.geomean_energy_reduction > a.geomean_energy_reduction);
                assert!(
                    !dominates,
                    "{} dominates front member {}",
                    b.design, a.design
                );
            }
        }
    }

    #[test]
    fn cell_lookup_finds_cells() {
        let spec = SweepSpec::geometry_grid(&[(16, 16)], &["DCGAN"]).unwrap();
        let result = spec.run();
        assert!(result.cell("16x16", "DCGAN").is_some());
        assert!(result.cell("8x8", "DCGAN").is_none());
    }

    #[test]
    fn machine_spot_checks_are_consistent_and_directionally_right() {
        let spec = SweepSpec::geometry_grid(&[(16, 16), (8, 8)], &["DCGAN"]).unwrap();
        let checks = spec.machine_spot_checks(4).unwrap();
        assert_eq!(checks.len(), 2);
        for check in &checks {
            assert!(check.consistent, "{}: machine diverged", check.design);
            assert!(check.busy_pe_cycles > 0);
            assert!(
                check.simulated_speedup > 1.0,
                "{}: simulated speedup {}",
                check.design,
                check.simulated_speedup
            );
        }
    }
}
