//! GANAX-vs-Eyeriss comparison reports: the numbers behind Figures 8–11.
//!
//! The central type is [`ModelComparison`]: it runs one Table I GAN on both
//! accelerator models and exposes every derived metric the paper plots.
//!
//! ```
//! use ganax::compare::{geometric_mean, ModelComparison};
//! use ganax_models::zoo;
//!
//! // Figure 8, one bar: DCGAN's generator on GANAX vs. Eyeriss.
//! let report = ModelComparison::compare(&zoo::dcgan());
//! assert!(report.generator_speedup() > 2.0);
//! assert!(report.generator_energy_reduction() > 1.5);
//!
//! // The discriminator is conventional convolution, so GANAX matches the
//! // baseline there instead of beating it.
//! assert!((report.discriminator_speedup() - 1.0).abs() < 0.05);
//!
//! // The "Geomean" column combines per-model ratios.
//! let geomean = geometric_mean([report.generator_speedup(); 2]);
//! assert!((geomean - report.generator_speedup()).abs() < 1e-9);
//! ```

use ganax_energy::{EnergyBreakdown, EnergyCategory};
use ganax_eyeriss::{EyerissModel, NetworkStats};
use ganax_models::{GanModel, Network};
use ganax_tensor::Tensor;

use crate::config::GanaxConfig;
use crate::machine::{GanaxMachine, MachineError};
use crate::network::{NetworkExecution, NetworkWeights};
use crate::perf::{GanaxModel, LayerCrossCheck};

/// The complete head-to-head comparison of one GAN on the two accelerators.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ModelComparison {
    /// GAN name (Table I).
    pub gan_name: String,
    /// Eyeriss statistics for the generative model.
    pub eyeriss_generator: NetworkStats,
    /// GANAX statistics for the generative model.
    pub ganax_generator: NetworkStats,
    /// Eyeriss statistics for the discriminative model.
    pub eyeriss_discriminator: NetworkStats,
    /// GANAX statistics for the discriminative model.
    pub ganax_discriminator: NetworkStats,
}

impl ModelComparison {
    /// Runs a GAN on both accelerators with the paper's configuration.
    pub fn compare(gan: &GanModel) -> Self {
        Self::compare_with(gan, GanaxConfig::paper())
    }

    /// Runs a GAN on both accelerators with an explicit configuration.
    pub fn compare_with(gan: &GanModel, config: GanaxConfig) -> Self {
        let eyeriss = EyerissModel::new(config.base);
        let ganax = GanaxModel::new(config);
        ModelComparison {
            gan_name: gan.name.clone(),
            eyeriss_generator: eyeriss.run_network(&gan.generator),
            ganax_generator: ganax.run_network(&gan.generator),
            eyeriss_discriminator: eyeriss.run_network(&gan.discriminator),
            ganax_discriminator: ganax.run_network(&gan.discriminator),
        }
    }

    /// Figure 8a: speedup of the generative model on GANAX over Eyeriss.
    pub fn generator_speedup(&self) -> f64 {
        self.eyeriss_generator.total_cycles() as f64
            / self.ganax_generator.total_cycles().max(1) as f64
    }

    /// Figure 8b: energy reduction of the generative model.
    pub fn generator_energy_reduction(&self) -> f64 {
        self.eyeriss_generator.total_energy().total_pj()
            / self
                .ganax_generator
                .total_energy()
                .total_pj()
                .max(f64::MIN_POSITIVE)
    }

    /// Speedup of the discriminative model (expected ≈ 1.0).
    pub fn discriminator_speedup(&self) -> f64 {
        self.eyeriss_discriminator.total_cycles() as f64
            / self.ganax_discriminator.total_cycles().max(1) as f64
    }

    /// Energy ratio of the discriminative model (expected ≈ 1.0).
    pub fn discriminator_energy_ratio(&self) -> f64 {
        self.eyeriss_discriminator.total_energy().total_pj()
            / self
                .ganax_discriminator
                .total_energy()
                .total_pj()
                .max(f64::MIN_POSITIVE)
    }

    /// Figure 9a: runtime split between the discriminative and generative
    /// models, for Eyeriss and GANAX, both normalized to the Eyeriss total.
    /// Returns `((disc, gen) for Eyeriss, (disc, gen) for GANAX)`.
    pub fn runtime_breakdown(&self) -> ((f64, f64), (f64, f64)) {
        let eyeriss_total = (self.eyeriss_discriminator.total_cycles()
            + self.eyeriss_generator.total_cycles()) as f64;
        let e = (
            self.eyeriss_discriminator.total_cycles() as f64 / eyeriss_total,
            self.eyeriss_generator.total_cycles() as f64 / eyeriss_total,
        );
        let g = (
            self.ganax_discriminator.total_cycles() as f64 / eyeriss_total,
            self.ganax_generator.total_cycles() as f64 / eyeriss_total,
        );
        (e, g)
    }

    /// Figure 9b: energy split between the discriminative and generative
    /// models, normalized to the Eyeriss total.
    pub fn energy_breakdown(&self) -> ((f64, f64), (f64, f64)) {
        let eyeriss_total = self.eyeriss_discriminator.total_energy().total_pj()
            + self.eyeriss_generator.total_energy().total_pj();
        let e = (
            self.eyeriss_discriminator.total_energy().total_pj() / eyeriss_total,
            self.eyeriss_generator.total_energy().total_pj() / eyeriss_total,
        );
        let g = (
            self.ganax_discriminator.total_energy().total_pj() / eyeriss_total,
            self.ganax_generator.total_energy().total_pj() / eyeriss_total,
        );
        (e, g)
    }

    /// Figure 10: per-unit energy of the generative model for both
    /// accelerators, normalized to the Eyeriss total. Returns the categories in
    /// `EnergyCategory::ALL` order.
    pub fn generator_unit_energy(&self) -> Vec<(EnergyCategory, f64, f64)> {
        let eyeriss: EnergyBreakdown = self.eyeriss_generator.total_energy();
        let ganax: EnergyBreakdown = self.ganax_generator.total_energy();
        let total = eyeriss.total_pj();
        EnergyCategory::ALL
            .iter()
            .map(|c| (*c, eyeriss.category(*c) / total, ganax.category(*c) / total))
            .collect()
    }

    /// Figure 11: average PE utilization of the generative model on Eyeriss and
    /// GANAX.
    pub fn generator_utilization(&self) -> (f64, f64) {
        (
            self.eyeriss_generator.average_utilization(),
            self.ganax_generator.average_utilization(),
        )
    }
}

/// A *simulated* head-to-head: one network executed end to end on the
/// cycle-level machine ([`GanaxMachine::execute_network`]), cross-checked
/// against the GANAX analytic model and compared against the Eyeriss
/// baseline on the layers the machine actually simulated.
///
/// Where [`ModelComparison`] is entirely analytic, this report grounds the
/// GANAX side in measured machine activity: simulated cycles come from the
/// machine's busy-cycle counters spread over the paper's PE array, and
/// simulated energy is charged to the machine's own [`EventCounts`]
/// (PE-array activity only — the analytic models additionally charge
/// global-buffer and DRAM traffic, so the absolute energy gap is larger than
/// the analytic one; the *direction* is what this report asserts).
///
/// [`EventCounts`]: ganax_energy::EventCounts
#[derive(Debug, Clone)]
pub struct SimulatedComparison {
    /// Network name (typically a Table I generator, possibly reduced).
    pub network_name: String,
    /// The machine execution report.
    pub execution: NetworkExecution,
    /// GANAX analytic statistics for the same network.
    pub analytical: NetworkStats,
    /// Eyeriss analytic statistics for the same network.
    pub eyeriss: NetworkStats,
    /// Per-layer cross-checks of the machine against the analytic model.
    pub checks: Vec<LayerCrossCheck>,
    config: GanaxConfig,
}

impl SimulatedComparison {
    /// Executes `network` on the cycle-level machine with the paper's
    /// configuration and gathers both analytic models for comparison.
    ///
    /// # Errors
    /// Propagates [`MachineError`] from the machine execution.
    pub fn run(
        network: &Network,
        input: &Tensor,
        weights: &NetworkWeights,
    ) -> Result<Self, MachineError> {
        Self::run_with(network, input, weights, GanaxConfig::paper())
    }

    /// As [`SimulatedComparison::run`], with an explicit configuration.
    ///
    /// # Errors
    /// Propagates [`MachineError`] from the machine execution.
    pub fn run_with(
        network: &Network,
        input: &Tensor,
        weights: &NetworkWeights,
        config: GanaxConfig,
    ) -> Result<Self, MachineError> {
        let execution = GanaxMachine::new(config).execute_network(network, input, weights)?;
        let ganax = GanaxModel::new(config);
        let analytical = ganax.run_network(network);
        let eyeriss = EyerissModel::new(config.base).run_network(network);
        let checks = ganax.cross_check(network, &execution);
        Ok(SimulatedComparison {
            network_name: network.name().to_string(),
            execution,
            analytical,
            eyeriss,
            checks,
            config,
        })
    }

    /// Whether every layer's simulated activity agrees with the analytic
    /// model's charge ([`LayerCrossCheck::is_consistent`]).
    pub fn is_consistent(&self) -> bool {
        self.checks.iter().all(LayerCrossCheck::is_consistent)
    }

    /// Wall cycles of the simulated run on the paper's PE array: per
    /// simulated layer, measured busy cycles spread over the array (the
    /// reorganized dataflow keeps every remaining compute node busy on
    /// consequential work, Figure 5c).
    pub fn simulated_cycles(&self) -> u64 {
        self.execution
            .array_cycles(self.config.array().total_pes() as u64)
    }

    /// Eyeriss baseline cycles over the layers the machine simulated (host
    /// layers are excluded from both sides).
    pub fn baseline_cycles(&self) -> u64 {
        self.zipped_machine_layers(&self.eyeriss)
            .map(|(stats, _)| stats.cycles)
            .sum()
    }

    /// Speedup of the simulated machine run over the Eyeriss baseline.
    pub fn simulated_speedup(&self) -> f64 {
        self.baseline_cycles() as f64 / self.simulated_cycles().max(1) as f64
    }

    /// Energy charged to the machine's measured activity counters.
    pub fn simulated_energy_pj(&self) -> f64 {
        self.execution.energy(&self.config.energy()).total_pj()
    }

    /// Eyeriss baseline energy over the layers the machine simulated.
    pub fn baseline_energy_pj(&self) -> f64 {
        self.zipped_machine_layers(&self.eyeriss)
            .map(|(stats, _)| stats.energy.total_pj())
            .sum()
    }

    /// Energy reduction of the simulated run over the Eyeriss baseline.
    pub fn simulated_energy_reduction(&self) -> f64 {
        self.baseline_energy_pj() / self.simulated_energy_pj().max(f64::MIN_POSITIVE)
    }

    /// Pairs an analytic model's per-layer statistics with the machine's
    /// per-layer reports, keeping only the layers the machine simulated.
    fn zipped_machine_layers<'a>(
        &'a self,
        stats: &'a NetworkStats,
    ) -> impl Iterator<Item = (&'a ganax_eyeriss::LayerStats, &'a crate::LayerExecution)> {
        stats
            .layers
            .iter()
            .zip(&self.execution.layers)
            .filter(|(_, run)| !run.host)
    }
}

/// Runs the comparison for every GAN in the Table I zoo.
pub fn compare_all() -> Vec<ModelComparison> {
    ganax_models::zoo::all_models()
        .iter()
        .map(ModelComparison::compare)
        .collect()
}

/// Geometric mean of an iterator of positive values (used for the "Geomean"
/// columns of Figure 8).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, count) = values
        .into_iter()
        .fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if count == 0 {
        return 0.0;
    }
    (sum / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_models::zoo;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(Vec::<f64>::new()), 0.0);
        assert!((geometric_mean([3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dcgan_report_matches_expected_shape() {
        let report = ModelComparison::compare(&zoo::dcgan());
        assert!(report.generator_speedup() > 2.0);
        assert!(report.generator_energy_reduction() > 1.5);
        assert!((report.discriminator_speedup() - 1.0).abs() < 0.05);
        assert!((report.discriminator_energy_ratio() - 1.0).abs() < 0.05);
    }

    #[test]
    fn runtime_breakdown_normalizes_to_eyeriss() {
        let report = ModelComparison::compare(&zoo::dcgan());
        let ((e_disc, e_gen), (g_disc, g_gen)) = report.runtime_breakdown();
        assert!((e_disc + e_gen - 1.0).abs() < 1e-9);
        // GANAX's total is strictly smaller than Eyeriss's.
        assert!(g_disc + g_gen < 1.0);
        assert!(g_gen < e_gen);
    }

    #[test]
    fn energy_breakdown_normalizes_to_eyeriss() {
        let report = ModelComparison::compare(&zoo::three_d_gan());
        let ((e_disc, e_gen), (g_disc, g_gen)) = report.energy_breakdown();
        assert!((e_disc + e_gen - 1.0).abs() < 1e-9);
        assert!(g_disc + g_gen < 1.0);
        assert!(g_gen < e_gen);
    }

    #[test]
    fn unit_energy_shows_reduction_in_every_category() {
        let report = ModelComparison::compare(&zoo::dcgan());
        for (category, eyeriss, ganax) in report.generator_unit_energy() {
            assert!(
                ganax <= eyeriss + 1e-12,
                "{}: {ganax} > {eyeriss}",
                category.label()
            );
        }
    }

    #[test]
    fn simulated_comparison_beats_baseline_on_a_toy_upsampler() {
        use ganax_models::{Activation, NetworkBuilder};
        use ganax_tensor::{ConvParams, Shape};

        let net = NetworkBuilder::new("toy-upsampler", Shape::new_2d(8, 16, 16))
            .tconv(
                "up1",
                8,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Relu,
            )
            .tconv(
                "up2",
                4,
                ConvParams::transposed_2d(4, 2, 1),
                Activation::Tanh,
            )
            .build()
            .unwrap();
        let tensors = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let shape = NetworkWeights::expected_shape(l);
                let mut t = Tensor::zeros(shape);
                for (j, v) in t.data_mut().iter_mut().enumerate() {
                    *v = ((i + j) % 7) as f32 * 0.25 - 0.75;
                }
                t
            })
            .collect();
        let weights = NetworkWeights::new(&net, tensors).unwrap();
        let mut input = Tensor::zeros(net.input_shape());
        for (j, v) in input.data_mut().iter_mut().enumerate() {
            *v = ((j % 11) as f32 - 5.0) * 0.125;
        }

        let report = SimulatedComparison::run(&net, &input, &weights).unwrap();
        assert!(report.is_consistent(), "machine diverged from the model");
        assert!(report.simulated_cycles() > 0);
        assert!(
            report.simulated_speedup() > 1.0,
            "simulated speedup = {}",
            report.simulated_speedup()
        );
        assert!(
            report.simulated_energy_reduction() > 1.0,
            "simulated energy reduction = {}",
            report.simulated_energy_reduction()
        );
    }

    #[test]
    fn utilization_improves_for_every_gan() {
        for gan in zoo::all_models() {
            let report = ModelComparison::compare(&gan);
            let (eyeriss, ganax) = report.generator_utilization();
            assert!(ganax > eyeriss, "{}: {ganax} <= {eyeriss}", gan.name);
            assert!(ganax > 0.55, "{}: GANAX utilization = {ganax}", gan.name);
        }
    }
}
