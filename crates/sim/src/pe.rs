//! A GANAX processing engine: decoupled access and execute µ-engines around
//! three scratchpad buffers.

use ganax_energy::EventCounts;
use ganax_isa::{AccessUop, AddrGenKind, ExecUop};

use crate::access::AccessEngine;
use crate::execute::{ActivationKind, ExecuteEngine};
use crate::fifo::UopFifo;
use crate::index_gen::GeneratorConfig;
use crate::scratchpad::Scratchpad;

/// Sizing of one processing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeConfig {
    /// Words in the input scratchpad.
    pub input_words: usize,
    /// Words in the weight scratchpad.
    pub weight_words: usize,
    /// Words in the output (partial-sum) scratchpad.
    pub output_words: usize,
    /// Entries per address FIFO.
    pub addr_fifo_entries: usize,
    /// Entries in the execute µop FIFO.
    pub uop_fifo_entries: usize,
}

impl PeConfig {
    /// The Table III configuration: a 12-word input register file, 224-word
    /// weight SRAM, 24-word partial-sum register file and 8-entry FIFOs.
    pub fn paper() -> Self {
        PeConfig {
            input_words: 12,
            weight_words: 224,
            output_words: 24,
            addr_fifo_entries: 8,
            uop_fifo_entries: 16,
        }
    }

    /// A roomier configuration used by functional-validation harnesses that
    /// want to keep a whole (small) feature-map row resident in one PE.
    pub fn roomy() -> Self {
        PeConfig {
            input_words: 1024,
            weight_words: 1024,
            output_words: 1024,
            addr_fifo_entries: 8,
            uop_fifo_entries: 16,
        }
    }
}

impl Default for PeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One processing engine: an access µ-engine, an execute µ-engine, the three
/// scratchpads they share, and activity counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingEngine {
    config: PeConfig,
    access: AccessEngine,
    execute: ExecuteEngine,
    uop_fifo: UopFifo,
    input: Scratchpad,
    weights: Scratchpad,
    output: Scratchpad,
    cycles: u64,
    busy_cycles: u64,
    uop_fetches: u64,
}

impl ProcessingEngine {
    /// Creates an idle PE with the given sizing.
    pub fn new(config: PeConfig) -> Self {
        ProcessingEngine {
            config,
            access: AccessEngine::new(config.addr_fifo_entries),
            execute: ExecuteEngine::new(),
            uop_fifo: UopFifo::new(config.uop_fifo_entries),
            input: Scratchpad::new(config.input_words),
            weights: Scratchpad::new(config.weight_words),
            output: Scratchpad::new(config.output_words),
            cycles: 0,
            busy_cycles: 0,
            uop_fetches: 0,
        }
    }

    /// The PE's sizing.
    pub fn config(&self) -> PeConfig {
        self.config
    }

    /// Bulk-loads the input scratchpad from word 0.
    pub fn load_input(&mut self, values: &[f32]) {
        self.input.fill(values);
    }

    /// Bulk-loads the weight scratchpad from word 0.
    pub fn load_weights(&mut self, values: &[f32]) {
        self.weights.fill(values);
    }

    /// Clears the output scratchpad (between output rows).
    pub fn clear_output(&mut self) {
        self.output.reset();
    }

    /// Reads an output word without charging an access (result draining).
    pub fn read_output(&mut self, addr: u16) -> f32 {
        self.output.peek(addr)
    }

    /// The full output scratchpad contents.
    pub fn output_contents(&self) -> &[f32] {
        self.output.contents()
    }

    /// Applies an access µop to the access µ-engine.
    pub fn apply_access(&mut self, uop: &AccessUop) {
        self.access.apply(uop);
    }

    /// Configures one index generator with an explicit configuration.
    pub fn configure_generator(&mut self, gen: AddrGenKind, config: GeneratorConfig) {
        self.access.load_config(gen, config);
    }

    /// Convenience: configures a generator to walk `addr, addr+step, …` up to
    /// (excluding) `end`, replaying the pattern `repeat` times.
    pub fn configure_linear(
        &mut self,
        gen: AddrGenKind,
        addr: u16,
        step: u16,
        end: u16,
        repeat: u16,
    ) {
        self.configure_generator(
            gen,
            GeneratorConfig {
                addr,
                offset: 0,
                step,
                end,
                repeat,
            },
        );
    }

    /// Starts every configured index generator.
    pub fn start_all(&mut self) {
        self.access.start_all();
    }

    /// Starts one index generator.
    pub fn start(&mut self, gen: AddrGenKind) {
        self.access.start(gen);
    }

    /// Loads the execute µ-engine's repeat register (`mimd.ld`).
    pub fn set_repeat(&mut self, count: u16) {
        self.execute.set_repeat(count);
    }

    /// Selects the activation function used by `act` µops.
    pub fn set_activation(&mut self, activation: ActivationKind) {
        self.execute.set_activation(activation);
    }

    /// Pushes an execute µop into the PE's µop FIFO.
    ///
    /// # Panics
    /// Panics if the µop FIFO is full; the dispatcher is expected to respect
    /// the FIFO depth.
    pub fn push_uop(&mut self, uop: ExecUop) {
        self.uop_fifo
            .push(uop)
            .expect("uop fifo overflow: dispatcher must respect fifo depth");
    }

    /// Whether the µop FIFO has room for another µop.
    pub fn can_accept_uop(&self) -> bool {
        !self.uop_fifo.is_full()
    }

    /// Whether the PE has nothing left to do: no in-flight µop, an empty µop
    /// FIFO and no running index generator.
    pub fn is_idle(&self) -> bool {
        !self.execute.is_busy() && self.uop_fifo.is_empty() && !self.access.any_running()
    }

    /// Advances the PE by one cycle. Returns `true` if the execute µ-engine
    /// performed an operation this cycle.
    pub fn step(&mut self) -> bool {
        self.cycles += 1;
        // 1. Access µ-engine generates addresses into its FIFOs.
        self.access.tick();

        // 2. Execute µ-engine: fetch a µop if none is in flight.
        if !self.execute.is_busy() {
            while let Some(uop) = self.uop_fifo.pop() {
                self.uop_fetches += 1;
                if self.execute.issue(uop) {
                    break;
                }
                // `repeat`/`nop` µops retire immediately; keep fetching.
            }
        }
        if !self.execute.is_busy() {
            return false;
        }

        // 3. Check operand availability (empty FIFO ⇒ stall, per the paper).
        let uop = self.execute.current_uop().expect("busy engine has a uop");
        let needs_weight = uop.source_operands() == 2;
        let will_write = uop.writes_destination()
            && (self.execute.remaining_repeats() == 1
                || matches!(uop, ExecUop::Add | ExecUop::Mul | ExecUop::Act));
        if self.access.fifo(AddrGenKind::Input).is_empty() {
            return false;
        }
        if needs_weight && self.access.fifo(AddrGenKind::Weight).is_empty() {
            return false;
        }
        if will_write && self.access.fifo(AddrGenKind::Output).is_empty() {
            return false;
        }

        // 4. Pop addresses, read operands, execute, write back.
        let in_addr = self
            .access
            .fifo_mut(AddrGenKind::Input)
            .pop()
            .expect("input fifo checked non-empty");
        let a = self.input.read(in_addr);
        let b = if needs_weight {
            let w_addr = self
                .access
                .fifo_mut(AddrGenKind::Weight)
                .pop()
                .expect("weight fifo checked non-empty");
            self.weights.read(w_addr)
        } else {
            0.0
        };
        if let Some(value) = self.execute.execute(a, b) {
            let out_addr = self
                .access
                .fifo_mut(AddrGenKind::Output)
                .pop()
                .expect("output fifo checked non-empty");
            self.output.write(out_addr, value);
        }
        self.busy_cycles += 1;
        true
    }

    /// Steps the PE until it is idle or `max_cycles` have elapsed; returns the
    /// number of cycles stepped.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let mut stepped = 0;
        while stepped < max_cycles && !self.is_idle() {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Total cycles stepped.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles in which the execute µ-engine performed an operation.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Activity counters in the Table II categories.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            alu_ops: self.execute.alu_ops(),
            gated_ops: 0,
            register_file_reads: self.input.reads() + self.weights.reads() + self.output.reads(),
            register_file_writes: self.input.writes()
                + self.weights.writes()
                + self.output.writes(),
            inter_pe_transfers: 0,
            global_buffer_reads: 0,
            global_buffer_writes: 0,
            dram_reads: 0,
            dram_writes: 0,
            local_uop_fetches: self.uop_fetches,
            global_uop_fetches: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Streams `n` input/weight pairs through a repeated `mac` and returns the
    /// accumulated dot product written to output word 0.
    fn dot_product(inputs: &[f32], weights: &[f32]) -> f32 {
        let n = inputs.len() as u16;
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(inputs);
        pe.load_weights(weights);
        pe.configure_linear(AddrGenKind::Input, 0, 1, n, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, n, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(n);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        let cycles = pe.run_until_idle(10_000);
        assert!(cycles < 10_000, "PE did not converge");
        pe.read_output(0)
    }

    #[test]
    fn computes_a_dot_product() {
        let inputs = [1.0, 2.0, 3.0, 4.0];
        let weights = [0.5, -1.0, 2.0, 0.25];
        let expected: f32 = inputs.iter().zip(&weights).map(|(a, b)| a * b).sum();
        assert!((dot_product(&inputs, &weights) - expected).abs() < 1e-6);
    }

    #[test]
    fn strided_input_access_skips_zero_columns() {
        // Input holds a zero-inserted row [x0, 0, x1, 0, x2, 0, x3, 0]; a
        // stride-2 access pattern touches only the original elements, which is
        // how GANAX skips inconsequential columns.
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        pe.load_weights(&[1.0, 1.0, 1.0, 1.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 2, 8, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, 4, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(4);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        pe.run_until_idle(1_000);
        assert_eq!(pe.read_output(0), 10.0);
        // Exactly four multiplications were performed — no wasted work on the
        // inserted zeros.
        assert_eq!(pe.counts().alu_ops, 4);
    }

    #[test]
    fn empty_uop_fifo_halts_execution() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        pe.load_input(&[1.0, 2.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.start(AddrGenKind::Input);
        // Addresses flow but no µop ever arrives: nothing executes.
        for _ in 0..10 {
            assert!(!pe.step());
        }
        assert_eq!(pe.counts().alu_ops, 0);
    }

    #[test]
    fn empty_address_fifo_stalls_execution() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        pe.load_input(&[1.0, 2.0]);
        pe.load_weights(&[1.0, 1.0]);
        // Weight generator is never started: mac stalls forever.
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start(AddrGenKind::Input);
        pe.start(AddrGenKind::Output);
        pe.set_repeat(2);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        for _ in 0..20 {
            pe.step();
        }
        assert_eq!(pe.counts().alu_ops, 0);
        assert!(!pe.is_idle());
    }

    #[test]
    fn act_uop_applies_activation_elementwise() {
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[-1.0, 2.0, -3.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 3, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 3, 1);
        pe.start(AddrGenKind::Input);
        pe.start(AddrGenKind::Output);
        pe.set_activation(ActivationKind::Relu);
        for _ in 0..3 {
            pe.push_uop(ExecUop::Act);
        }
        pe.run_until_idle(1_000);
        assert_eq!(pe.output_contents()[..3], [0.0, 2.0, 0.0]);
    }

    #[test]
    fn counters_track_scratchpad_traffic() {
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[1.0, 2.0]);
        pe.load_weights(&[3.0, 4.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(2);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        pe.run_until_idle(1_000);
        let counts = pe.counts();
        assert_eq!(counts.alu_ops, 2);
        // 2 input reads + 2 weight reads.
        assert_eq!(counts.register_file_reads, 4);
        // Bulk loads (2 + 2 words) plus the single result write-back.
        assert_eq!(counts.register_file_writes, 5);
        assert_eq!(counts.local_uop_fetches, 2);
        assert!(pe.busy_cycles() >= 2);
        assert!(pe.cycles() >= pe.busy_cycles());
    }

    #[test]
    fn idle_detection() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        assert!(pe.is_idle());
        pe.push_uop(ExecUop::Mac);
        assert!(!pe.is_idle());
    }
}
