//! A GANAX processing engine: decoupled access and execute µ-engines around
//! three scratchpad buffers.

use ganax_energy::EventCounts;
use ganax_isa::{AccessUop, AddrGenKind, ExecUop};
use serde::{Deserialize, Serialize};

use crate::access::AccessEngine;
use crate::execute::{ActivationKind, ExecuteEngine};
use crate::fifo::{FifoError, UopFifo};
use crate::index_gen::{GeneratorConfig, StridedIndexGenerator};
use crate::scratchpad::Scratchpad;

/// Sizing of one processing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeConfig {
    /// Words in the input scratchpad.
    pub input_words: usize,
    /// Words in the weight scratchpad.
    pub weight_words: usize,
    /// Words in the output (partial-sum) scratchpad.
    pub output_words: usize,
    /// Entries per address FIFO.
    pub addr_fifo_entries: usize,
    /// Entries in the execute µop FIFO.
    pub uop_fifo_entries: usize,
}

impl PeConfig {
    /// The Table III configuration: a 12-word input register file, 224-word
    /// weight SRAM, 24-word partial-sum register file and 8-entry FIFOs.
    pub fn paper() -> Self {
        PeConfig {
            input_words: 12,
            weight_words: 224,
            output_words: 24,
            addr_fifo_entries: 8,
            uop_fifo_entries: 16,
        }
    }

    /// A roomier configuration used by functional-validation harnesses that
    /// want to keep a whole (small) feature-map row resident in one PE. The
    /// deep µop FIFO lets the machine dispatch a long run of per-column
    /// `repeat`+`mac` programs in one go.
    pub fn roomy() -> Self {
        PeConfig {
            input_words: 1024,
            weight_words: 1024,
            output_words: 1024,
            addr_fifo_entries: 8,
            uop_fifo_entries: 256,
        }
    }

    /// The deep simulation configuration `GanaxConfig::paper` installs for
    /// its worker PEs (`sim_pe`): the same microarchitecture as
    /// [`PeConfig::roomy`] with scratchpads and µop FIFO sized so one
    /// dispatch covers a whole channel group of a full-size Table I layer.
    /// Dispatch *count* is what the per-dispatch retire path amortizes its
    /// fixed bookkeeping over, so deeper buffers directly shrink simulation
    /// wall-clock; modeled activity is invariant to the depth (operand
    /// traffic, µop fetches and busy cycles count programs and words, not
    /// dispatches). Capacities stay well inside the `u16` address space the
    /// index generators require.
    pub fn deep() -> Self {
        PeConfig {
            input_words: 16384,
            weight_words: 16384,
            output_words: 16384,
            addr_fifo_entries: 8,
            uop_fifo_entries: 8192,
        }
    }
}

impl Default for PeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One processing engine: an access µ-engine, an execute µ-engine, the three
/// scratchpads they share, and activity counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingEngine {
    config: PeConfig,
    access: AccessEngine,
    execute: ExecuteEngine,
    uop_fifo: UopFifo,
    input: Scratchpad,
    weights: Scratchpad,
    output: Scratchpad,
    cycles: u64,
    busy_cycles: u64,
    uop_fetches: u64,
}

impl ProcessingEngine {
    /// Creates an idle PE with the given sizing.
    pub fn new(config: PeConfig) -> Self {
        ProcessingEngine {
            config,
            access: AccessEngine::new(config.addr_fifo_entries),
            execute: ExecuteEngine::new(),
            uop_fifo: UopFifo::new(config.uop_fifo_entries),
            input: Scratchpad::new(config.input_words),
            weights: Scratchpad::new(config.weight_words),
            output: Scratchpad::new(config.output_words),
            cycles: 0,
            busy_cycles: 0,
            uop_fetches: 0,
        }
    }

    /// The PE's sizing.
    pub fn config(&self) -> PeConfig {
        self.config
    }

    /// Resets the PE to its just-constructed state **in place**: scratchpads
    /// zeroed, FIFOs emptied, index generators cleared and stopped, the
    /// execute µ-engine idled, and every cycle/activity counter zeroed — all
    /// without releasing a single allocation. A long-lived worker PE calls
    /// this between dispatch batches instead of being reconstructed, so the
    /// serving steady state stays allocation-free.
    ///
    /// After `reset`, the PE compares equal to `ProcessingEngine::new(config)`.
    pub fn reset(&mut self) {
        self.access.reset();
        self.execute.reset();
        self.uop_fifo.clear();
        self.input.reset();
        self.weights.reset();
        self.output.reset();
        self.cycles = 0;
        self.busy_cycles = 0;
        self.uop_fetches = 0;
    }

    /// Bulk-loads the input scratchpad from word 0.
    pub fn load_input(&mut self, values: &[f32]) {
        self.input.fill(values);
    }

    /// Bulk-loads the weight scratchpad from word 0.
    pub fn load_weights(&mut self, values: &[f32]) {
        self.weights.fill(values);
    }

    /// Bulk-loads `len` input words through an in-place gather closure
    /// (counted as writes, like [`ProcessingEngine::load_input`]).
    pub fn load_input_with(&mut self, len: usize, f: impl FnOnce(&mut [f32])) {
        self.input.fill_with(len, f);
    }

    /// Bulk-loads `len` weight words through an in-place gather closure
    /// (counted as writes, like [`ProcessingEngine::load_weights`]).
    pub fn load_weights_with(&mut self, len: usize, f: impl FnOnce(&mut [f32])) {
        self.weights.fill_with(len, f);
    }

    /// Clears the output scratchpad (between output rows).
    pub fn clear_output(&mut self) {
        self.output.reset();
    }

    /// Reads an output word without charging an access (result draining).
    pub fn read_output(&mut self, addr: u16) -> f32 {
        self.output.peek(addr)
    }

    /// The full output scratchpad contents.
    pub fn output_contents(&self) -> &[f32] {
        self.output.contents()
    }

    /// Applies an access µop to the access µ-engine.
    pub fn apply_access(&mut self, uop: &AccessUop) {
        self.access.apply(uop);
    }

    /// Configures one index generator with an explicit configuration.
    pub fn configure_generator(&mut self, gen: AddrGenKind, config: GeneratorConfig) {
        self.access.load_config(gen, config);
    }

    /// Convenience: configures a generator to walk `addr, addr+step, …` up to
    /// (excluding) `end`, replaying the pattern `repeat` times.
    pub fn configure_linear(
        &mut self,
        gen: AddrGenKind,
        addr: u16,
        step: u16,
        end: u16,
        repeat: u16,
    ) {
        self.configure_generator(
            gen,
            GeneratorConfig {
                addr,
                offset: 0,
                step,
                end,
                repeat,
            },
        );
    }

    /// Starts every configured index generator.
    pub fn start_all(&mut self) {
        self.access.start_all();
    }

    /// Starts one index generator.
    pub fn start(&mut self, gen: AddrGenKind) {
        self.access.start(gen);
    }

    /// Loads the execute µ-engine's repeat register (`mimd.ld`).
    pub fn set_repeat(&mut self, count: u16) {
        self.execute.set_repeat(count);
    }

    /// Selects the activation function used by `act` µops.
    pub fn set_activation(&mut self, activation: ActivationKind) {
        self.execute.set_activation(activation);
    }

    /// Pushes an execute µop into the PE's µop FIFO, reporting overflow to
    /// the dispatcher instead of panicking.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the µop FIFO is full.
    pub fn try_push_uop(&mut self, uop: ExecUop) -> Result<(), FifoError> {
        self.uop_fifo.push(uop)
    }

    /// Pushes an execute µop into the PE's µop FIFO.
    ///
    /// # Panics
    /// Panics if the µop FIFO is full; the dispatcher is expected to respect
    /// the FIFO depth (use [`ProcessingEngine::try_push_uop`] to recover
    /// instead).
    pub fn push_uop(&mut self, uop: ExecUop) {
        self.try_push_uop(uop)
            .expect("uop fifo overflow: dispatcher must respect fifo depth");
    }

    /// Pushes a batch of execute µops with a single capacity check (a
    /// dispatcher issuing a whole program at once).
    ///
    /// # Errors
    /// Returns [`FifoError`] (pushing nothing) when the batch does not fit.
    pub fn try_push_uops(&mut self, uops: &[ExecUop]) -> Result<(), FifoError> {
        self.uop_fifo.push_all(uops)
    }

    /// Pushes `pairs` uniform `repeat`+`mac` programs with a single capacity
    /// check. The µop FIFO holds them virtually (a pair count instead of
    /// `2 × pairs` queue entries), which both skips the per-µop queue traffic
    /// and lets [`ProcessingEngine::step_burst`] recognize the whole dispatch
    /// without walking the queue. Observationally identical to
    /// [`ProcessingEngine::try_push_uops`] of the same sequence.
    ///
    /// # Errors
    /// Returns [`FifoError`] (pushing nothing) when the batch does not fit.
    pub fn try_push_mac_pairs(&mut self, pairs: usize) -> Result<(), FifoError> {
        self.uop_fifo.try_push_mac_pairs(pairs)
    }

    /// Whether the µop FIFO has room for another µop.
    pub fn can_accept_uop(&self) -> bool {
        !self.uop_fifo.is_full()
    }

    /// Whether the PE has nothing left to do: no in-flight µop, an empty µop
    /// FIFO and no running index generator.
    pub fn is_idle(&self) -> bool {
        !self.execute.is_busy() && self.uop_fifo.is_empty() && !self.access.any_running()
    }

    /// Advances the PE by one cycle. Returns `true` if the execute µ-engine
    /// performed an operation this cycle.
    pub fn step(&mut self) -> bool {
        self.cycles += 1;
        // 1. Access µ-engine generates addresses into its FIFOs.
        self.access.tick();

        // 2. Execute µ-engine: fetch a µop if none is in flight.
        if !self.execute.is_busy() {
            while let Some(uop) = self.uop_fifo.pop() {
                self.uop_fetches += 1;
                if self.execute.issue(uop) {
                    break;
                }
                // `repeat`/`nop` µops retire immediately; keep fetching.
            }
        }
        if !self.execute.is_busy() {
            return false;
        }

        // 3. Check operand availability (empty FIFO ⇒ stall, per the paper).
        let uop = self.execute.current_uop().expect("busy engine has a uop");
        let needs_weight = uop.source_operands() == 2;
        let will_write = uop.writes_destination()
            && (self.execute.remaining_repeats() == 1
                || matches!(uop, ExecUop::Add | ExecUop::Mul | ExecUop::Act));
        if self.access.fifo(AddrGenKind::Input).is_empty() {
            return false;
        }
        if needs_weight && self.access.fifo(AddrGenKind::Weight).is_empty() {
            return false;
        }
        if will_write && self.access.fifo(AddrGenKind::Output).is_empty() {
            return false;
        }

        // 4. Pop addresses, read operands, execute, write back.
        let in_addr = self
            .access
            .fifo_mut(AddrGenKind::Input)
            .pop()
            .expect("input fifo checked non-empty");
        let a = self.input.read(in_addr);
        let b = if needs_weight {
            let w_addr = self
                .access
                .fifo_mut(AddrGenKind::Weight)
                .pop()
                .expect("weight fifo checked non-empty");
            self.weights.read(w_addr)
        } else {
            0.0
        };
        if let Some(value) = self.execute.execute(a, b) {
            let out_addr = self
                .access
                .fifo_mut(AddrGenKind::Output)
                .pop()
                .expect("output fifo checked non-empty");
            self.output.write(out_addr, value);
        }
        self.busy_cycles += 1;
        true
    }

    /// Steps the PE until it is idle or `max_cycles` have elapsed; returns the
    /// number of cycles stepped.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let mut stepped = 0;
        while stepped < max_cycles && !self.is_idle() {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Like [`ProcessingEngine::run_until_idle`], but retires repeated `mac`
    /// runs through [`ProcessingEngine::step_burst`]. Final state, outputs and
    /// every counter are bit-identical to the single-step path.
    pub fn run_until_idle_burst(&mut self, max_cycles: u64) -> u64 {
        let mut stepped = 0;
        while stepped < max_cycles && !self.is_idle() {
            let advanced = self.step_burst(max_cycles - stepped);
            if advanced == 0 {
                break;
            }
            stepped += advanced;
        }
        stepped
    }

    /// Advances the PE by up to `budget` cycles in one call, returning how
    /// many cycles elapsed.
    ///
    /// When the in-flight µop is a repeated `mac` — or the µop FIFO's next
    /// fetch would put one in flight — and the address FIFOs plus their index
    /// generators can prove `n` stall-free cycles, the whole run of `n`
    /// repetitions (including the fetch cycle) retires at once — with
    /// outputs, `cycles()`, `busy_cycles()`, [`EventCounts`] and
    /// FIFO/generator/stall bookkeeping bit-identical to calling
    /// [`ProcessingEngine::step`] `n` times. In every other situation it falls
    /// back to a single [`ProcessingEngine::step`].
    pub fn step_burst(&mut self, budget: u64) -> u64 {
        if budget == 0 || self.is_idle() {
            return 0;
        }
        if self.execute.is_busy() {
            if matches!(self.execute.current_uop(), Some(ExecUop::Mac)) {
                let repeats = self.execute.remaining_repeats() as u64;
                let n = self.provable_mac_cycles(repeats, budget);
                if n >= 2 {
                    self.burst_mac(n);
                    return n;
                }
            }
            self.step();
            return 1;
        }
        // Fetch mode: peek the µop queue for a run of `repeat`+`mac` programs
        // (mirroring `step`'s fetch loop without consuming anything) and count
        // how many of them are provably stall-free end to end. Operand supply
        // is one address per cycle across program boundaries; program `j`'s
        // write-back needs a `j`-th output address by its final cycle.
        let supply = budget
            .min(self.operand_supply(AddrGenKind::Input, budget))
            .min(self.operand_supply(AddrGenKind::Weight, budget));
        let out_queued = self.access.fifo(AddrGenKind::Output).len() as u64;
        let out_gen_supply = self
            .access
            .generator(AddrGenKind::Output)
            .remaining_addresses_up_to(budget.saturating_add(1));
        // Pair fast-scan: a queue beginning with `repeat`+`mac` pairs (the
        // machine's dispatch shape) has uniform per-program repeats — the
        // repeat register — so the provable program count collapses to two
        // divisions (supply / repeats, and the output-address pool) plus a
        // tag check per pair.
        let repeats = (self.execute.repeat_register() as u64).max(1);
        let pair_cap = (supply / repeats).min(out_queued + out_gen_supply);
        if pair_cap >= 1 {
            // A virtually-held queue already knows it is all pairs; a
            // materialized one is scanned tag by tag.
            let pairs = match self.uop_fifo.uniform_pairs() {
                Some(queued) => (queued as u64).min(pair_cap),
                None => {
                    let mut pairs = 0u64;
                    let mut queue = self.uop_fifo.iter();
                    while pairs < pair_cap {
                        match (queue.next(), queue.next()) {
                            (Some(ExecUop::Repeat), Some(ExecUop::Mac)) => pairs += 1,
                            _ => break,
                        }
                    }
                    pairs
                }
            };
            if pairs >= 1 {
                let total = pairs * repeats;
                // Per-dispatch retire: when the dispatch matches the
                // machine's canonical shape the whole thing settles in
                // closed form; anything else takes the per-program path.
                if !self.retire_uniform_dispatch(pairs, repeats) {
                    self.retire_mac_programs(pairs, total, 2 * pairs as usize, Some(repeats));
                }
                return total;
            }
        }
        let mut pending = self.execute.pending_repeat();
        let mut programs = 0u64;
        let mut total = 0u64;
        let mut first_repeats: Option<u64> = None;
        let mut uniform = true;
        let mut walked = 0usize;
        let mut consumed = 0usize;
        for uop in self.uop_fifo.iter() {
            walked += 1;
            match uop {
                ExecUop::Repeat => pending = Some(self.execute.repeat_register() as u32),
                ExecUop::Nop => {}
                ExecUop::Mac => {
                    let repeats = pending.take().unwrap_or(1).max(1) as u64;
                    match first_repeats {
                        None => first_repeats = Some(repeats),
                        Some(first) => uniform &= repeats == first,
                    }
                    let cumulative = total + repeats;
                    // Output-FIFO full-stalls never starve the write-back (a
                    // full FIFO has addresses queued), so availability is
                    // exactly a supply question.
                    if cumulative > supply
                        || out_queued + out_gen_supply.min(cumulative) < programs + 1
                    {
                        break;
                    }
                    programs += 1;
                    total = cumulative;
                    consumed = walked;
                }
                _ => break,
            }
        }
        if programs >= 1 {
            // A uniform queue of plain pairs retires without re-deriving each
            // program's repeat count.
            let uniform_repeats = (uniform && consumed == 2 * programs as usize)
                .then(|| first_repeats.expect("programs imply a first repeat count"));
            self.retire_mac_programs(programs, total, consumed, uniform_repeats);
            return total;
        }
        // Operands or output starve even the first program: burst the stall-free
        // prefix of its repetitions, if any.
        if let Some(repeats) = first_repeats {
            let n = self.provable_mac_cycles(repeats, budget);
            if n >= 1 {
                while let Some(uop) = self.uop_fifo.pop() {
                    self.uop_fetches += 1;
                    if self.execute.issue(uop) {
                        break;
                    }
                }
                debug_assert!(matches!(self.execute.current_uop(), Some(ExecUop::Mac)));
                self.burst_mac(n);
                return n;
            }
        }
        self.step();
        1
    }

    /// Retires `pairs` uniform `repeat`+`mac` programs of `repeats`
    /// repetitions each as **one dispatch**, settling FIFO occupancy,
    /// index-generator state, cycle counts and every [`EventCounts`] category
    /// once in closed form instead of once per program. Returns `false`
    /// (touching nothing) when the dispatch does not match the canonical
    /// machine shape, and the caller falls back to the per-program
    /// [`ProcessingEngine::retire_mac_programs`].
    ///
    /// The canonical shape, proven before any state moves:
    /// * all three address FIFOs empty — every address comes straight off its
    ///   generator, so FIFO traffic is pure pass-through accounting;
    /// * input and weight generators in a step-1 wrap window (guarded against
    ///   `u16` wraparound) — operand streams reduce to slice windows;
    /// * the output generator in a step-1 wrap window with exactly one
    ///   remaining address per program — write-backs land on a contiguous
    ///   (or wrapping) slice and the output FIFO never materializes.
    ///
    /// The caller has already proven operand supply covers
    /// `pairs × repeats` repetitions (the `pair_cap` bound), which with empty
    /// FIFOs means each operand generator supplies the whole dispatch.
    fn retire_uniform_dispatch(&mut self, pairs: u64, repeats: u64) -> bool {
        let in_idx = AddrGenKind::Input.index();
        let wt_idx = AddrGenKind::Weight.index();
        let out_idx = AddrGenKind::Output.index();
        let total = pairs * repeats;
        let (gens, fifos, stall_cycles) = self.access.burst_parts();
        if !fifos[in_idx].is_empty() || !fifos[wt_idx].is_empty() || !fifos[out_idx].is_empty() {
            return false;
        }
        // Absolute scratchpad windows, as in the per-program path: the
        // constant `offset` shifts the whole window and the wrap returns to
        // the window base, mirroring `tick`'s `offset + (pos % end)`.
        let window = |gen: &StridedIndexGenerator| -> Option<(usize, usize, usize)> {
            let base = gen.offset() as usize;
            gen.burst_wrap_window()
                .filter(|&(_, end)| base + end as usize <= u16::MAX as usize + 1)
                .map(|(current, end)| (base + current as usize, base + end as usize, base))
        };
        let (Some((mut in_pos, in_end, in_base)), Some((mut wt_pos, wt_end, wt_base))) =
            (window(&gens[in_idx]), window(&gens[wt_idx]))
        else {
            return false;
        };
        let out_cap = fifos[out_idx].capacity() as u64;
        let out_base = gens[out_idx].offset() as u64;
        let Some((out_cur, out_end)) = gens[out_idx]
            .burst_wrap_window()
            .filter(|&(_, end)| out_base + end as u64 <= u16::MAX as u64 + 1)
            .and_then(|(current, end)| {
                let supply = gens[out_idx].remaining_addresses_up_to(total + out_cap + 1);
                (supply == pairs).then_some((current as u64, end as u64))
            })
        else {
            return false;
        };

        // Accumulate each program over the operand slice windows — same
        // operation and order as `ExecuteEngine::execute`, so every f32
        // result is bit-identical — and store it straight into the output
        // scratchpad at the address the generator would have produced.
        let in_data = self.input.contents();
        let wt_data = self.weights.contents();
        let out_data = self.output.contents_mut();
        let mut acc = self.execute.accumulator();
        let contiguous = (out_cur + pairs <= out_end).then(|| (out_base + out_cur) as usize);
        let r = repeats as usize;
        let aligned = contiguous.is_some()
            && (in_end - in_base) % r == 0
            && (in_end - in_pos) % r == 0
            && (wt_end - wt_base) % r == 0
            && (wt_end - wt_pos) % r == 0;
        if aligned {
            // The machine's dispatch shape: both operand windows hold whole
            // programs and both positions sit on a program boundary, so the
            // dispatch decomposes into *sweeps* — the longest stretch of
            // whole programs before either window wraps. Inside a sweep every
            // program is a straight `r`-word slice pair, so the hot loop
            // carries no window arithmetic; all division happens here, once.
            let out0 = contiguous.expect("aligned implies a contiguous output run");
            let in_full = (in_end - in_base) / r;
            let wt_full = (wt_end - wt_base) / r;
            let mut in_avail = (in_end - in_pos) / r;
            let mut wt_avail = (wt_end - wt_pos) / r;
            let mut j = 0usize;
            let mut left = pairs as usize;
            while left > 0 {
                let sweep = in_avail.min(wt_avail).min(left);
                for _ in 0..sweep {
                    let lhs = &in_data[in_pos..in_pos + r];
                    let rhs = &wt_data[wt_pos..wt_pos + r];
                    for (a, b) in lhs.iter().zip(rhs) {
                        acc += a * b;
                    }
                    out_data[out0 + j] = acc;
                    acc = 0.0;
                    j += 1;
                    in_pos += r;
                    wt_pos += r;
                }
                left -= sweep;
                in_avail -= sweep;
                if in_avail == 0 {
                    in_pos = in_base;
                    in_avail = in_full;
                }
                wt_avail -= sweep;
                if wt_avail == 0 {
                    wt_pos = wt_base;
                    wt_avail = wt_full;
                }
            }
        } else {
            // Off-boundary windows (mid-pair resume, wrapping output run):
            // the general per-program loop splits runs at every wrap.
            for j in 0..pairs {
                let mut left = repeats as usize;
                while left > 0 {
                    let run = left.min(in_end - in_pos).min(wt_end - wt_pos);
                    let lhs = &in_data[in_pos..in_pos + run];
                    let rhs = &wt_data[wt_pos..wt_pos + run];
                    for (a, b) in lhs.iter().zip(rhs) {
                        acc += a * b;
                    }
                    in_pos += run;
                    if in_pos == in_end {
                        in_pos = in_base;
                    }
                    wt_pos += run;
                    if wt_pos == wt_end {
                        wt_pos = wt_base;
                    }
                    left -= run;
                }
                let addr = match contiguous {
                    Some(abs) => abs + j as usize,
                    None => (out_base + (out_cur + j) % out_end) as usize,
                };
                out_data[addr] = acc;
                acc = 0.0;
            }
        }

        // Settle once per dispatch what the per-program path settles once per
        // program: µop fetches, operand pass-through and generator advances,
        // output-generator stalls against the never-popped FIFO, scratchpad
        // access counters, and the execute µ-engine's program count.
        self.uop_fifo.consume_front(2 * pairs as usize);
        self.uop_fetches += 2 * pairs;
        fifos[in_idx].note_passthrough(total);
        gens[in_idx].advance_wrapping(total);
        fifos[wt_idx].note_passthrough(total);
        gens[wt_idx].advance_wrapping(total);
        *stall_cycles += uniform_output_stalls(pairs, repeats, out_cap);
        fifos[out_idx].note_passthrough(pairs);
        gens[out_idx].advance_wrapping(pairs);
        self.input.charge_reads(total);
        self.weights.charge_reads(total);
        self.output.charge_writes(pairs);
        self.execute.settle_mac_programs(total);
        self.cycles += total;
        self.busy_cycles += total;
        true
    }

    /// Retires `programs` consecutive `repeat`+`mac` programs (`total`
    /// repetitions in all, `consumed` µops from the FIFO) in one call,
    /// replicating the single-step path's per-cycle bookkeeping: µop-fetch
    /// accounting per program, one operand address per cycle (FIFO first,
    /// then generator pass-through), exact output-generator tick/stall
    /// interleaving, and a write-back per program.
    ///
    /// When an operand side starts with an empty FIFO and a generator in a
    /// pure linear final round — the machine's gathered-stream dispatch —
    /// its addresses reduce to slice windows and the accumulation runs as a
    /// tight dot-product loop, with the generator state settled once at the
    /// end. Any other shape takes the general per-cycle path.
    fn retire_mac_programs(
        &mut self,
        programs: u64,
        total: u64,
        consumed: usize,
        uniform_repeats: Option<u64>,
    ) {
        let in_idx = AddrGenKind::Input.index();
        let wt_idx = AddrGenKind::Weight.index();
        let out_idx = AddrGenKind::Output.index();
        let repeat_register = self.execute.repeat_register();
        let mut pending = self.execute.pending_repeat();
        let mut acc = self.execute.accumulator();
        let (gens, fifos, stall_cycles) = self.access.burst_parts();

        // Operand prologue — a full FIFO whose generator still runs stalls it
        // for exactly the first cycle (the per-cycle pop keeps a slot free
        // afterwards), and generators produce one address per non-stalled
        // cycle until exhausted.
        let mut produced = [0u64; 2];
        let mut take = [0u64; 2];
        for (slot, idx) in [in_idx, wt_idx].into_iter().enumerate() {
            let stall = u64::from(gens[idx].is_running() && fifos[idx].is_full());
            *stall_cycles += stall;
            produced[slot] = gens[idx].remaining_addresses_up_to(total - stall);
            take[slot] = (fifos[idx].len() as u64).min(total);
        }
        // Step-1 wrap windows let the accumulation loop read slice windows
        // (splitting at the wrap boundary). The windowed loop engages only
        // when both sides qualify — and their FIFOs are empty, so every
        // address comes straight off the generator; otherwise the general
        // per-cycle path ticks both generators.
        // Windows are absolute scratchpad positions: the generator's constant
        // `offset` shifts the whole window (the engine keeps several gathered
        // streams resident and addresses one via `offset`), and the wrap goes
        // back to the window base, mirroring `tick`'s `offset + (pos % end)`.
        // Guarded against u16 wraparound, which only `tick` reproduces.
        let wrap_window =
            |gen: &StridedIndexGenerator, take: u64| -> Option<(usize, usize, usize)> {
                if take != 0 {
                    return None;
                }
                let base = gen.offset() as usize;
                gen.burst_wrap_window()
                    .filter(|&(_, end)| base + end as usize <= u16::MAX as usize + 1)
                    .map(|(current, end)| (base + current as usize, base + end as usize, base))
            };
        let windows = match (
            wrap_window(&gens[in_idx], take[0]),
            wrap_window(&gens[wt_idx], take[1]),
        ) {
            (Some(input), Some(weight)) => Some((input, weight)),
            _ => None,
        };

        // Output fast path: FIFO empty, wrap-window generator, and exactly
        // one address produced per program — then program `j` pops address
        // `(current + j) mod end` and the FIFO never materializes; its
        // occupancy, the generator's full-FIFO stalls and the pass-through
        // counters reduce to integer bookkeeping.
        let out_cap = fifos[out_idx].capacity() as u64;
        let out_base = gens[out_idx].offset() as u64;
        let out_fast = if fifos[out_idx].is_empty() {
            gens[out_idx]
                .burst_wrap_window()
                .filter(|&(_, end)| out_base + end as u64 <= u16::MAX as u64 + 1)
                .and_then(|(current, end)| {
                    let supply = gens[out_idx].remaining_addresses_up_to(total + out_cap + 1);
                    (supply == programs).then_some((current as u64, end as u64))
                })
        } else {
            None
        };
        let mut out_len = 0u64;
        let mut out_produced = 0u64;

        let in_data = self.input.contents();
        let wt_data = self.weights.contents();
        let mut taken = [0u64; 2];
        let mut done = 0u64;
        let mut popped = 0u64;
        // Window cursors (positions advance modulo each window's wrap point,
        // wrapping back to the window base).
        let (mut in_pos, in_end, in_base) = windows.map(|(i, _)| i).unwrap_or((0, 1, 0));
        let (mut wt_pos, wt_end, wt_base) = windows.map(|(_, w)| w).unwrap_or((0, 1, 0));
        // Fetch the whole proven program queue at once; with a uniform queue
        // the per-program repeat counts need no re-derivation and the drain
        // drops in bulk.
        let mut uops = self.uop_fifo.drain_front(consumed);
        if uniform_repeats.is_some() {
            drop(uops);
            uops = self.uop_fifo.drain_front(0);
        }
        self.uop_fetches += consumed as u64;
        for _ in 0..programs {
            // Fetch — the walk already proved this prefix issues a `mac`.
            let repeats = match uniform_repeats {
                Some(repeats) => repeats,
                None => loop {
                    match uops.next().expect("walk counted the drained µops") {
                        ExecUop::Repeat => pending = Some(repeat_register as u32),
                        ExecUop::Nop => {}
                        ExecUop::Mac => break pending.take().unwrap_or(1).max(1) as u64,
                        other => unreachable!("walk admitted non-program µop {other:?}"),
                    }
                },
            };

            // Accumulate `repeats` operand pairs — same operation and order
            // as `ExecuteEngine::execute`, so the f32 result is bit-identical.
            match windows {
                Some(_) => {
                    let mut left = repeats as usize;
                    while left > 0 {
                        let run = left.min(in_end - in_pos).min(wt_end - wt_pos);
                        let lhs = &in_data[in_pos..in_pos + run];
                        let rhs = &wt_data[wt_pos..wt_pos + run];
                        for (a, b) in lhs.iter().zip(rhs) {
                            acc += a * b;
                        }
                        in_pos += run;
                        if in_pos == in_end {
                            in_pos = in_base;
                        }
                        wt_pos += run;
                        if wt_pos == wt_end {
                            wt_pos = wt_base;
                        }
                        left -= run;
                    }
                }
                None => {
                    for _ in 0..repeats {
                        let ia = if taken[0] < take[0] {
                            taken[0] += 1;
                            fifos[in_idx].pop().expect("input fifo length checked")
                        } else {
                            gens[in_idx].tick().expect("input supply proved")
                        };
                        let wa = if taken[1] < take[1] {
                            taken[1] += 1;
                            fifos[wt_idx].pop().expect("weight fifo length checked")
                        } else {
                            gens[wt_idx].tick().expect("weight supply proved")
                        };
                        acc += in_data[ia as usize] * wt_data[wa as usize];
                    }
                }
            }
            done += repeats;

            // Output side, closed form per program: the generator pushes
            // until the FIFO fills or it exhausts; every remaining cycle of a
            // running generator against a full FIFO is a stall — exactly the
            // per-cycle tick semantics.
            let out_addr = match out_fast {
                Some((current, end)) => {
                    let pushes = repeats.min(out_cap - out_len).min(programs - out_produced);
                    if programs - out_produced > pushes {
                        *stall_cycles += repeats - pushes;
                    }
                    out_len += pushes;
                    out_produced += pushes;
                    debug_assert!(out_len >= 1, "output availability proved");
                    out_len -= 1;
                    let addr = (out_base + (current + popped) % end) as u16;
                    popped += 1;
                    addr
                }
                None => {
                    let mut pushed = 0u64;
                    while pushed < repeats
                        && !fifos[out_idx].is_full()
                        && gens[out_idx].is_running()
                    {
                        let addr = gens[out_idx].tick().expect("running generator produces");
                        fifos[out_idx].push(addr).expect("fullness checked");
                        pushed += 1;
                    }
                    if gens[out_idx].is_running() {
                        *stall_cycles += repeats - pushed;
                    }
                    fifos[out_idx].pop().expect("output availability proved")
                }
            };
            self.output.write(out_addr, acc);
            acc = 0.0;
        }
        debug_assert_eq!(done, total);
        debug_assert!(uops.next().is_none());
        drop(uops);
        if out_fast.is_some() {
            debug_assert!(out_len == 0 && out_produced == programs);
            fifos[out_idx].note_passthrough(programs);
            gens[out_idx].advance_wrapping(programs);
        }

        // Operand epilogue: pass-through accounting, generator state and
        // surplus spill into the FIFOs, as the single-step path would have
        // left them.
        for (slot, idx) in [in_idx, wt_idx].into_iter().enumerate() {
            if windows.is_some() {
                // Wrap window: everything came straight off the generator.
                fifos[idx].note_passthrough(total);
                gens[idx].advance_wrapping(total);
                continue;
            }
            let direct = total - take[slot];
            fifos[idx].note_passthrough(direct);
            for _ in 0..produced[slot] - direct {
                let addr = gens[idx].tick().expect("surplus production counted");
                fifos[idx]
                    .push(addr)
                    .expect("surplus fits: the single-step path never overflows");
            }
        }
        self.execute.settle_mac_programs(total);
        self.input.charge_reads(total);
        self.weights.charge_reads(total);
        self.cycles += total;
        self.busy_cycles += total;
    }

    /// Number of cycles (capped at `budget`) for which a `mac` with `repeats`
    /// repetitions left provably executes without a stall.
    fn provable_mac_cycles(&self, repeats: u64, budget: u64) -> u64 {
        let limit = repeats.min(budget);
        let mut n = limit
            .min(self.operand_supply(AddrGenKind::Input, limit))
            .min(self.operand_supply(AddrGenKind::Weight, limit));
        // The write-back on the last repetition additionally needs an output
        // address by cycle `n`; without one the single-step path would stall
        // there, so the burst stops one repetition short.
        if n == repeats && !self.output_address_available() {
            n -= 1;
        }
        n
    }

    /// Addresses provably deliverable for `kind` over the next `limit`
    /// stall-free cycles: what is queued plus what its generator still emits.
    fn operand_supply(&self, kind: AddrGenKind, limit: u64) -> u64 {
        let fifo = self.access.fifo(kind);
        let gen = self.access.generator(kind);
        fifo.len() as u64 + gen.remaining_addresses_up_to(limit)
    }

    /// Whether an output address is already queued or will be pushed on the
    /// first burst cycle.
    fn output_address_available(&self) -> bool {
        let fifo = self.access.fifo(AddrGenKind::Output);
        !fifo.is_empty()
            || (self.access.generator(AddrGenKind::Output).is_running() && !fifo.is_full())
    }

    /// Retires `n` provably stall-free repetitions of the in-flight `mac`,
    /// replicating the single-step path's bookkeeping exactly:
    ///
    /// * operand addresses drain oldest-first — queued FIFO entries, then
    ///   generator output handed straight to the ALU (counted as FIFO
    ///   pass-through);
    /// * generators that outrun consumption spill their surplus into the
    ///   FIFOs;
    /// * a full operand FIFO whose generator is still running stalls it for
    ///   exactly the first cycle, and the un-popped output FIFO accumulates
    ///   stalls once it fills — both are charged without simulating them.
    fn burst_mac(&mut self, n: u64) {
        let repeats = self.execute.remaining_repeats() as u64;
        debug_assert!(n >= 1 && n <= repeats);
        let completes = n == repeats;
        let mut acc = self.execute.accumulator();

        let in_idx = AddrGenKind::Input.index();
        let wt_idx = AddrGenKind::Weight.index();
        let out_idx = AddrGenKind::Output.index();
        let (gens, fifos, stall_cycles) = self.access.burst_parts();

        // First-cycle stall of a full operand FIFO (the pop each cycle keeps
        // one slot free afterwards); generators produce one address per
        // non-stalled cycle until they run out.
        let mut produced = [0u64; 2];
        for (slot, idx) in [in_idx, wt_idx].into_iter().enumerate() {
            let stall = u64::from(gens[idx].is_running() && fifos[idx].is_full());
            *stall_cycles += stall;
            produced[slot] = gens[idx].remaining_addresses_up_to(n - stall);
        }

        let in_take = (fifos[in_idx].len() as u64).min(n);
        let wt_take = (fifos[wt_idx].len() as u64).min(n);
        for k in 0..n {
            let ia = if k < in_take {
                fifos[in_idx].pop().expect("input fifo length checked")
            } else {
                gens[in_idx].tick().expect("input supply proved")
            };
            let wa = if k < wt_take {
                fifos[wt_idx].pop().expect("weight fifo length checked")
            } else {
                gens[wt_idx].tick().expect("weight supply proved")
            };
            let a = self.input.read(ia);
            let b = self.weights.read(wa);
            // Same operation and order as `ExecuteEngine::execute`, so the
            // f32 accumulation is bit-identical.
            acc += a * b;
        }
        fifos[in_idx].note_passthrough(n - in_take);
        fifos[wt_idx].note_passthrough(n - wt_take);
        for (slot, idx) in [in_idx, wt_idx].into_iter().enumerate() {
            let direct = n - [in_take, wt_take][slot];
            for _ in 0..produced[slot] - direct {
                let addr = gens[idx].tick().expect("surplus production counted");
                fifos[idx]
                    .push(addr)
                    .expect("surplus fits: the single-step path never overflows");
            }
        }

        // Output side: nothing pops before the final repetition, so the
        // generator pushes until the FIFO fills and stalls from then on.
        let out_room = (fifos[out_idx].capacity() - fifos[out_idx].len()) as u64;
        let out_remaining = gens[out_idx].remaining_addresses_up_to(n + out_room + 1);
        for _ in 0..out_remaining.min(out_room).min(n) {
            let addr = gens[out_idx].tick().expect("output production counted");
            fifos[out_idx].push(addr).expect("output room checked");
        }
        if out_remaining > out_room {
            *stall_cycles += n.saturating_sub(out_room);
        }

        self.cycles += n;
        self.busy_cycles += n;
        let result = self.execute.finish_mac_burst(acc, n as u32);
        if completes {
            let value = result.expect("final repetition produces the accumulated value");
            let out_addr = fifos[out_idx].pop().expect("output availability proved");
            self.output.write(out_addr, value);
        } else {
            debug_assert!(result.is_none());
        }
    }

    /// Total cycles stepped.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles in which the execute µ-engine performed an operation.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Activity counters in the Table II categories.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            alu_ops: self.execute.alu_ops(),
            gated_ops: 0,
            register_file_reads: self.input.reads() + self.weights.reads() + self.output.reads(),
            register_file_writes: self.input.writes()
                + self.weights.writes()
                + self.output.writes(),
            inter_pe_transfers: 0,
            global_buffer_reads: 0,
            global_buffer_writes: 0,
            dram_reads: 0,
            dram_writes: 0,
            local_uop_fetches: self.uop_fetches,
            global_uop_fetches: 0,
        }
    }
}

/// Output-generator stall cycles over a uniform dispatch of `programs`
/// write-backs of `repeats` repetitions each against an initially empty
/// output FIFO of `cap` entries, in closed form.
///
/// Per program, the per-cycle semantics are: the generator pushes until the
/// FIFO fills or every program's address is produced, each un-pushed cycle of
/// a still-producing generator stalls, and the program's write-back pops one
/// entry. Once the FIFO's free space collapses to a single entry it stays
/// there (one push, one pop per program), so every remaining producing
/// program except the last stalls for `repeats - 1` cycles — the tail
/// collapses to one multiplication instead of a per-program `+=` of that
/// constant delta.
fn uniform_output_stalls(programs: u64, repeats: u64, cap: u64) -> u64 {
    if repeats <= 1 {
        return 0;
    }
    let mut stalls = 0u64;
    let mut len = 0u64;
    let mut produced = 0u64;
    loop {
        let remaining = programs - produced;
        if remaining == 0 {
            break;
        }
        if cap - len == 1 {
            stalls += (remaining - 1) * (repeats - 1);
            break;
        }
        let pushes = repeats.min(cap - len).min(remaining);
        if remaining > pushes {
            stalls += repeats - pushes;
        }
        len += pushes;
        produced += pushes;
        len -= 1;
    }
    stalls
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Streams `n` input/weight pairs through a repeated `mac` and returns the
    /// accumulated dot product written to output word 0.
    fn dot_product(inputs: &[f32], weights: &[f32]) -> f32 {
        let n = inputs.len() as u16;
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(inputs);
        pe.load_weights(weights);
        pe.configure_linear(AddrGenKind::Input, 0, 1, n, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, n, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(n);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        let cycles = pe.run_until_idle(10_000);
        assert!(cycles < 10_000, "PE did not converge");
        pe.read_output(0)
    }

    #[test]
    fn computes_a_dot_product() {
        let inputs = [1.0, 2.0, 3.0, 4.0];
        let weights = [0.5, -1.0, 2.0, 0.25];
        let expected: f32 = inputs.iter().zip(&weights).map(|(a, b)| a * b).sum();
        assert!((dot_product(&inputs, &weights) - expected).abs() < 1e-6);
    }

    #[test]
    fn strided_input_access_skips_zero_columns() {
        // Input holds a zero-inserted row [x0, 0, x1, 0, x2, 0, x3, 0]; a
        // stride-2 access pattern touches only the original elements, which is
        // how GANAX skips inconsequential columns.
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        pe.load_weights(&[1.0, 1.0, 1.0, 1.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 2, 8, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, 4, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(4);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        pe.run_until_idle(1_000);
        assert_eq!(pe.read_output(0), 10.0);
        // Exactly four multiplications were performed — no wasted work on the
        // inserted zeros.
        assert_eq!(pe.counts().alu_ops, 4);
    }

    #[test]
    fn empty_uop_fifo_halts_execution() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        pe.load_input(&[1.0, 2.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.start(AddrGenKind::Input);
        // Addresses flow but no µop ever arrives: nothing executes.
        for _ in 0..10 {
            assert!(!pe.step());
        }
        assert_eq!(pe.counts().alu_ops, 0);
    }

    #[test]
    fn empty_address_fifo_stalls_execution() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        pe.load_input(&[1.0, 2.0]);
        pe.load_weights(&[1.0, 1.0]);
        // Weight generator is never started: mac stalls forever.
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start(AddrGenKind::Input);
        pe.start(AddrGenKind::Output);
        pe.set_repeat(2);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        for _ in 0..20 {
            pe.step();
        }
        assert_eq!(pe.counts().alu_ops, 0);
        assert!(!pe.is_idle());
    }

    #[test]
    fn act_uop_applies_activation_elementwise() {
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[-1.0, 2.0, -3.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 3, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 3, 1);
        pe.start(AddrGenKind::Input);
        pe.start(AddrGenKind::Output);
        pe.set_activation(ActivationKind::Relu);
        for _ in 0..3 {
            pe.push_uop(ExecUop::Act);
        }
        pe.run_until_idle(1_000);
        assert_eq!(pe.output_contents()[..3], [0.0, 2.0, 0.0]);
    }

    #[test]
    fn counters_track_scratchpad_traffic() {
        let mut pe = ProcessingEngine::new(PeConfig::roomy());
        pe.load_input(&[1.0, 2.0]);
        pe.load_weights(&[3.0, 4.0]);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, 2, 1);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
        pe.start_all();
        pe.set_repeat(2);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        pe.run_until_idle(1_000);
        let counts = pe.counts();
        assert_eq!(counts.alu_ops, 2);
        // 2 input reads + 2 weight reads.
        assert_eq!(counts.register_file_reads, 4);
        // Bulk loads (2 + 2 words) plus the single result write-back.
        assert_eq!(counts.register_file_writes, 5);
        assert_eq!(counts.local_uop_fetches, 2);
        assert!(pe.busy_cycles() >= 2);
        assert!(pe.cycles() >= pe.busy_cycles());
    }

    #[test]
    fn idle_detection() {
        let mut pe = ProcessingEngine::new(PeConfig::paper());
        assert!(pe.is_idle());
        pe.push_uop(ExecUop::Mac);
        assert!(!pe.is_idle());
    }

    #[test]
    fn reset_restores_the_just_constructed_state() {
        let config = PeConfig {
            addr_fifo_entries: 4,
            uop_fifo_entries: 8,
            ..PeConfig::paper()
        };
        let mut pe = ProcessingEngine::new(config);
        pe.load_input(&[1.0, 2.0, 3.0]);
        pe.load_weights(&[4.0, 5.0, 6.0]);
        pe.set_activation(ActivationKind::Relu);
        pe.configure_linear(AddrGenKind::Input, 0, 1, 3, 2);
        pe.configure_linear(AddrGenKind::Weight, 0, 1, 3, 2);
        pe.configure_linear(AddrGenKind::Output, 0, 1, 2, 1);
        pe.start_all();
        pe.set_repeat(3);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
        pe.push_uop(ExecUop::Mac);
        // Step mid-program so a µop is in flight and addresses are queued.
        for _ in 0..4 {
            pe.step();
        }
        assert!(!pe.is_idle());
        pe.reset();
        assert_eq!(pe, ProcessingEngine::new(config), "reset must equal new");
        assert!(pe.is_idle());
        assert_eq!(pe.counts(), EventCounts::default());

        // A reset PE executes a fresh program exactly like a new one.
        let run = |pe: &mut ProcessingEngine| {
            pe.load_input(&[1.0, 2.0, 3.0, 4.0]);
            pe.load_weights(&[0.5, -1.0, 2.0, 0.25]);
            pe.configure_linear(AddrGenKind::Input, 0, 1, 4, 1);
            pe.configure_linear(AddrGenKind::Weight, 0, 1, 4, 1);
            pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
            pe.start_all();
            pe.set_repeat(4);
            pe.push_uop(ExecUop::Repeat);
            pe.push_uop(ExecUop::Mac);
            pe.run_until_idle_burst(1_000);
        };
        run(&mut pe);
        let mut fresh = ProcessingEngine::new(config);
        run(&mut fresh);
        assert_eq!(pe, fresh, "reset PE diverged from a newly constructed one");
    }

    #[test]
    fn try_push_uop_reports_overflow() {
        let mut pe = ProcessingEngine::new(PeConfig {
            uop_fifo_entries: 2,
            ..PeConfig::paper()
        });
        assert!(pe.try_push_uop(ExecUop::Repeat).is_ok());
        assert!(pe.try_push_uop(ExecUop::Mac).is_ok());
        assert_eq!(
            pe.try_push_uop(ExecUop::Mac),
            Err(FifoError { capacity: 2 })
        );
    }

    /// The per-program output bookkeeping of `retire_mac_programs`'
    /// fast-output branch, replicated verbatim as the oracle for the
    /// closed-form `uniform_output_stalls`.
    fn direct_output_stalls(programs: u64, repeats: u64, cap: u64) -> u64 {
        let mut stalls = 0u64;
        let mut len = 0u64;
        let mut produced = 0u64;
        for _ in 0..programs {
            let pushes = repeats.min(cap - len).min(programs - produced);
            if programs - produced > pushes {
                stalls += repeats - pushes;
            }
            len += pushes;
            produced += pushes;
            len -= 1;
        }
        stalls
    }

    #[test]
    fn uniform_output_stalls_matches_the_per_program_loop() {
        for programs in 0..=40u64 {
            for repeats in 1..=10u64 {
                for cap in 1..=10u64 {
                    assert_eq!(
                        super::uniform_output_stalls(programs, repeats, cap),
                        direct_output_stalls(programs, repeats, cap),
                        "stall closed form diverged at programs={programs} repeats={repeats} cap={cap}"
                    );
                }
            }
        }
    }

    /// One `repeat`+`mac` program: generator configurations plus the armed
    /// repeat count, applied identically to a reference and a burst PE.
    struct MacProgram {
        input: GeneratorConfig,
        weight: GeneratorConfig,
        output: GeneratorConfig,
        repeat: u16,
    }

    fn apply_program(pe: &mut ProcessingEngine, p: &MacProgram) {
        pe.configure_generator(AddrGenKind::Input, p.input);
        pe.configure_generator(AddrGenKind::Weight, p.weight);
        pe.configure_generator(AddrGenKind::Output, p.output);
        pe.start_all();
        pe.set_repeat(p.repeat);
        pe.push_uop(ExecUop::Repeat);
        pe.push_uop(ExecUop::Mac);
    }

    /// Runs the same programs on a single-stepped and a burst-stepped PE and
    /// asserts the complete PE state (scratchpads, FIFOs, generators, stall
    /// and energy counters, cycles) ends bit-identical.
    fn assert_burst_equivalence(config: PeConfig, programs: &[MacProgram], budget: u64) {
        let words = config.input_words.min(config.weight_words);
        let data: Vec<f32> = (0..words).map(|i| (i as f32) * 0.37 - 1.5).collect();
        let weights: Vec<f32> = (0..words).map(|i| 0.9 - (i as f32) * 0.11).collect();
        let mut reference = ProcessingEngine::new(config);
        reference.load_input(&data);
        reference.load_weights(&weights);
        let mut fast = reference.clone();
        for p in programs {
            apply_program(&mut reference, p);
            apply_program(&mut fast, p);
            let ref_cycles = reference.run_until_idle(budget);
            let fast_cycles = fast.run_until_idle_burst(budget);
            assert_eq!(ref_cycles, fast_cycles, "cycle counts diverged");
            assert_eq!(reference, fast, "PE state diverged");
        }
        assert_eq!(reference.cycles(), fast.cycles());
        assert_eq!(reference.busy_cycles(), fast.busy_cycles());
        assert_eq!(reference.counts(), fast.counts());
        assert_eq!(reference.output_contents(), fast.output_contents());
    }

    #[test]
    fn burst_matches_single_step_on_column_program() {
        // The machine's per-output-column shape: linear input walk, strided
        // weights, one output word.
        let program = MacProgram {
            input: GeneratorConfig {
                addr: 3,
                offset: 0,
                step: 1,
                end: 8,
                repeat: 1,
            },
            weight: GeneratorConfig {
                addr: 1,
                offset: 0,
                step: 2,
                end: 6,
                repeat: 1,
            },
            output: GeneratorConfig {
                addr: 4,
                offset: 0,
                step: 1,
                end: 5,
                repeat: 1,
            },
            repeat: 3,
        };
        assert_burst_equivalence(PeConfig::paper(), &[program], 1_000);
    }

    #[test]
    fn burst_matches_single_step_when_operands_starve() {
        // Input generator supplies only 2 of the 4 armed repetitions: both
        // paths must stall until the budget runs out, with identical state.
        let program = MacProgram {
            input: GeneratorConfig {
                addr: 0,
                offset: 0,
                step: 1,
                end: 2,
                repeat: 1,
            },
            weight: GeneratorConfig {
                addr: 0,
                offset: 0,
                step: 1,
                end: 8,
                repeat: 1,
            },
            output: GeneratorConfig {
                addr: 0,
                offset: 0,
                step: 1,
                end: 1,
                repeat: 1,
            },
            repeat: 4,
        };
        assert_burst_equivalence(PeConfig::paper(), &[program], 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Burst stepping is indistinguishable from single stepping across
        /// random generator geometries, FIFO depths and repeat counts —
        /// including programs that over- or under-supply operands, leave
        /// addresses queued between programs, or stall on a missing output
        /// address.
        #[test]
        fn prop_burst_equals_single_step(
            fifo_entries in 2usize..9,
            in_step in 1u16..4,
            in_end in 1u16..12,
            in_repeat in 1u16..4,
            wt_step in 1u16..3,
            wt_end in 1u16..10,
            wt_repeat in 1u16..4,
            out_end in 1u16..4,
            repeat_a in 1u16..24,
            repeat_b in 1u16..24,
        ) {
            let config = PeConfig {
                input_words: 64,
                weight_words: 64,
                output_words: 8,
                addr_fifo_entries: fifo_entries,
                uop_fifo_entries: 16,
            };
            let programs = [
                MacProgram {
                    input: GeneratorConfig { addr: 0, offset: 0, step: in_step, end: in_end, repeat: in_repeat },
                    weight: GeneratorConfig { addr: 0, offset: 0, step: wt_step, end: wt_end, repeat: wt_repeat },
                    output: GeneratorConfig { addr: 0, offset: 0, step: 1, end: out_end, repeat: 1 },
                    repeat: repeat_a,
                },
                // A second program over the leftovers of the first: covers
                // non-empty FIFOs, re-started generators and stale repeat
                // state.
                MacProgram {
                    input: GeneratorConfig { addr: 0, offset: 0, step: wt_step, end: in_end, repeat: wt_repeat },
                    weight: GeneratorConfig { addr: 0, offset: 0, step: in_step, end: wt_end, repeat: in_repeat },
                    output: GeneratorConfig { addr: 0, offset: 0, step: 1, end: out_end, repeat: 1 },
                    repeat: repeat_b,
                },
            ];
            assert_burst_equivalence(config, &programs, 256);
        }

        /// Chunk-style dispatch — several `repeat`+`mac` pairs queued at once
        /// over shared linear generators, the way the machine's fast path
        /// issues whole runs of output columns — retires identically to
        /// single stepping, including with adversarially small address FIFOs.
        #[test]
        fn prop_queued_programs_equal_single_step(
            cols in 1u16..9,
            taps in 1u16..6,
            fifo_entries in 2usize..9,
            out_start in 0u16..4,
            undersupply in 0u16..3,
            in_rounds in 1u16..4,
        ) {
            let total = cols * taps;
            // `undersupply` starves the tail of the operand stream to cover
            // partial retirement and mid-queue stalls; `in_rounds` replays a
            // shortened input stream (the machine's repeated-stream dispatch),
            // exercising the wrap-window fast path across round boundaries.
            let operand_end = total.saturating_sub(undersupply).max(1);
            let in_end = operand_end.div_ceil(in_rounds).max(1);
            let config = PeConfig {
                input_words: 64,
                weight_words: 64,
                output_words: 16,
                addr_fifo_entries: fifo_entries,
                uop_fifo_entries: 32,
            };
            let data: Vec<f32> = (0..64).map(|i| (i as f32) * 0.41 - 3.0).collect();
            let weights: Vec<f32> = (0..64).map(|i| 1.7 - (i as f32) * 0.23).collect();
            let mut reference = ProcessingEngine::new(config);
            reference.load_input(&data);
            reference.load_weights(&weights);
            let mut fast = reference.clone();
            for pe in [&mut reference, &mut fast] {
                pe.configure_linear(AddrGenKind::Input, 0, 1, in_end, in_rounds);
                pe.configure_linear(AddrGenKind::Weight, 0, 1, operand_end, 1);
                pe.configure_linear(AddrGenKind::Output, out_start, 1, out_start + cols, 1);
                pe.start_all();
                pe.set_repeat(taps);
                for _ in 0..cols {
                    pe.push_uop(ExecUop::Repeat);
                    pe.push_uop(ExecUop::Mac);
                }
            }
            let budget = 512;
            let ref_cycles = reference.run_until_idle(budget);
            let fast_cycles = fast.run_until_idle_burst(budget);
            prop_assert_eq!(ref_cycles, fast_cycles, "cycle counts diverged");
            prop_assert_eq!(&reference, &fast, "PE state diverged");
        }

        /// Offset-shifted operand windows — the inference engine keeps several
        /// gathered streams resident in one scratchpad and selects one via the
        /// generator's `offset` register — retire identically to single
        /// stepping, for both in-flight bursts and whole queued programs.
        #[test]
        fn prop_offset_windows_equal_single_step(
            cols in 1u16..7,
            taps in 1u16..6,
            in_offset in 0u16..24,
            wt_offset in 0u16..16,
            fifo_entries in 2usize..9,
            rounds in 1u16..4,
        ) {
            let total = cols * taps;
            let in_end = total.div_ceil(rounds).max(1);
            let config = PeConfig {
                input_words: 64,
                weight_words: 64,
                output_words: 16,
                addr_fifo_entries: fifo_entries,
                uop_fifo_entries: 32,
            };
            let data: Vec<f32> = (0..64).map(|i| (i as f32) * 0.53 - 2.0).collect();
            let weights: Vec<f32> = (0..64).map(|i| 1.3 - (i as f32) * 0.19).collect();
            let mut reference = ProcessingEngine::new(config);
            reference.load_input(&data);
            reference.load_weights(&weights);
            let mut fast = reference.clone();
            for pe in [&mut reference, &mut fast] {
                pe.configure_generator(AddrGenKind::Input, GeneratorConfig {
                    addr: 0, offset: in_offset, step: 1, end: in_end, repeat: rounds,
                });
                pe.configure_generator(AddrGenKind::Weight, GeneratorConfig {
                    addr: 0, offset: wt_offset, step: 1, end: total, repeat: 1,
                });
                pe.configure_linear(AddrGenKind::Output, 0, 1, cols, 1);
                pe.start_all();
                pe.set_repeat(taps);
                for _ in 0..cols {
                    pe.push_uop(ExecUop::Repeat);
                    pe.push_uop(ExecUop::Mac);
                }
            }
            let budget = 512;
            let ref_cycles = reference.run_until_idle(budget);
            let fast_cycles = fast.run_until_idle_burst(budget);
            prop_assert_eq!(ref_cycles, fast_cycles, "cycle counts diverged");
            prop_assert_eq!(&reference, &fast, "PE state diverged");
        }

        /// Virtually-pushed uniform dispatches (`try_push_mac_pairs`) retire
        /// bit-identically to a single-stepped PE fed the same µops one by
        /// one — across operand offsets, replayed input rounds, operand
        /// undersupply (forcing partial retirement through the per-program
        /// fallback) and output FIFOs much smaller than the dispatch (the
        /// stall steady-state collapse).
        #[test]
        fn prop_virtual_pair_dispatch_equals_single_step(
            cols in 1u16..12,
            taps in 1u16..6,
            fifo_entries in 2usize..9,
            in_offset in 0u16..24,
            wt_offset in 0u16..16,
            out_start in 0u16..4,
            undersupply in 0u16..3,
            rounds in 1u16..4,
        ) {
            let total = cols * taps;
            let operand_end = total.saturating_sub(undersupply).max(1);
            let in_end = operand_end.div_ceil(rounds).max(1);
            let config = PeConfig {
                input_words: 96,
                weight_words: 96,
                output_words: 16,
                addr_fifo_entries: fifo_entries,
                uop_fifo_entries: 32,
            };
            let data: Vec<f32> = (0..96).map(|i| (i as f32) * 0.29 - 4.0).collect();
            let weights: Vec<f32> = (0..96).map(|i| 2.1 - (i as f32) * 0.17).collect();
            let mut reference = ProcessingEngine::new(config);
            reference.load_input(&data);
            reference.load_weights(&weights);
            let mut fast = reference.clone();
            for pe in [&mut reference, &mut fast] {
                pe.configure_generator(AddrGenKind::Input, GeneratorConfig {
                    addr: 0, offset: in_offset, step: 1, end: in_end, repeat: rounds,
                });
                pe.configure_generator(AddrGenKind::Weight, GeneratorConfig {
                    addr: 0, offset: wt_offset, step: 1, end: operand_end, repeat: 1,
                });
                pe.configure_linear(AddrGenKind::Output, out_start, 1, out_start + cols, 1);
                pe.start_all();
                pe.set_repeat(taps);
            }
            for _ in 0..cols {
                reference.push_uop(ExecUop::Repeat);
                reference.push_uop(ExecUop::Mac);
            }
            fast.try_push_mac_pairs(cols as usize).unwrap();
            let budget = 1_024;
            let ref_cycles = reference.run_until_idle(budget);
            let fast_cycles = fast.run_until_idle_burst(budget);
            prop_assert_eq!(ref_cycles, fast_cycles, "cycle counts diverged");
            prop_assert_eq!(&reference, &fast, "PE state diverged");
        }

        /// Queues mixing materialized µops with virtual pairs — a lone `mac`
        /// ahead of a pair batch (non-uniform repeats), or a pair batch
        /// extended by hand-pushed µops (forcing materialization) — behave
        /// exactly like a fully materialized queue under single stepping.
        #[test]
        fn prop_mixed_queue_with_virtual_pairs_equals_single_step(
            cols in 1u16..8,
            taps in 1u16..5,
            fifo_entries in 2usize..9,
            lead_mac in 0u16..2,
            trail_pair in 0u16..2,
        ) {
            let total = lead_mac + cols * taps + trail_pair * taps;
            let programs = lead_mac + cols + trail_pair;
            let config = PeConfig {
                input_words: 64,
                weight_words: 64,
                output_words: 16,
                addr_fifo_entries: fifo_entries,
                uop_fifo_entries: 32,
            };
            let data: Vec<f32> = (0..64).map(|i| (i as f32) * 0.47 - 2.5).collect();
            let weights: Vec<f32> = (0..64).map(|i| 1.9 - (i as f32) * 0.13).collect();
            let mut reference = ProcessingEngine::new(config);
            reference.load_input(&data);
            reference.load_weights(&weights);
            let mut fast = reference.clone();
            for pe in [&mut reference, &mut fast] {
                pe.configure_linear(AddrGenKind::Input, 0, 1, total, 1);
                pe.configure_linear(AddrGenKind::Weight, 0, 1, total, 1);
                pe.configure_linear(AddrGenKind::Output, 0, 1, programs, 1);
                pe.start_all();
                pe.set_repeat(taps);
            }
            // Reference: the same logical sequence, µop by µop.
            for _ in 0..lead_mac {
                reference.push_uop(ExecUop::Mac);
                fast.push_uop(ExecUop::Mac);
            }
            for _ in 0..cols {
                reference.push_uop(ExecUop::Repeat);
                reference.push_uop(ExecUop::Mac);
            }
            fast.try_push_mac_pairs(cols as usize).unwrap();
            for _ in 0..trail_pair {
                for uop in [ExecUop::Repeat, ExecUop::Mac] {
                    reference.push_uop(uop);
                    fast.push_uop(uop);
                }
            }
            let budget = 512;
            let ref_cycles = reference.run_until_idle(budget);
            let fast_cycles = fast.run_until_idle_burst(budget);
            prop_assert_eq!(ref_cycles, fast_cycles, "cycle counts diverged");
            prop_assert_eq!(&reference, &fast, "PE state diverged");
        }
    }
}
