//! Cycle-level microarchitecture building blocks of the GANAX accelerator
//! (Section III.B of the paper).
//!
//! Each GANAX processing engine (PE) is split into a decoupled **access
//! µ-engine** and **execute µ-engine**:
//!
//! * the access µ-engine owns three [`StridedIndexGenerator`]s (input, weight,
//!   output) that each produce one operand address per cycle according to a
//!   preloaded `Addr`/`Offset`/`Step`/`End`/`Repeat` configuration, pushing the
//!   addresses into bounded [`AddrFifo`]s;
//! * the execute µ-engine pops addresses from those FIFOs, reads operands from
//!   the PE's scratchpad buffers, performs the operation named by the current
//!   execute µop (`mac`, `add`, `act`, …) and writes results back.
//!
//! The FIFOs provide the synchronization the paper describes: a full FIFO
//! stalls its index generator, an empty FIFO stalls the execute engine.
//! Every data movement increments the PE's [`EventCounts`](ganax_energy::EventCounts)
//! so the Table II energy model can be applied to a simulation run.
//!
//! # Example: one PE computing a dot product
//!
//! ```
//! use ganax_isa::{AccessReg, AddrGenKind, ExecUop};
//! use ganax_sim::{PeConfig, ProcessingEngine};
//!
//! let mut pe = ProcessingEngine::new(PeConfig::paper());
//! pe.load_input(&[1.0, 2.0, 3.0, 4.0]);
//! pe.load_weights(&[0.5, 0.5, 0.5, 0.5]);
//!
//! // Stream the four input/weight pairs into a single accumulated output.
//! pe.configure_linear(AddrGenKind::Input, 0, 1, 4, 1);
//! pe.configure_linear(AddrGenKind::Weight, 0, 1, 4, 1);
//! pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
//! pe.start_all();
//! pe.set_repeat(4);
//! pe.push_uop(ExecUop::Repeat);
//! pe.push_uop(ExecUop::Mac);
//!
//! let cycles = pe.run_until_idle(100);
//! assert!(cycles < 100);
//! assert_eq!(pe.read_output(0), 0.5 * (1.0 + 2.0 + 3.0 + 4.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod execute;
mod fault;
mod fifo;
mod index_gen;
mod pe;
mod pv;
mod scratchpad;

pub use access::AccessEngine;
pub use execute::{ActivationKind, ExecuteEngine};
pub use fault::{
    EmitFault, FaultInjector, FaultKind, FaultPlan, FaultSpec, WorkerFault, STALL_MILLIS,
};
pub use fifo::{AddrFifo, FifoError, UopFifo};
pub use index_gen::{GeneratorConfig, StridedIndexGenerator};
pub use pe::{PeConfig, ProcessingEngine};
pub use pv::ProcessingVector;
pub use scratchpad::Scratchpad;
