//! The execute µ-engine: a small ALU driven by address-free execute µops.

use ganax_isa::ExecUop;

/// The non-linear function applied by the `act` µop (selected by `mimd.ld`
/// into the activation-select register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivationKind {
    /// Identity (no non-linearity).
    #[default]
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit with a fixed 0.2 slope.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActivationKind {
    /// Applies the non-linearity.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Identity => x,
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// The state of the execute µ-engine: the accumulator register, the repeat
/// machinery and the currently running µop.
///
/// The engine itself holds no operand addresses — that is the whole point of
/// the decoupled access-execute design — so its API works on operand *values*
/// handed to it by the processing engine, which pops the addresses from the
/// access µ-engine's FIFOs and reads the scratchpads.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteEngine {
    accumulator: f32,
    repeat_register: u16,
    pending_repeat: Option<u32>,
    current: Option<(ExecUop, u32)>,
    activation: ActivationKind,
    alu_ops: u64,
}

impl ExecuteEngine {
    /// Creates an idle execute µ-engine.
    pub fn new() -> Self {
        ExecuteEngine {
            accumulator: 0.0,
            repeat_register: 1,
            pending_repeat: None,
            current: None,
            activation: ActivationKind::Identity,
            alu_ops: 0,
        }
    }

    /// Loads the repeat register (the `mimd.ld` target).
    pub fn set_repeat(&mut self, count: u16) {
        self.repeat_register = count.max(1);
    }

    /// Selects the non-linear function used by `act`.
    pub fn set_activation(&mut self, activation: ActivationKind) {
        self.activation = activation;
    }

    /// The configured activation.
    pub fn activation(&self) -> ActivationKind {
        self.activation
    }

    /// Whether a µop is currently in flight.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// The µop currently in flight, if any.
    pub fn current_uop(&self) -> Option<ExecUop> {
        self.current.map(|(uop, _)| uop)
    }

    /// Remaining repetitions of the µop in flight.
    pub fn remaining_repeats(&self) -> u32 {
        self.current.map(|(_, n)| n).unwrap_or(0)
    }

    /// The armed-but-unconsumed repeat count, if a `repeat` µop has been
    /// issued since the last repeatable µop (used by burst-stepping look-ahead
    /// to predict the next µop's repetition count).
    pub(crate) fn pending_repeat(&self) -> Option<u32> {
        self.pending_repeat
    }

    /// The value the next `repeat` µop will arm.
    pub(crate) fn repeat_register(&self) -> u16 {
        self.repeat_register
    }

    /// Total ALU operations performed.
    pub fn alu_ops(&self) -> u64 {
        self.alu_ops
    }

    /// Resets the engine to its just-constructed state: accumulator, repeat
    /// machinery, in-flight µop, activation select and ALU counter.
    pub fn reset(&mut self) {
        *self = ExecuteEngine::new();
    }

    /// The accumulator's current value.
    pub fn accumulator(&self) -> f32 {
        self.accumulator
    }

    /// Accepts the next µop from the µop FIFO. `repeat` µops arm the repeat
    /// machinery and complete immediately; other µops become the in-flight µop
    /// repeated either once or `repeat_register` times if armed.
    ///
    /// Returns `true` when the µop occupies the engine (i.e. it was not a
    /// `repeat` or `nop`).
    pub fn issue(&mut self, uop: ExecUop) -> bool {
        match uop {
            ExecUop::Repeat => {
                self.pending_repeat = Some(self.repeat_register as u32);
                false
            }
            ExecUop::Nop => false,
            _ => {
                let count = self.pending_repeat.take().unwrap_or(1);
                self.current = Some((uop, count.max(1)));
                true
            }
        }
    }

    /// Performs one invocation of the in-flight µop on the supplied operands.
    ///
    /// Returns `Some(value)` when the invocation produced a value that must be
    /// written to the output buffer this cycle, `None` when the value stays in
    /// the accumulator (`mac`/`pool` before their last repetition).
    ///
    /// # Panics
    /// Panics if no µop is in flight (callers check [`ExecuteEngine::is_busy`]).
    pub fn execute(&mut self, a: f32, b: f32) -> Option<f32> {
        let (uop, remaining) = self.current.expect("execute called with no uop in flight");
        self.alu_ops += 1;
        let last = remaining == 1;
        let result = match uop {
            ExecUop::Add => Some(a + b),
            ExecUop::Mul => Some(a * b),
            ExecUop::Mac => {
                self.accumulator += a * b;
                if last {
                    let value = self.accumulator;
                    self.accumulator = 0.0;
                    Some(value)
                } else {
                    None
                }
            }
            ExecUop::Pool => {
                self.accumulator = self.accumulator.max(a);
                if last {
                    let value = self.accumulator;
                    self.accumulator = 0.0;
                    Some(value)
                } else {
                    None
                }
            }
            ExecUop::Act => Some(self.activation.apply(a)),
            ExecUop::Repeat | ExecUop::Nop => None,
        };
        if last {
            self.current = None;
        } else {
            self.current = Some((uop, remaining - 1));
        }
        result
    }

    /// Settles the engine after a burst retired a whole queue of
    /// `repeat`+`mac` programs without issuing them one by one: charges the
    /// ALU operations and clears any pending repeat (every retired program
    /// ends with a completed `mac`, which consumes the armed repeat and
    /// resets the accumulator — the engine is left exactly as single-stepping
    /// would leave it).
    pub(crate) fn settle_mac_programs(&mut self, alu_ops: u64) {
        debug_assert!(self.current.is_none());
        self.alu_ops += alu_ops;
        self.pending_repeat = None;
        self.accumulator = 0.0;
    }

    /// Retires `n` repetitions of the in-flight `mac` at once. `accumulator`
    /// is the value after the caller applied the `n` fused multiply-adds in
    /// single-step order (so the result is bit-identical to stepping).
    ///
    /// Returns `Some(value)` when the burst consumed the last repetition (the
    /// value must be written to the output buffer), `None` otherwise.
    ///
    /// # Panics
    /// Panics if the in-flight µop is not a `mac` with at least `n`
    /// repetitions remaining.
    pub(crate) fn finish_mac_burst(&mut self, accumulator: f32, n: u32) -> Option<f32> {
        let (uop, remaining) = self.current.expect("mac burst with no uop in flight");
        assert!(
            matches!(uop, ExecUop::Mac) && remaining >= n && n > 0,
            "mac burst preconditions violated"
        );
        self.alu_ops += n as u64;
        if remaining == n {
            self.current = None;
            self.accumulator = 0.0;
            Some(accumulator)
        } else {
            self.current = Some((uop, remaining - n));
            self.accumulator = accumulator;
            None
        }
    }
}

impl Default for ExecuteEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_functions() {
        assert_eq!(ActivationKind::Relu.apply(-1.0), 0.0);
        assert_eq!(ActivationKind::Relu.apply(2.0), 2.0);
        assert!((ActivationKind::LeakyRelu.apply(-1.0) + 0.2).abs() < 1e-6);
        assert!((ActivationKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((ActivationKind::Tanh.apply(0.0)).abs() < 1e-6);
        assert_eq!(ActivationKind::Identity.apply(3.5), 3.5);
    }

    #[test]
    fn mac_accumulates_until_last_repeat() {
        let mut engine = ExecuteEngine::new();
        engine.set_repeat(3);
        assert!(!engine.issue(ExecUop::Repeat));
        assert!(engine.issue(ExecUop::Mac));
        assert_eq!(engine.execute(1.0, 2.0), None);
        assert_eq!(engine.execute(3.0, 4.0), None);
        // Third (last) repetition flushes the accumulated dot product.
        assert_eq!(engine.execute(5.0, 6.0), Some(2.0 + 12.0 + 30.0));
        assert!(!engine.is_busy());
        assert_eq!(engine.alu_ops(), 3);
        assert_eq!(engine.accumulator(), 0.0);
    }

    #[test]
    fn unrepeated_mac_writes_back_immediately() {
        let mut engine = ExecuteEngine::new();
        assert!(engine.issue(ExecUop::Mac));
        assert_eq!(engine.execute(2.0, 3.0), Some(6.0));
        assert!(!engine.is_busy());
    }

    #[test]
    fn add_and_mul_write_every_invocation() {
        let mut engine = ExecuteEngine::new();
        engine.issue(ExecUop::Add);
        assert_eq!(engine.execute(1.0, 2.0), Some(3.0));
        engine.issue(ExecUop::Mul);
        assert_eq!(engine.execute(3.0, 4.0), Some(12.0));
    }

    #[test]
    fn pool_takes_running_maximum() {
        let mut engine = ExecuteEngine::new();
        engine.set_repeat(3);
        engine.issue(ExecUop::Repeat);
        engine.issue(ExecUop::Pool);
        assert_eq!(engine.execute(1.0, 0.0), None);
        assert_eq!(engine.execute(5.0, 0.0), None);
        assert_eq!(engine.execute(3.0, 0.0), Some(5.0));
    }

    #[test]
    fn act_applies_selected_nonlinearity() {
        let mut engine = ExecuteEngine::new();
        engine.set_activation(ActivationKind::Relu);
        engine.issue(ExecUop::Act);
        assert_eq!(engine.execute(-4.0, 0.0), Some(0.0));
    }

    #[test]
    fn repeat_register_defaults_to_one_and_clamps_zero() {
        let mut engine = ExecuteEngine::new();
        engine.set_repeat(0);
        engine.issue(ExecUop::Repeat);
        engine.issue(ExecUop::Mac);
        // Clamped to a single repetition.
        assert_eq!(engine.execute(2.0, 2.0), Some(4.0));
    }

    #[test]
    fn nop_does_not_occupy_the_engine() {
        let mut engine = ExecuteEngine::new();
        assert!(!engine.issue(ExecUop::Nop));
        assert!(!engine.is_busy());
    }
}
