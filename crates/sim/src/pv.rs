//! A processing vector: a row of PEs sharing one local µop buffer.

use ganax_energy::EventCounts;
use ganax_isa::{BufferError, ExecUop, LocalUopBuffer};

use crate::pe::{PeConfig, ProcessingEngine};

/// A processing vector (PV): `N` processing engines that always execute the
/// same µop (SIMD within the PV), fed either by a broadcast from the global
/// µop buffer or by the PV's own local µop buffer in MIMD-SIMD mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingVector {
    pes: Vec<ProcessingEngine>,
    local_uops: LocalUopBuffer,
}

impl ProcessingVector {
    /// Creates a PV of `num_pes` identical PEs.
    pub fn new(num_pes: usize, config: PeConfig) -> Self {
        ProcessingVector {
            pes: (0..num_pes)
                .map(|_| ProcessingEngine::new(config))
                .collect(),
            local_uops: LocalUopBuffer::new(),
        }
    }

    /// Number of PEs in the vector.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// Whether the vector has no PEs.
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// Immutable access to one PE.
    pub fn pe(&self, index: usize) -> &ProcessingEngine {
        &self.pes[index]
    }

    /// Mutable access to one PE (for loading data and configuring generators).
    pub fn pe_mut(&mut self, index: usize) -> &mut ProcessingEngine {
        &mut self.pes[index]
    }

    /// Iterates over the PEs.
    pub fn pes(&self) -> impl Iterator<Item = &ProcessingEngine> {
        self.pes.iter()
    }

    /// Preloads the PV's local µop buffer.
    ///
    /// # Errors
    /// Propagates capacity errors from the buffer.
    pub fn load_local_uops(&mut self, uops: &[ExecUop]) -> Result<(), BufferError> {
        self.local_uops.load(uops)
    }

    /// Broadcasts a µop directly to every PE (SIMD mode: the local buffer is
    /// bypassed).
    pub fn broadcast(&mut self, uop: ExecUop) {
        for pe in &mut self.pes {
            pe.push_uop(uop);
        }
    }

    /// Fetches the µop at `index` from the local buffer and broadcasts it to
    /// every PE (MIMD-SIMD mode).
    ///
    /// # Errors
    /// Propagates out-of-range errors from the local buffer.
    pub fn dispatch_local(&mut self, index: usize) -> Result<ExecUop, BufferError> {
        let uop = self.local_uops.fetch(index)?;
        self.broadcast(uop);
        Ok(uop)
    }

    /// Whether every PE can accept another µop.
    pub fn can_accept_uop(&self) -> bool {
        self.pes.iter().all(ProcessingEngine::can_accept_uop)
    }

    /// Steps every PE by one cycle; returns how many performed an operation.
    pub fn step(&mut self) -> usize {
        self.pes.iter_mut().map(|pe| usize::from(pe.step())).sum()
    }

    /// Whether every PE is idle.
    pub fn is_idle(&self) -> bool {
        self.pes.iter().all(ProcessingEngine::is_idle)
    }

    /// Steps until every PE is idle or `max_cycles` have elapsed; returns the
    /// number of cycles stepped.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let mut stepped = 0;
        while stepped < max_cycles && !self.is_idle() {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Aggregated activity counters across the PEs, including local µop buffer
    /// fetches.
    pub fn counts(&self) -> EventCounts {
        let mut total: EventCounts = self.pes.iter().map(ProcessingEngine::counts).sum();
        total.local_uop_fetches += self.local_uops.reads();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganax_isa::AddrGenKind;

    fn loaded_pv() -> ProcessingVector {
        let mut pv = ProcessingVector::new(4, PeConfig::roomy());
        for i in 0..4 {
            let pe = pv.pe_mut(i);
            pe.load_input(&[i as f32 + 1.0, 2.0]);
            pe.load_weights(&[10.0, 1.0]);
            pe.configure_linear(AddrGenKind::Input, 0, 1, 2, 1);
            pe.configure_linear(AddrGenKind::Weight, 0, 1, 2, 1);
            pe.configure_linear(AddrGenKind::Output, 0, 1, 1, 1);
            pe.start_all();
            pe.set_repeat(2);
        }
        pv
    }

    #[test]
    fn broadcast_runs_the_same_uop_on_distinct_data() {
        let mut pv = loaded_pv();
        pv.broadcast(ExecUop::Repeat);
        pv.broadcast(ExecUop::Mac);
        let cycles = pv.run_until_idle(1_000);
        assert!(cycles < 1_000);
        for i in 0..4 {
            let expected = (i as f32 + 1.0) * 10.0 + 2.0;
            assert_eq!(pv.pe_mut(i).read_output(0), expected);
        }
    }

    #[test]
    fn dispatch_local_fetches_from_the_local_buffer() {
        let mut pv = loaded_pv();
        pv.load_local_uops(&[ExecUop::Repeat, ExecUop::Mac])
            .unwrap();
        assert_eq!(pv.dispatch_local(0).unwrap(), ExecUop::Repeat);
        assert_eq!(pv.dispatch_local(1).unwrap(), ExecUop::Mac);
        pv.run_until_idle(1_000);
        assert_eq!(pv.pe_mut(0).read_output(0), 12.0);
        // Local buffer fetches are counted for energy accounting.
        assert_eq!(pv.counts().local_uop_fetches, 2 + 4 * 2);
    }

    #[test]
    fn dispatch_local_out_of_range_is_an_error() {
        let mut pv = loaded_pv();
        pv.load_local_uops(&[ExecUop::Mac]).unwrap();
        assert!(pv.dispatch_local(3).is_err());
    }

    #[test]
    fn counts_aggregate_across_pes() {
        let mut pv = loaded_pv();
        pv.broadcast(ExecUop::Repeat);
        pv.broadcast(ExecUop::Mac);
        pv.run_until_idle(1_000);
        let counts = pv.counts();
        assert_eq!(counts.alu_ops, 4 * 2);
        assert_eq!(counts.register_file_reads, 4 * 4);
    }

    #[test]
    fn vector_size_accessors() {
        let pv = ProcessingVector::new(3, PeConfig::paper());
        assert_eq!(pv.len(), 3);
        assert!(!pv.is_empty());
        assert!(pv.is_idle());
        assert!(pv.can_accept_uop());
        assert_eq!(pv.pes().count(), 3);
    }
}
