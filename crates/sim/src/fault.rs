//! Deterministic, seeded fault injection for the cycle-level machine.
//!
//! The analog/memristive GAN-accelerator literature treats device variation
//! and transient faults as first-class evaluation axes; this module lets the
//! reproduction answer "what does a flaky PE do to end-to-end output and
//! throughput?" without giving up its determinism guarantees.
//!
//! A [`FaultSpec`] is a seeded, serializable schedule: which fault kinds are
//! armed ([`FaultKind`] bit flags), at what per-site rate, and optionally
//! restricted to one layer, one output row (the PE coordinate) and a window
//! of dispatch ordinals. A [`FaultInjector`] turns the spec into yes/no
//! decisions at precise *fault sites* — coordinates such as
//! `(layer, output row, dispatch ordinal, element)` that are derived from the
//! layer plan rather than from scheduling, so **the same seed reproduces the
//! same corruption at any thread count and on every execution path** (the
//! per-layer fast path, the threaded scheduler and the persistent engine
//! pool all see identical faults).
//!
//! Decisions are pure hashes of `(seed, kind, site)` — no RNG state is
//! consumed, so query order is irrelevant. A small amount of shared state
//! remains: the *fired map*, which remembers the execution epoch in which a
//! site first fired.
//!
//! * **Corruption kinds** (bit flips, NaN poison, stuck lanes,
//!   dropped/duplicated µops) fire only during the epoch in which their site
//!   was first seen. Within one execution — including shards recomputed after
//!   a worker panic — the corruption is stable; a *retry* (a new epoch,
//!   [`FaultInjector::begin_epoch`]) recomputes clean, modeling a transient
//!   upset. Masked-and-retried outputs are therefore bit-identical to a
//!   fault-free run.
//! * **Worker kinds** (panic, stall) fire exactly once per site, ever, so a
//!   requeued shard completes instead of re-panicking forever.
//! * `persistent: true` bypasses the fired map entirely — every decision
//!   re-fires, modeling a hard fault that exhausts retry budgets and must
//!   surface as a typed error.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

/// Bit-flag namespace for the fault kinds a [`FaultSpec`] can arm
/// (`spec.kinds` is an OR of these).
pub struct FaultKind;

impl FaultKind {
    /// Flip one mantissa bit of a gathered input operand (silent corruption).
    pub const INPUT_FLIP: u32 = 1 << 0;
    /// Flip one mantissa bit of a staged weight operand. Weight sites are
    /// keyed without a row coordinate: a staged weight stream serves many
    /// output rows at once on the engine path, so the flip behaves like a
    /// stuck storage bit that corrupts every load of that stream identically.
    pub const WEIGHT_FLIP: u32 = 1 << 1;
    /// Replace a gathered input operand with NaN — corruption that the
    /// non-finite output guard can detect without goldens.
    pub const NAN_POISON: u32 = 1 << 2;
    /// A stuck-at-zero SIMD lane: one output channel of a dispatch group
    /// contributes nothing for one chunk.
    pub const STUCK_LANE: u32 = 1 << 3;
    /// A dropped µop: one lane's chunk contribution is skipped entirely.
    pub const DROP_UOP: u32 = 1 << 4;
    /// A duplicated µop: one lane's chunk contribution is accumulated twice.
    pub const DUP_UOP: u32 = 1 << 5;
    /// The worker executing the shard panics mid-flight (fires once per
    /// site; supervision must requeue the shard and respawn the worker).
    pub const WORKER_PANIC: u32 = 1 << 6;
    /// The worker executing the shard stalls for [`STALL_MILLIS`] before
    /// proceeding (deadline/latency degradation without corruption).
    pub const WORKER_STALL: u32 = 1 << 7;
    /// Every defined kind.
    pub const ALL: u32 = 0xff;
    /// The kinds that corrupt data (epoch-scoped firing).
    pub const CORRUPTION: u32 = Self::INPUT_FLIP
        | Self::WEIGHT_FLIP
        | Self::NAN_POISON
        | Self::STUCK_LANE
        | Self::DROP_UOP
        | Self::DUP_UOP;
    /// The kinds that disturb workers rather than data (fire once per site).
    pub const WORKER: u32 = Self::WORKER_PANIC | Self::WORKER_STALL;
}

/// How long a [`FaultKind::WORKER_STALL`] fault suspends its worker.
pub const STALL_MILLIS: u64 = 20;

/// A seeded fault schedule: all-primitive, `Copy`, JSON-round-trippable, and
/// disabled by default (`rate_ppm == 0`), so the fault-free configuration is
/// byte-identical to the pre-fault-injection one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of every fault decision; two runs with equal specs make equal
    /// decisions at equal sites.
    pub seed: u64,
    /// Per-site firing rate in parts per million (0 disables injection
    /// entirely, 1_000_000 fires at every targeted site).
    pub rate_ppm: u32,
    /// OR of [`FaultKind`] flags naming which fault kinds are armed.
    pub kinds: u32,
    /// When true, decisions bypass the fired map: every query of a firing
    /// site re-fires, across requeues and retries (a hard fault).
    pub persistent: bool,
    /// Restrict faults to one machine layer index, or `-1` for all layers.
    pub layer: i64,
    /// Restrict faults to one output row — the PE coordinate under the
    /// row-sharded schedule — or `-1` for all rows. Sites without a row
    /// coordinate (weight streams) ignore this filter.
    pub row: i64,
    /// First dispatch ordinal of the targeted cycle window (see
    /// [`FaultInjector::corrupt_input`] for the ordinal definition).
    pub window_start: u64,
    /// Length of the dispatch-ordinal window; 0 means unbounded.
    pub window_len: u64,
}

impl FaultSpec {
    /// The disabled schedule (the [`Default`]): no kinds armed, zero rate.
    pub fn disabled() -> Self {
        FaultSpec {
            seed: 0,
            rate_ppm: 0,
            kinds: 0,
            persistent: false,
            layer: -1,
            row: -1,
            window_start: 0,
            window_len: 0,
        }
    }

    /// An untargeted schedule firing `kinds` at `rate_ppm` under `seed`.
    pub fn seeded(seed: u64, rate_ppm: u32, kinds: u32) -> Self {
        FaultSpec {
            seed,
            rate_ppm,
            kinds,
            ..Self::disabled()
        }
    }

    /// Whether any fault can ever fire under this spec.
    pub fn is_enabled(&self) -> bool {
        self.rate_ppm > 0 && self.kinds != 0
    }

    /// Checks the spec's invariants: `kinds` within [`FaultKind::ALL`] and
    /// `rate_ppm` at most one million.
    ///
    /// # Errors
    /// Returns a static description of the first violated invariant.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.kinds & !FaultKind::ALL != 0 {
            return Err("kinds has bits outside the known fault-kind mask");
        }
        if self.rate_ppm > 1_000_000 {
            return Err("rate_ppm exceeds 1 000 000 (one fault per site)");
        }
        Ok(())
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A [`FaultSpec`] that passed [`FaultSpec::validate`] — the form the
/// machine consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Validates `spec` into a plan.
    ///
    /// # Errors
    /// Propagates [`FaultSpec::validate`].
    pub fn new(spec: FaultSpec) -> Result<Self, &'static str> {
        spec.validate()?;
        Ok(FaultPlan { spec })
    }

    /// The underlying schedule.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Builds a fresh injector (empty fired map, epoch 0) for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.spec)
    }
}

/// What an armed fault does to one emitted lane of a dispatch group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitFault {
    /// The lane is stuck at zero: its contribution for this chunk is zeroed.
    StuckLane,
    /// The lane's µop was dropped: its contribution is skipped.
    DroppedUop,
    /// The lane's µop was duplicated: its contribution accumulates twice.
    DuplicatedUop,
}

/// What an armed fault does to the worker about to run a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker panics (supervision must recover the shard).
    Panic,
    /// The worker sleeps [`STALL_MILLIS`] before proceeding.
    Stall,
}

/// Turns a [`FaultSpec`] into deterministic per-site decisions.
///
/// Sharable across threads (`&self` queries); one injector per *execution
/// scope* — the engine owns one for its lifetime and bumps the epoch per
/// execution, the one-shot machine path builds a fresh one per call.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    epoch: AtomicU64,
    fired: Mutex<HashMap<u64, u64>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector for `spec` (epoch 0, empty fired map).
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector {
            spec,
            epoch: AtomicU64::new(0),
            fired: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> Self {
        Self::new(FaultSpec::disabled())
    }

    /// The schedule this injector realizes.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Whether any fault can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.spec.is_enabled()
    }

    /// Opens a new execution epoch. Corruption sites first seen in an
    /// earlier epoch stop firing — a retried execution recomputes clean.
    pub fn begin_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Total faults fired so far (telemetry; monotone).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Possibly corrupts one gathered input operand.
    ///
    /// `ordinal` is the dispatch ordinal of the work unit —
    /// `((ky * ci_count + ci) * n_chunks + chunk) * co_groups + group` — a
    /// pure function of the layer plan, identical on every execution path
    /// and at every thread count. `element` indexes the operand within the
    /// gathered stream.
    pub fn corrupt_input(
        &self,
        layer: usize,
        row: usize,
        ordinal: u64,
        element: usize,
        value: f32,
    ) -> f32 {
        if !self.is_enabled() {
            return value;
        }
        if self
            .fire(
                FaultKind::NAN_POISON,
                layer,
                Some(row),
                Some(ordinal),
                element as u64,
                false,
            )
            .is_some()
        {
            return f32::NAN;
        }
        match self.fire(
            FaultKind::INPUT_FLIP,
            layer,
            Some(row),
            Some(ordinal),
            element as u64,
            false,
        ) {
            Some(h) => flip_mantissa(value, h),
            None => value,
        }
    }

    /// Possibly corrupts one staged weight operand. Weight sites carry no
    /// row coordinate (the stream is shared across rows — see
    /// [`FaultKind::WEIGHT_FLIP`]), so every load of the same stream
    /// corrupts identically.
    pub fn corrupt_weight(&self, layer: usize, ordinal: u64, element: usize, value: f32) -> f32 {
        if !self.is_enabled() {
            return value;
        }
        match self.fire(
            FaultKind::WEIGHT_FLIP,
            layer,
            None,
            Some(ordinal),
            element as u64,
            false,
        ) {
            Some(h) => flip_mantissa(value, h),
            None => value,
        }
    }

    /// Decides whether the emitted contribution of `lane` (the output
    /// channel offset within the dispatch group) is disturbed for this work
    /// unit.
    pub fn emit_fault(
        &self,
        layer: usize,
        row: usize,
        ordinal: u64,
        lane: usize,
    ) -> Option<EmitFault> {
        if !self.is_enabled() {
            return None;
        }
        let lane = lane as u64;
        if self
            .fire(
                FaultKind::STUCK_LANE,
                layer,
                Some(row),
                Some(ordinal),
                lane,
                false,
            )
            .is_some()
        {
            return Some(EmitFault::StuckLane);
        }
        if self
            .fire(
                FaultKind::DROP_UOP,
                layer,
                Some(row),
                Some(ordinal),
                lane,
                false,
            )
            .is_some()
        {
            return Some(EmitFault::DroppedUop);
        }
        if self
            .fire(
                FaultKind::DUP_UOP,
                layer,
                Some(row),
                Some(ordinal),
                lane,
                false,
            )
            .is_some()
        {
            return Some(EmitFault::DuplicatedUop);
        }
        None
    }

    /// Decides whether the worker about to run a shard of `layer` anchored
    /// at output row `row` is disturbed. Worker sites fire **once ever**
    /// (unless `persistent`), so a requeued shard completes.
    pub fn worker_fault(&self, layer: usize, row: usize) -> Option<WorkerFault> {
        if !self.is_enabled() {
            return None;
        }
        if self
            .fire(FaultKind::WORKER_PANIC, layer, Some(row), None, 0, true)
            .is_some()
        {
            return Some(WorkerFault::Panic);
        }
        if self
            .fire(FaultKind::WORKER_STALL, layer, Some(row), None, 0, true)
            .is_some()
        {
            return Some(WorkerFault::Stall);
        }
        None
    }

    /// The core decision: does `kind` fire at this site? Returns the site's
    /// mixed hash (for deriving fault parameters such as the flipped bit)
    /// when it does.
    fn fire(
        &self,
        kind: u32,
        layer: usize,
        row: Option<usize>,
        ordinal: Option<u64>,
        element: u64,
        once_ever: bool,
    ) -> Option<u64> {
        if self.spec.kinds & kind == 0 || !self.targets(layer, row, ordinal) {
            return None;
        }
        let h = self.site_hash(
            kind,
            layer as u64,
            row.map_or(u64::MAX, |r| r as u64),
            ordinal.unwrap_or(u64::MAX),
            element,
        );
        if h % 1_000_000 >= u64::from(self.spec.rate_ppm) {
            return None;
        }
        if !self.arm(h, once_ever) {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(mix(h))
    }

    /// Applies the spec's layer/row/window targeting filters.
    fn targets(&self, layer: usize, row: Option<usize>, ordinal: Option<u64>) -> bool {
        if self.spec.layer >= 0 && self.spec.layer as u64 != layer as u64 {
            return false;
        }
        if let Some(row) = row {
            if self.spec.row >= 0 && self.spec.row as u64 != row as u64 {
                return false;
            }
        }
        if let Some(ordinal) = ordinal {
            if self.spec.window_len > 0 {
                let end = self.spec.window_start.saturating_add(self.spec.window_len);
                if ordinal < self.spec.window_start || ordinal >= end {
                    return false;
                }
            }
        }
        true
    }

    /// Consults the fired map: corruption sites fire while the current epoch
    /// equals the epoch they first fired in; `once_ever` sites fire only on
    /// their very first query; `persistent` specs always fire.
    fn arm(&self, key: u64, once_ever: bool) -> bool {
        if self.spec.persistent {
            return true;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut fired = self.fired.lock().unwrap_or_else(PoisonError::into_inner);
        match fired.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(epoch);
                true
            }
            Entry::Occupied(slot) => !once_ever && *slot.get() == epoch,
        }
    }

    /// Hashes `(seed, kind, site)` into a uniform 64-bit value.
    fn site_hash(&self, kind: u32, layer: u64, row: u64, ordinal: u64, element: u64) -> u64 {
        let mut h = self.spec.seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [u64::from(kind), layer, row, ordinal, element] {
            h = mix(h ^ v);
        }
        h
    }
}

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flips one mantissa bit (chosen from the site hash) of `value` — silent
/// corruption that stays finite.
fn flip_mantissa(value: f32, h: u64) -> f32 {
    let bit = (h % 23) as u32;
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate_ppm: u32, kinds: u32) -> FaultSpec {
        FaultSpec::seeded(0xFA_17, rate_ppm, kinds)
    }

    #[test]
    fn disabled_spec_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        assert_eq!(inj.corrupt_input(0, 0, 0, 0, 1.5), 1.5);
        assert_eq!(inj.emit_fault(0, 0, 0, 0), None);
        assert_eq!(inj.worker_fault(0, 0), None);
        assert_eq!(inj.injected_faults(), 0);
    }

    #[test]
    fn decisions_are_deterministic_across_injectors_and_query_order() {
        let s = spec(200_000, FaultKind::ALL);
        let a = FaultInjector::new(s);
        let b = FaultInjector::new(s);
        a.begin_epoch();
        b.begin_epoch();
        let mut sites: Vec<(usize, usize, u64, usize)> = Vec::new();
        for layer in 0..3 {
            for row in 0..4 {
                for ordinal in 0..8 {
                    for element in 0..4 {
                        sites.push((layer, row, ordinal, element));
                    }
                }
            }
        }
        let forward: Vec<f32> = sites
            .iter()
            .map(|&(l, r, o, e)| a.corrupt_input(l, r, o, e, 1.0))
            .collect();
        let reverse: Vec<f32> = sites
            .iter()
            .rev()
            .map(|&(l, r, o, e)| b.corrupt_input(l, r, o, e, 1.0))
            .collect();
        let reverse: Vec<f32> = reverse.into_iter().rev().collect();
        for (x, y) in forward.iter().zip(reverse.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(
            forward.iter().any(|v| v.to_bits() != 1.0f32.to_bits()),
            "a 20% rate over {} sites fired nothing",
            sites.len()
        );
    }

    #[test]
    fn corruption_fires_within_an_epoch_and_clears_on_the_next() {
        let inj = FaultInjector::new(spec(1_000_000, FaultKind::NAN_POISON));
        inj.begin_epoch();
        assert!(inj.corrupt_input(0, 0, 0, 0, 1.0).is_nan());
        // Same epoch (a requeued shard recomputing): identical corruption.
        assert!(inj.corrupt_input(0, 0, 0, 0, 1.0).is_nan());
        // New epoch (a retry): clean.
        inj.begin_epoch();
        assert_eq!(inj.corrupt_input(0, 0, 0, 0, 1.0), 1.0);
    }

    #[test]
    fn worker_faults_fire_once_ever() {
        let inj = FaultInjector::new(spec(1_000_000, FaultKind::WORKER_PANIC));
        inj.begin_epoch();
        assert_eq!(inj.worker_fault(0, 0), Some(WorkerFault::Panic));
        assert_eq!(inj.worker_fault(0, 0), None);
        inj.begin_epoch();
        assert_eq!(inj.worker_fault(0, 0), None);
        assert_eq!(inj.worker_fault(0, 1), Some(WorkerFault::Panic));
    }

    #[test]
    fn persistent_specs_bypass_the_fired_map() {
        let mut s = spec(1_000_000, FaultKind::WORKER_PANIC | FaultKind::NAN_POISON);
        s.persistent = true;
        let inj = FaultInjector::new(s);
        inj.begin_epoch();
        assert!(inj.corrupt_input(0, 0, 0, 0, 2.0).is_nan());
        assert_eq!(inj.worker_fault(0, 0), Some(WorkerFault::Panic));
        inj.begin_epoch();
        assert!(inj.corrupt_input(0, 0, 0, 0, 2.0).is_nan());
        assert_eq!(inj.worker_fault(0, 0), Some(WorkerFault::Panic));
    }

    #[test]
    fn targeting_filters_restrict_layer_row_and_window() {
        let mut s = spec(1_000_000, FaultKind::NAN_POISON);
        s.layer = 1;
        s.row = 2;
        s.window_start = 10;
        s.window_len = 5;
        let inj = FaultInjector::new(s);
        inj.begin_epoch();
        assert!(inj.corrupt_input(1, 2, 12, 0, 1.0).is_nan());
        assert_eq!(inj.corrupt_input(0, 2, 12, 0, 1.0), 1.0, "wrong layer");
        assert_eq!(inj.corrupt_input(1, 3, 12, 0, 1.0), 1.0, "wrong row");
        assert_eq!(inj.corrupt_input(1, 2, 9, 0, 1.0), 1.0, "before window");
        assert_eq!(inj.corrupt_input(1, 2, 15, 0, 1.0), 1.0, "after window");
    }

    #[test]
    fn weight_sites_ignore_the_row_filter_and_share_across_rows() {
        let mut s = spec(1_000_000, FaultKind::WEIGHT_FLIP);
        s.row = 3;
        let inj = FaultInjector::new(s);
        inj.begin_epoch();
        let corrupted = inj.corrupt_weight(0, 7, 1, 1.0);
        assert_ne!(corrupted.to_bits(), 1.0f32.to_bits());
        // The same stream element corrupts identically on a later load.
        assert_eq!(
            inj.corrupt_weight(0, 7, 1, 1.0).to_bits(),
            corrupted.to_bits()
        );
    }

    #[test]
    fn mantissa_flips_stay_finite() {
        let inj = FaultInjector::new(spec(1_000_000, FaultKind::INPUT_FLIP));
        inj.begin_epoch();
        for element in 0..64 {
            let v = inj.corrupt_input(0, 0, 0, element, 3.25);
            assert!(v.is_finite(), "element {element} produced {v}");
        }
    }

    #[test]
    fn emit_faults_pick_a_single_kind_per_lane() {
        let inj = FaultInjector::new(spec(500_000, FaultKind::STUCK_LANE | FaultKind::DROP_UOP));
        inj.begin_epoch();
        let mut fired = 0;
        for ordinal in 0..64 {
            for lane in 0..8 {
                if inj.emit_fault(0, 0, ordinal, lane).is_some() {
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "a 50% rate over 512 lanes fired nothing");
        assert_eq!(inj.injected_faults(), fired);
    }

    #[test]
    fn specs_validate_and_round_trip_through_plans() {
        assert!(FaultSpec::disabled().validate().is_ok());
        let mut bad = FaultSpec::disabled();
        bad.kinds = FaultKind::ALL + 1;
        assert!(bad.validate().is_err());
        let mut hot = FaultSpec::disabled();
        hot.rate_ppm = 1_000_001;
        assert!(hot.validate().is_err());

        let plan = FaultPlan::new(spec(10, FaultKind::ALL)).expect("valid spec");
        assert_eq!(plan.spec(), spec(10, FaultKind::ALL));
        assert!(plan.injector().is_enabled());
    }
}
