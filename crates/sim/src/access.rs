//! The access µ-engine: three strided index generators feeding address FIFOs.

use ganax_isa::{AccessReg, AccessUop, AddrGenKind};

use crate::fifo::AddrFifo;
use crate::index_gen::{GeneratorConfig, StridedIndexGenerator};

/// The access µ-engine of one PE (Figure 7a).
///
/// It owns one strided µindex generator and one address FIFO per data buffer
/// (input, weight, output). Every cycle each running generator pushes one
/// address into its FIFO unless that FIFO is full, in which case the generator
/// stalls — exactly the synchronization rule of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessEngine {
    generators: [StridedIndexGenerator; 3],
    fifos: [AddrFifo; 3],
    stall_cycles: u64,
}

impl AccessEngine {
    /// Creates an access µ-engine whose three address FIFOs hold
    /// `fifo_capacity` entries each.
    pub fn new(fifo_capacity: usize) -> Self {
        AccessEngine {
            generators: [
                StridedIndexGenerator::new(),
                StridedIndexGenerator::new(),
                StridedIndexGenerator::new(),
            ],
            fifos: [
                AddrFifo::new(fifo_capacity),
                AddrFifo::new(fifo_capacity),
                AddrFifo::new(fifo_capacity),
            ],
            stall_cycles: 0,
        }
    }

    /// Applies an access µop (ignores the µop's PV field — routing to the
    /// right PE is the array's responsibility).
    pub fn apply(&mut self, uop: &AccessUop) {
        match uop {
            AccessUop::Cfg { gen, reg, imm, .. } => self.configure(*gen, *reg, *imm),
            AccessUop::Start { gen, .. } => self.start(*gen),
            AccessUop::Stop { gen, .. } => self.stop(*gen),
        }
    }

    /// Writes one configuration register of one generator.
    pub fn configure(&mut self, gen: AddrGenKind, reg: AccessReg, value: u16) {
        self.generators[gen.index()].configure(reg, value);
    }

    /// Loads a whole generator configuration at once.
    pub fn load_config(&mut self, gen: AddrGenKind, config: GeneratorConfig) {
        self.generators[gen.index()].load_config(config);
    }

    /// Starts one generator.
    pub fn start(&mut self, gen: AddrGenKind) {
        self.generators[gen.index()].start();
    }

    /// Stops one generator.
    pub fn stop(&mut self, gen: AddrGenKind) {
        self.generators[gen.index()].stop();
    }

    /// Starts all three generators.
    pub fn start_all(&mut self) {
        for gen in AddrGenKind::ALL {
            self.start(gen);
        }
    }

    /// Whether any generator is still producing addresses.
    pub fn any_running(&self) -> bool {
        self.generators
            .iter()
            .any(StridedIndexGenerator::is_running)
    }

    /// Advances the engine by one cycle: every running generator emits one
    /// address into its FIFO unless the FIFO is full (a stall).
    pub fn tick(&mut self) {
        for kind in AddrGenKind::ALL {
            let idx = kind.index();
            if !self.generators[idx].is_running() {
                continue;
            }
            if self.fifos[idx].is_full() {
                self.stall_cycles += 1;
                continue;
            }
            if let Some(addr) = self.generators[idx].tick() {
                // Push cannot fail: fullness was checked above.
                self.fifos[idx]
                    .push(addr)
                    .expect("address fifo availability checked before push");
            }
        }
    }

    /// The address FIFO of one buffer.
    pub fn fifo(&self, gen: AddrGenKind) -> &AddrFifo {
        &self.fifos[gen.index()]
    }

    /// Mutable access to the address FIFO of one buffer (the execute µ-engine
    /// pops from these).
    pub fn fifo_mut(&mut self, gen: AddrGenKind) -> &mut AddrFifo {
        &mut self.fifos[gen.index()]
    }

    /// The generator driving one buffer.
    pub fn generator(&self, gen: AddrGenKind) -> &StridedIndexGenerator {
        &self.generators[gen.index()]
    }

    /// Cycles lost to full-FIFO stalls.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Resets the engine to its just-constructed state in place: generators
    /// cleared and stopped, FIFOs emptied (allocations kept), counters zeroed.
    pub fn reset(&mut self) {
        for gen in &mut self.generators {
            gen.reset();
        }
        for fifo in &mut self.fifos {
            fifo.clear();
        }
        self.stall_cycles = 0;
    }

    /// Splits the engine into its generators, FIFOs and stall counter so a
    /// burst-stepping PE can drain addresses and fix up bookkeeping while
    /// holding disjoint borrows. Index both arrays with
    /// [`AddrGenKind::index`].
    pub(crate) fn burst_parts(
        &mut self,
    ) -> (
        &mut [StridedIndexGenerator; 3],
        &mut [AddrFifo; 3],
        &mut u64,
    ) {
        (
            &mut self.generators,
            &mut self.fifos,
            &mut self.stall_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(end: u16, repeat: u16) -> GeneratorConfig {
        GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end,
            repeat,
        }
    }

    #[test]
    fn tick_pushes_one_address_per_running_generator() {
        let mut engine = AccessEngine::new(4);
        engine.load_config(AddrGenKind::Input, linear(4, 1));
        engine.load_config(AddrGenKind::Weight, linear(4, 1));
        engine.start(AddrGenKind::Input);
        engine.start(AddrGenKind::Weight);
        engine.tick();
        assert_eq!(engine.fifo(AddrGenKind::Input).len(), 1);
        assert_eq!(engine.fifo(AddrGenKind::Weight).len(), 1);
        assert_eq!(engine.fifo(AddrGenKind::Output).len(), 0);
    }

    #[test]
    fn full_fifo_stalls_the_generator() {
        let mut engine = AccessEngine::new(2);
        engine.load_config(AddrGenKind::Input, linear(8, 1));
        engine.start(AddrGenKind::Input);
        for _ in 0..5 {
            engine.tick();
        }
        // Only two addresses fit; the rest of the ticks are stalls.
        assert_eq!(engine.fifo(AddrGenKind::Input).len(), 2);
        assert_eq!(engine.stall_cycles(), 3);
        assert_eq!(engine.generator(AddrGenKind::Input).generated(), 2);
        // Draining the FIFO lets generation resume.
        engine.fifo_mut(AddrGenKind::Input).pop();
        engine.tick();
        assert_eq!(engine.fifo(AddrGenKind::Input).len(), 2);
        assert_eq!(engine.generator(AddrGenKind::Input).generated(), 3);
    }

    #[test]
    fn apply_access_uops() {
        let mut engine = AccessEngine::new(4);
        for (reg, value) in [
            (AccessReg::Addr, 0u16),
            (AccessReg::Offset, 0),
            (AccessReg::Step, 2),
            (AccessReg::End, 6),
            (AccessReg::Repeat, 1),
        ] {
            engine.apply(&AccessUop::Cfg {
                pv: 0,
                gen: AddrGenKind::Weight,
                reg,
                imm: value,
            });
        }
        engine.apply(&AccessUop::Start {
            pv: 0,
            gen: AddrGenKind::Weight,
        });
        assert!(engine.any_running());
        engine.tick();
        engine.tick();
        engine.tick();
        engine.tick();
        assert!(!engine.any_running());
        let fifo = engine.fifo_mut(AddrGenKind::Weight);
        assert_eq!(
            (fifo.pop(), fifo.pop(), fifo.pop(), fifo.pop()),
            (Some(0), Some(2), Some(4), None)
        );
    }

    #[test]
    fn stop_uop_halts_generation() {
        let mut engine = AccessEngine::new(4);
        engine.load_config(AddrGenKind::Output, linear(10, 1));
        engine.start(AddrGenKind::Output);
        engine.tick();
        engine.apply(&AccessUop::Stop {
            pv: 0,
            gen: AddrGenKind::Output,
        });
        engine.tick();
        assert_eq!(engine.fifo(AddrGenKind::Output).len(), 1);
    }
}
