//! Bounded FIFOs: the synchronization fabric between µ-engines.
//!
//! The paper: "The address FIFOs perform the synchronization between access
//! µ-engine and execute µ-engine. [...] If any of the address FIFOs are full,
//! the corresponding strided µindex generator stops generating new addresses.
//! In the case that any of the address FIFOs are empty, no data is
//! read/written."

use std::collections::VecDeque;
use std::fmt;

use ganax_isa::ExecUop;

/// Error returned when pushing into a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoError {
    /// Capacity of the FIFO that rejected the push.
    pub capacity: usize,
}

impl fmt::Display for FifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo full (capacity {})", self.capacity)
    }
}

impl std::error::Error for FifoError {}

/// A bounded FIFO with push/pop counters.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bounded<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

impl<T> Bounded<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Bounded {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    fn push(&mut self, item: T) -> Result<(), FifoError> {
        if self.items.len() >= self.capacity {
            return Err(FifoError {
                capacity: self.capacity,
            });
        }
        self.items.push_back(item);
        self.pushes += 1;
        Ok(())
    }

    /// Pushes a batch of items with one capacity check (counted like
    /// individual pushes). Rejects the whole batch if it does not fit.
    fn push_all(&mut self, items: &[T]) -> Result<(), FifoError>
    where
        T: Copy,
    {
        if self.items.len() + items.len() > self.capacity {
            return Err(FifoError {
                capacity: self.capacity,
            });
        }
        self.items.extend(items.iter().copied());
        self.pushes += items.len() as u64;
        Ok(())
    }

    fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Pops the oldest `n` items as one drain (counted like `n` pops).
    ///
    /// # Panics
    /// Panics if fewer than `n` items are queued.
    fn drain_front(&mut self, n: usize) -> std::collections::vec_deque::Drain<'_, T> {
        assert!(n <= self.items.len(), "drain of {n} exceeds queue length");
        self.pops += n as u64;
        self.items.drain(..n)
    }

    fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Drops all queued items and zeroes the push/pop counters, keeping the
    /// backing allocation (a PE being reset in place between dispatches).
    fn clear(&mut self) {
        self.items.clear();
        self.pushes = 0;
        self.pops = 0;
    }
}

/// A bounded FIFO of operand addresses between an index generator and the
/// execute µ-engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrFifo {
    inner: Bounded<u16>,
}

impl AddrFifo {
    /// Creates an address FIFO with the given capacity (8 entries in the paper
    /// configuration, see Table III "I/O FIFOs").
    pub fn new(capacity: usize) -> Self {
        AddrFifo {
            inner: Bounded::new(capacity),
        }
    }

    /// Pushes an address.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the FIFO is full (the generator must stall).
    pub fn push(&mut self, addr: u16) -> Result<(), FifoError> {
        self.inner.push(addr)
    }

    /// Pops the oldest address, if any.
    pub fn pop(&mut self) -> Option<u16> {
        self.inner.pop()
    }

    /// Peeks at the oldest address without consuming it.
    pub fn peek(&self) -> Option<u16> {
        self.inner.peek().copied()
    }

    /// Number of queued addresses.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Whether the FIFO holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.inner.is_full()
    }

    /// Total pushes served (for energy accounting).
    pub fn pushes(&self) -> u64 {
        self.inner.pushes
    }

    /// Total pops served (for energy accounting).
    pub fn pops(&self) -> u64 {
        self.inner.pops
    }

    /// Empties the FIFO and zeroes its counters in place (allocation kept).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Records `n` addresses that logically transited the FIFO without being
    /// materialized (a burst-stepped PE hands generator output straight to the
    /// execute µ-engine). Keeps the push/pop energy counters identical to the
    /// single-step path.
    pub(crate) fn note_passthrough(&mut self, n: u64) {
        self.inner.pushes += n;
        self.inner.pops += n;
    }
}

/// A bounded FIFO of execute µops feeding the execute µ-engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UopFifo {
    inner: Bounded<ExecUop>,
}

impl UopFifo {
    /// Creates a µop FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        UopFifo {
            inner: Bounded::new(capacity),
        }
    }

    /// Pushes a µop.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the FIFO is full.
    pub fn push(&mut self, uop: ExecUop) -> Result<(), FifoError> {
        self.inner.push(uop)
    }

    /// Pushes a batch of µops with one capacity check (a dispatcher issuing a
    /// whole program at once). Rejects the whole batch if it does not fit.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the batch exceeds the free entries.
    pub fn push_all(&mut self, uops: &[ExecUop]) -> Result<(), FifoError> {
        self.inner.push_all(uops)
    }

    /// Pops the oldest µop, if any.
    pub fn pop(&mut self) -> Option<ExecUop> {
        self.inner.pop()
    }

    /// Peeks at the oldest µop without consuming it.
    pub fn peek(&self) -> Option<ExecUop> {
        self.inner.peek().copied()
    }

    /// Number of queued µops.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the FIFO holds no µops.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.inner.is_full()
    }

    /// Empties the FIFO and zeroes its counters in place (allocation kept).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterates the queued µops oldest-first without consuming them (the
    /// burst-stepping PE peeks ahead to recognize a dispatchable program).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ExecUop> {
        self.inner.items.iter()
    }

    /// Pops the oldest `n` µops as one drain — the burst-stepping PE fetches
    /// a whole proven program queue at once. Counted like `n` pops.
    pub(crate) fn drain_front(
        &mut self,
        n: usize,
    ) -> std::collections::vec_deque::Drain<'_, ExecUop> {
        self.inner.drain_front(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_fifo_order_and_backpressure() {
        let mut fifo = AddrFifo::new(2);
        assert!(fifo.is_empty());
        fifo.push(10).unwrap();
        fifo.push(20).unwrap();
        assert!(fifo.is_full());
        assert_eq!(fifo.push(30), Err(FifoError { capacity: 2 }));
        assert_eq!(fifo.peek(), Some(10));
        assert_eq!(fifo.pop(), Some(10));
        assert_eq!(fifo.pop(), Some(20));
        assert_eq!(fifo.pop(), None);
        assert_eq!(fifo.pushes(), 2);
        assert_eq!(fifo.pops(), 2);
    }

    #[test]
    fn uop_fifo_holds_uops_in_order() {
        let mut fifo = UopFifo::new(4);
        fifo.push(ExecUop::Repeat).unwrap();
        fifo.push(ExecUop::Mac).unwrap();
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.peek(), Some(ExecUop::Repeat));
        assert_eq!(fifo.pop(), Some(ExecUop::Repeat));
        assert_eq!(fifo.pop(), Some(ExecUop::Mac));
        assert!(fifo.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = AddrFifo::new(0);
    }

    #[test]
    fn fifo_error_displays_capacity() {
        assert!(FifoError { capacity: 8 }.to_string().contains('8'));
    }
}
