//! Bounded FIFOs: the synchronization fabric between µ-engines.
//!
//! The paper: "The address FIFOs perform the synchronization between access
//! µ-engine and execute µ-engine. [...] If any of the address FIFOs are full,
//! the corresponding strided µindex generator stops generating new addresses.
//! In the case that any of the address FIFOs are empty, no data is
//! read/written."

use std::collections::VecDeque;
use std::fmt;

use ganax_isa::ExecUop;

/// Error returned when pushing into a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoError {
    /// Capacity of the FIFO that rejected the push.
    pub capacity: usize,
}

impl fmt::Display for FifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo full (capacity {})", self.capacity)
    }
}

impl std::error::Error for FifoError {}

/// A bounded FIFO with push/pop counters.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bounded<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

impl<T> Bounded<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Bounded {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    fn push(&mut self, item: T) -> Result<(), FifoError> {
        if self.items.len() >= self.capacity {
            return Err(FifoError {
                capacity: self.capacity,
            });
        }
        self.items.push_back(item);
        self.pushes += 1;
        Ok(())
    }

    /// Pushes a batch of items with one capacity check (counted like
    /// individual pushes). Rejects the whole batch if it does not fit.
    fn push_all(&mut self, items: &[T]) -> Result<(), FifoError>
    where
        T: Copy,
    {
        if self.items.len() + items.len() > self.capacity {
            return Err(FifoError {
                capacity: self.capacity,
            });
        }
        self.items.extend(items.iter().copied());
        self.pushes += items.len() as u64;
        Ok(())
    }

    fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Pops the oldest `n` items as one drain (counted like `n` pops).
    ///
    /// # Panics
    /// Panics if fewer than `n` items are queued.
    fn drain_front(&mut self, n: usize) -> std::collections::vec_deque::Drain<'_, T> {
        assert!(n <= self.items.len(), "drain of {n} exceeds queue length");
        self.pops += n as u64;
        self.items.drain(..n)
    }

    fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Drops all queued items and zeroes the push/pop counters, keeping the
    /// backing allocation (a PE being reset in place between dispatches).
    fn clear(&mut self) {
        self.items.clear();
        self.pushes = 0;
        self.pops = 0;
    }
}

/// A bounded FIFO of operand addresses between an index generator and the
/// execute µ-engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrFifo {
    inner: Bounded<u16>,
}

impl AddrFifo {
    /// Creates an address FIFO with the given capacity (8 entries in the paper
    /// configuration, see Table III "I/O FIFOs").
    pub fn new(capacity: usize) -> Self {
        AddrFifo {
            inner: Bounded::new(capacity),
        }
    }

    /// Pushes an address.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the FIFO is full (the generator must stall).
    pub fn push(&mut self, addr: u16) -> Result<(), FifoError> {
        self.inner.push(addr)
    }

    /// Pops the oldest address, if any.
    pub fn pop(&mut self) -> Option<u16> {
        self.inner.pop()
    }

    /// Peeks at the oldest address without consuming it.
    pub fn peek(&self) -> Option<u16> {
        self.inner.peek().copied()
    }

    /// Number of queued addresses.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Whether the FIFO holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.inner.is_full()
    }

    /// Total pushes served (for energy accounting).
    pub fn pushes(&self) -> u64 {
        self.inner.pushes
    }

    /// Total pops served (for energy accounting).
    pub fn pops(&self) -> u64 {
        self.inner.pops
    }

    /// Empties the FIFO and zeroes its counters in place (allocation kept).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Records `n` addresses that logically transited the FIFO without being
    /// materialized (a burst-stepped PE hands generator output straight to the
    /// execute µ-engine). Keeps the push/pop energy counters identical to the
    /// single-step path.
    pub(crate) fn note_passthrough(&mut self, n: u64) {
        self.inner.pushes += n;
        self.inner.pops += n;
    }
}

/// A bounded FIFO of execute µops feeding the execute µ-engine.
///
/// Uniform `repeat`+`mac` dispatches are the overwhelmingly dominant traffic
/// (the machine planner issues one such pair per output word), so the FIFO
/// keeps them *virtual*: [`UopFifo::try_push_mac_pairs`] records a pair count
/// instead of materializing `2n` entries, and the queue synthesizes the
/// alternating `Repeat, Mac, Repeat, Mac, …` sequence on demand. Virtual and
/// materialized queues are observationally identical — `pop`/`peek`/`iter`,
/// lengths, capacity checks, and push/pop counters all agree — and compare
/// equal through [`PartialEq`].
///
/// Invariant: when `virtual_uops > 0` the materialized deque is empty (a
/// generic push first materializes), so the virtual region is always the
/// entire queue: an alternating sequence ending in `Mac`. The front µop is
/// therefore `Repeat` when `virtual_uops` is even and `Mac` (mid-pair) when
/// it is odd.
#[derive(Debug, Clone)]
pub struct UopFifo {
    inner: Bounded<ExecUop>,
    /// Count of µops held virtually as `repeat`+`mac` pairs (possibly minus a
    /// consumed front `Repeat`), never materialized in `inner.items`.
    virtual_uops: usize,
}

/// Statics so the synthesized iterator can hand out `&ExecUop` like the
/// materialized deque does.
static REPEAT_UOP: ExecUop = ExecUop::Repeat;
static MAC_UOP: ExecUop = ExecUop::Mac;

impl UopFifo {
    /// Creates a µop FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        UopFifo {
            inner: Bounded::new(capacity),
            virtual_uops: 0,
        }
    }

    /// The µop at queue position `i` of the virtual region, given `total`
    /// virtual µops remain: parity of the remaining count at that position
    /// decides `Repeat` (even) vs `Mac` (odd).
    fn virtual_at(total: usize, i: usize) -> ExecUop {
        if (total - i) % 2 == 0 {
            ExecUop::Repeat
        } else {
            ExecUop::Mac
        }
    }

    /// Converts the virtual pair count into materialized entries (push
    /// counters were already charged when the pairs were accepted).
    fn materialize(&mut self) {
        debug_assert!(self.virtual_uops == 0 || self.inner.items.is_empty());
        while self.virtual_uops > 0 {
            self.inner
                .items
                .push_back(Self::virtual_at(self.virtual_uops, 0));
            self.virtual_uops -= 1;
        }
    }

    /// Pushes a µop.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the FIFO is full.
    pub fn push(&mut self, uop: ExecUop) -> Result<(), FifoError> {
        if self.is_full() {
            return Err(FifoError {
                capacity: self.inner.capacity,
            });
        }
        self.materialize();
        self.inner.push(uop)
    }

    /// Pushes a batch of µops with one capacity check (a dispatcher issuing a
    /// whole program at once). Rejects the whole batch if it does not fit.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the batch exceeds the free entries.
    pub fn push_all(&mut self, uops: &[ExecUop]) -> Result<(), FifoError> {
        if self.len() + uops.len() > self.inner.capacity {
            return Err(FifoError {
                capacity: self.inner.capacity,
            });
        }
        self.materialize();
        self.inner.push_all(uops)
    }

    /// Enqueues `pairs` uniform `repeat`+`mac` programs virtually: one
    /// capacity check and a counter bump instead of `2 × pairs` deque writes.
    /// Counted exactly like [`UopFifo::push_all`] of the same sequence. Falls
    /// back to materialized entries when non-uniform µops are already queued.
    ///
    /// # Errors
    /// Returns [`FifoError`] when the batch exceeds the free entries.
    pub fn try_push_mac_pairs(&mut self, pairs: usize) -> Result<(), FifoError> {
        let uops = pairs * 2;
        if self.len() + uops > self.inner.capacity {
            return Err(FifoError {
                capacity: self.inner.capacity,
            });
        }
        if self.inner.items.is_empty() {
            self.virtual_uops += uops;
        } else {
            for _ in 0..pairs {
                self.inner.items.push_back(ExecUop::Repeat);
                self.inner.items.push_back(ExecUop::Mac);
            }
        }
        self.inner.pushes += uops as u64;
        Ok(())
    }

    /// The whole queue as untouched uniform `repeat`+`mac` pairs, if that is
    /// what it holds — the burst-stepping PE retires such a queue per dispatch
    /// without walking it.
    pub(crate) fn uniform_pairs(&self) -> Option<usize> {
        (self.inner.items.is_empty() && self.virtual_uops > 0 && self.virtual_uops % 2 == 0)
            .then_some(self.virtual_uops / 2)
    }

    /// Pops the oldest µop, if any.
    pub fn pop(&mut self) -> Option<ExecUop> {
        if let Some(uop) = self.inner.pop() {
            return Some(uop);
        }
        if self.virtual_uops == 0 {
            return None;
        }
        let uop = Self::virtual_at(self.virtual_uops, 0);
        self.virtual_uops -= 1;
        self.inner.pops += 1;
        Some(uop)
    }

    /// Peeks at the oldest µop without consuming it.
    pub fn peek(&self) -> Option<ExecUop> {
        self.inner
            .peek()
            .copied()
            .or_else(|| (self.virtual_uops > 0).then(|| Self::virtual_at(self.virtual_uops, 0)))
    }

    /// Number of queued µops.
    pub fn len(&self) -> usize {
        self.inner.len() + self.virtual_uops
    }

    /// Whether the FIFO holds no µops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.inner.capacity
    }

    /// Empties the FIFO and zeroes its counters in place (allocation kept).
    pub fn clear(&mut self) {
        self.inner.clear();
        self.virtual_uops = 0;
    }

    /// Iterates the queued µops oldest-first without consuming them (the
    /// burst-stepping PE peeks ahead to recognize a dispatchable program).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ExecUop> {
        let total = self.virtual_uops;
        self.inner.items.iter().chain((0..total).map(move |i| {
            if (total - i) % 2 == 0 {
                &REPEAT_UOP
            } else {
                &MAC_UOP
            }
        }))
    }

    /// Pops the oldest `n` µops as one drain — the burst-stepping PE fetches
    /// a whole proven program queue at once. Counted like `n` pops.
    /// Materializes any virtual pairs first (the uniform fast path uses
    /// [`UopFifo::consume_front`] instead and never lands here).
    pub(crate) fn drain_front(
        &mut self,
        n: usize,
    ) -> std::collections::vec_deque::Drain<'_, ExecUop> {
        if self.virtual_uops > 0 {
            self.materialize();
        }
        self.inner.drain_front(n)
    }

    /// Removes the oldest `n` µops without yielding them (counted like `n`
    /// pops) — the per-dispatch retire path already knows their shape.
    ///
    /// # Panics
    /// Panics if fewer than `n` µops are queued.
    pub(crate) fn consume_front(&mut self, n: usize) {
        assert!(n <= self.len(), "consume of {n} exceeds queue length");
        let from_inner = n.min(self.inner.items.len());
        if from_inner > 0 {
            drop(self.inner.drain_front(from_inner));
        }
        let from_virtual = n - from_inner;
        self.virtual_uops -= from_virtual;
        self.inner.pops += from_virtual as u64;
    }
}

/// Virtual and materialized queues with the same logical µop sequence and
/// counter history are the same FIFO.
impl PartialEq for UopFifo {
    fn eq(&self, other: &Self) -> bool {
        self.inner.capacity == other.inner.capacity
            && self.inner.pushes == other.inner.pushes
            && self.inner.pops == other.inner.pops
            && self.len() == other.len()
            && self.iter().eq(other.iter())
    }
}

impl Eq for UopFifo {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_fifo_order_and_backpressure() {
        let mut fifo = AddrFifo::new(2);
        assert!(fifo.is_empty());
        fifo.push(10).unwrap();
        fifo.push(20).unwrap();
        assert!(fifo.is_full());
        assert_eq!(fifo.push(30), Err(FifoError { capacity: 2 }));
        assert_eq!(fifo.peek(), Some(10));
        assert_eq!(fifo.pop(), Some(10));
        assert_eq!(fifo.pop(), Some(20));
        assert_eq!(fifo.pop(), None);
        assert_eq!(fifo.pushes(), 2);
        assert_eq!(fifo.pops(), 2);
    }

    #[test]
    fn uop_fifo_holds_uops_in_order() {
        let mut fifo = UopFifo::new(4);
        fifo.push(ExecUop::Repeat).unwrap();
        fifo.push(ExecUop::Mac).unwrap();
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.peek(), Some(ExecUop::Repeat));
        assert_eq!(fifo.pop(), Some(ExecUop::Repeat));
        assert_eq!(fifo.pop(), Some(ExecUop::Mac));
        assert!(fifo.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = AddrFifo::new(0);
    }

    #[test]
    fn fifo_error_displays_capacity() {
        assert!(FifoError { capacity: 8 }.to_string().contains('8'));
    }

    /// A materialized twin of `fifo` built by pushing the same logical
    /// sequence µop by µop.
    fn materialized_twin(fifo: &UopFifo, capacity: usize) -> UopFifo {
        let mut twin = UopFifo::new(capacity);
        for &uop in fifo.iter() {
            twin.push(uop).unwrap();
        }
        twin
    }

    #[test]
    fn virtual_pairs_match_materialized_pushes() {
        let mut virt = UopFifo::new(16);
        virt.try_push_mac_pairs(3).unwrap();
        let mut mat = UopFifo::new(16);
        mat.push_all(&[ExecUop::Repeat, ExecUop::Mac].repeat(3))
            .unwrap();
        assert_eq!(virt, mat);
        assert_eq!(virt.len(), 6);
        assert_eq!(virt.uniform_pairs(), Some(3));
        assert_eq!(mat.uniform_pairs(), None);

        // Popping synthesizes the alternating sequence and keeps parity.
        assert_eq!(virt.pop(), Some(ExecUop::Repeat));
        assert_eq!(virt.peek(), Some(ExecUop::Mac));
        assert_eq!(virt.uniform_pairs(), None);
        assert_eq!(virt.pop(), Some(ExecUop::Mac));
        mat.pop();
        mat.pop();
        assert_eq!(virt, mat);
        assert!(virt.iter().eq(mat.iter()));
    }

    #[test]
    fn virtual_pairs_respect_capacity() {
        let mut fifo = UopFifo::new(4);
        assert!(fifo.try_push_mac_pairs(3).is_err());
        fifo.try_push_mac_pairs(2).unwrap();
        assert!(fifo.is_full());
        assert!(fifo.push(ExecUop::Mac).is_err());
        assert!(fifo.try_push_mac_pairs(1).is_err());
        fifo.clear();
        assert!(fifo.is_empty());
        assert_eq!(fifo.uniform_pairs(), None);
    }

    #[test]
    fn generic_push_materializes_virtual_pairs() {
        let mut fifo = UopFifo::new(8);
        fifo.try_push_mac_pairs(2).unwrap();
        fifo.push(ExecUop::Repeat).unwrap();
        assert_eq!(fifo.len(), 5);
        assert_eq!(fifo.uniform_pairs(), None);
        let twin = materialized_twin(&fifo, 8);
        assert!(fifo.iter().eq(twin.iter()));
        // Pairs pushed behind materialized entries stay materialized.
        fifo.try_push_mac_pairs(1).unwrap();
        assert_eq!(fifo.len(), 7);
        assert_eq!(
            fifo.iter().copied().collect::<Vec<_>>()[5..],
            [ExecUop::Repeat, ExecUop::Mac]
        );
    }

    #[test]
    fn consume_front_spans_materialized_and_virtual() {
        let mut fifo = UopFifo::new(16);
        fifo.push(ExecUop::Repeat).unwrap();
        fifo.push(ExecUop::Mac).unwrap();
        fifo.try_push_mac_pairs(3).unwrap();
        fifo.consume_front(5);
        assert_eq!(fifo.len(), 3);
        // 2 + 6 pushed, 5 consumed: the queue resumes mid-pair.
        assert_eq!(fifo.peek(), Some(ExecUop::Mac));
        let mut drained = UopFifo::new(16);
        drained
            .push_all(&[ExecUop::Mac, ExecUop::Repeat, ExecUop::Mac])
            .unwrap();
        assert!(fifo.iter().eq(drained.iter()));

        // A purely virtual queue consumes pairs without materializing.
        let mut virt = UopFifo::new(16);
        virt.try_push_mac_pairs(3).unwrap();
        virt.consume_front(4);
        assert_eq!(virt.len(), 2);
        assert_eq!(virt.peek(), Some(ExecUop::Repeat));
        assert_eq!(virt.uniform_pairs(), Some(1));
    }

    #[test]
    fn drain_front_materializes_virtual_pairs() {
        let mut fifo = UopFifo::new(16);
        fifo.try_push_mac_pairs(4).unwrap();
        let drained: Vec<ExecUop> = fifo.drain_front(3).collect();
        assert_eq!(
            drained,
            vec![ExecUop::Repeat, ExecUop::Mac, ExecUop::Repeat]
        );
        assert_eq!(fifo.len(), 5);
        assert_eq!(fifo.peek(), Some(ExecUop::Mac));
    }
}
