//! Per-PE scratchpad buffers (input register, weight SRAM, output buffer).

/// A small addressable scratchpad with access counters.
///
/// The GANAX PE keeps its working set in three scratchpads (Table III: the
/// input register file, the weight SRAM and the partial-sum/output registers);
/// this type models any of them. Reads and writes are counted so the Table II
/// register-file energy can be charged per access.
#[derive(Debug, Clone, PartialEq)]
pub struct Scratchpad {
    data: Vec<f32>,
    reads: u64,
    writes: u64,
}

impl Scratchpad {
    /// Creates a zero-initialised scratchpad with `capacity` words.
    pub fn new(capacity: usize) -> Self {
        Scratchpad {
            data: vec![0.0; capacity],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Loads contents starting at word 0 (a bulk fill from the global buffer;
    /// counted as writes).
    ///
    /// # Panics
    /// Panics if `values` exceeds the capacity.
    pub fn fill(&mut self, values: &[f32]) {
        assert!(
            values.len() <= self.data.len(),
            "fill of {} words exceeds scratchpad capacity {}",
            values.len(),
            self.data.len()
        );
        self.data[..values.len()].copy_from_slice(values);
        self.writes += values.len() as u64;
    }

    /// Loads `len` words starting at word 0 through a closure that fills the
    /// destination in place (a gather from the global buffer; counted as
    /// writes, like [`Scratchpad::fill`]).
    ///
    /// # Panics
    /// Panics if `len` exceeds the capacity.
    pub fn fill_with(&mut self, len: usize, f: impl FnOnce(&mut [f32])) {
        assert!(
            len <= self.data.len(),
            "fill of {} words exceeds scratchpad capacity {}",
            len,
            self.data.len()
        );
        f(&mut self.data[..len]);
        self.writes += len as u64;
    }

    /// Reads the word at `addr` (counted).
    ///
    /// # Panics
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: u16) -> f32 {
        self.reads += 1;
        self.data[addr as usize]
    }

    /// Writes the word at `addr` (counted).
    ///
    /// # Panics
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u16, value: f32) {
        self.writes += 1;
        self.data[addr as usize] = value;
    }

    /// Reads a word without counting (for test inspection / result draining).
    pub fn peek(&self, addr: u16) -> f32 {
        self.data[addr as usize]
    }

    /// Charges `n` reads without touching data — a burst-stepping PE reads
    /// through [`Scratchpad::contents`] and settles the counter once.
    pub(crate) fn charge_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Charges `n` writes without touching data — the per-dispatch retire
    /// path stores through [`Scratchpad::contents_mut`] and settles the
    /// counter once.
    pub(crate) fn charge_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// The full contents (for draining results).
    pub fn contents(&self) -> &[f32] {
        &self.data
    }

    /// Mutable contents for uncounted bulk stores (pair with
    /// [`Scratchpad::charge_writes`] to settle the counter).
    pub(crate) fn contents_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of counted reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of counted writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets contents and counters.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_read_write_and_counters() {
        let mut pad = Scratchpad::new(8);
        pad.fill(&[1.0, 2.0, 3.0]);
        assert_eq!(pad.capacity(), 8);
        assert_eq!(pad.read(1), 2.0);
        pad.write(5, 9.0);
        assert_eq!(pad.peek(5), 9.0);
        assert_eq!(pad.reads(), 1);
        assert_eq!(pad.writes(), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pad = Scratchpad::new(4);
        pad.fill(&[1.0; 4]);
        pad.read(0);
        pad.reset();
        assert_eq!(pad.peek(0), 0.0);
        assert_eq!(pad.reads(), 0);
        assert_eq!(pad.writes(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds scratchpad capacity")]
    fn oversized_fill_panics() {
        Scratchpad::new(2).fill(&[0.0; 3]);
    }
}
