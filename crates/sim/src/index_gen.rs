//! The strided µindex generator (Figure 7b of the paper).

use ganax_isa::AccessReg;

/// The five configuration registers of a strided µindex generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeneratorConfig {
    /// Initial address the generation starts from.
    pub addr: u16,
    /// Constant offset added to every generated address.
    pub offset: u16,
    /// Step between two consecutive addresses.
    pub step: u16,
    /// Exclusive upper bound; reaching it wraps the address back and consumes
    /// one repetition.
    pub end: u16,
    /// Number of times the pattern is replayed before the generator stops.
    pub repeat: u16,
}

/// A strided µindex generator: produces one operand address per cycle
/// following a preloaded strided pattern, wrapping with a modulo adder and
/// counting down a repeat register (Figure 7b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StridedIndexGenerator {
    config: GeneratorConfig,
    current: u16,
    remaining_repeats: u16,
    running: bool,
    generated: u64,
}

impl StridedIndexGenerator {
    /// Creates a generator with an all-zero configuration (stopped).
    pub fn new() -> Self {
        StridedIndexGenerator {
            config: GeneratorConfig::default(),
            current: 0,
            remaining_repeats: 0,
            running: false,
            generated: 0,
        }
    }

    /// Writes one configuration register (the `access.cfg` µop).
    pub fn configure(&mut self, reg: AccessReg, value: u16) {
        match reg {
            AccessReg::Addr => self.config.addr = value,
            AccessReg::Offset => self.config.offset = value,
            AccessReg::Step => self.config.step = value,
            AccessReg::End => self.config.end = value,
            AccessReg::Repeat => self.config.repeat = value,
        }
    }

    /// Loads a whole configuration at once.
    pub fn load_config(&mut self, config: GeneratorConfig) {
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> GeneratorConfig {
        self.config
    }

    /// Starts (or restarts) address generation from the configured initial
    /// address (the `access.start` µop).
    pub fn start(&mut self) {
        self.current = self.config.addr;
        self.remaining_repeats = self.config.repeat;
        self.running = self.config.repeat > 0 && self.config.step > 0 && self.config.end > 0;
    }

    /// Stops address generation (the `access.stop` µop); it can be re-started.
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Whether the generator is actively producing addresses.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Total addresses generated since construction.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Produces the next address, advancing the internal state, or `None` if
    /// the generator is stopped (either explicitly or because the repeat
    /// counter reached zero).
    pub fn tick(&mut self) -> Option<u16> {
        if !self.running {
            return None;
        }
        let address = self.config.offset.wrapping_add(self.current);
        // Modulo adder: advance and wrap at `End`, decrementing `Repeat` on
        // every wrap; the generator stops once `Repeat` reaches zero.
        let next = self.current + self.config.step;
        if next >= self.config.end {
            self.current = next % self.config.end;
            self.remaining_repeats -= 1;
            if self.remaining_repeats == 0 {
                self.running = false;
            }
        } else {
            self.current = next;
        }
        self.generated += 1;
        Some(address)
    }

    /// Number of addresses the generator will still produce before stopping,
    /// capped at `limit` (so callers proving a bounded stall-free burst never
    /// pay for pathological `end × repeat` replay lengths). Computed by
    /// replaying the *current* state on a scratch copy, so it is exact up to
    /// the cap even mid-run.
    pub fn remaining_addresses_up_to(&self, limit: u64) -> u64 {
        if !self.running {
            return 0;
        }
        // Closed forms for the cases hot in burst-stepped simulation:
        // addresses left before the wrap that stops the run, and step-1
        // multi-round replays (each replayed round walks `end` addresses).
        if self.current < self.config.end {
            if self.remaining_repeats == 1 {
                let span = (self.config.end - self.current) as u64;
                let step = self.config.step as u64;
                return span.div_ceil(step).min(limit);
            }
            if self.config.step == 1 {
                let first = (self.config.end - self.current) as u64;
                let rest = (self.remaining_repeats as u64 - 1) * self.config.end as u64;
                return (first + rest).min(limit);
            }
        }
        let mut probe = self.clone();
        let mut count = 0u64;
        while count < limit && probe.tick().is_some() {
            count += 1;
        }
        count
    }

    /// If every upcoming address is simply `offset + ((current + k) mod end)`
    /// — the generator walks with step 1, wrapping straight to 0 — returns
    /// the *relative* `(current, end)` pair. Burst-stepping adds
    /// [`GeneratorConfig::offset`] (see [`StridedIndexGenerator::offset`]) to
    /// turn the window into absolute scratchpad addresses and replaces
    /// per-tick calls with slice windows; [`Self::advance_wrapping`] settles
    /// the generator state afterwards. Covers both single final rounds and
    /// multi-round replays (the machine's repeated operand streams, including
    /// the engine's block-resident streams addressed through `offset`).
    pub(crate) fn burst_wrap_window(&self) -> Option<(u16, u16)> {
        if self.running && self.config.step == 1 && self.current < self.config.end {
            Some((self.current, self.config.end))
        } else {
            None
        }
    }

    /// The constant offset added to every generated address.
    pub(crate) fn offset(&self) -> u16 {
        self.config.offset
    }

    /// Advances the generator state by exactly `n` ticks in O(1). Valid only
    /// under the conditions [`Self::burst_wrap_window`] reported, with `n`
    /// not exceeding the remaining addresses.
    pub(crate) fn advance_wrapping(&mut self, n: u64) {
        debug_assert!(self.burst_wrap_window().is_some());
        debug_assert!(n <= self.remaining_addresses_up_to(n + 1));
        self.generated += n;
        let end = self.config.end as u64;
        let position = self.current as u64 + n;
        let wraps = (position / end) as u16;
        self.current = (position % end) as u16;
        self.remaining_repeats -= wraps;
        if self.remaining_repeats == 0 {
            self.running = false;
        }
    }

    /// Resets the generator to its just-constructed state: configuration
    /// cleared, stopped, and the generated-address counter zeroed.
    pub fn reset(&mut self) {
        *self = StridedIndexGenerator::new();
    }

    /// Number of addresses one full run of the current configuration yields
    /// (useful for planning and for tests). Computed by replaying the
    /// configuration on a scratch copy, so it is exact even when the step does
    /// not divide the wrap-around extent.
    pub fn addresses_per_run(&self) -> u64 {
        let cfg = self.config;
        if cfg.step == 0 || cfg.end == 0 || cfg.repeat == 0 {
            return 0;
        }
        let mut probe = StridedIndexGenerator::new();
        probe.load_config(cfg);
        probe.start();
        let cap = cfg.end as u64 * cfg.repeat as u64 + 1;
        let mut count = 0u64;
        while count < cap && probe.tick().is_some() {
            count += 1;
        }
        count
    }
}

impl Default for StridedIndexGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect(gen: &mut StridedIndexGenerator, max: usize) -> Vec<u16> {
        let mut out = Vec::new();
        for _ in 0..max {
            match gen.tick() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    #[test]
    fn sequential_pattern() {
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: 5,
            repeat: 1,
        });
        gen.start();
        assert_eq!(collect(&mut gen, 100), vec![0, 1, 2, 3, 4]);
        assert!(!gen.is_running());
    }

    #[test]
    fn strided_pattern_matches_zero_insertion_stride() {
        // Reading every other element of an 8-element row — the access pattern
        // GANAX uses to skip one inserted zero column.
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 2,
            end: 8,
            repeat: 1,
        });
        gen.start();
        assert_eq!(collect(&mut gen, 100), vec![0, 2, 4, 6]);
    }

    #[test]
    fn repeat_replays_the_pattern() {
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: 3,
            repeat: 3,
        });
        gen.start();
        assert_eq!(collect(&mut gen, 100), vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(gen.generated(), 9);
    }

    #[test]
    fn offset_shifts_every_address() {
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 100,
            step: 1,
            end: 3,
            repeat: 1,
        });
        gen.start();
        assert_eq!(collect(&mut gen, 10), vec![100, 101, 102]);
    }

    #[test]
    fn stop_interrupts_and_start_restarts() {
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: 4,
            repeat: 2,
        });
        gen.start();
        assert_eq!(gen.tick(), Some(0));
        assert_eq!(gen.tick(), Some(1));
        gen.stop();
        assert_eq!(gen.tick(), None);
        // Restart begins a fresh run from the configured initial address.
        gen.start();
        assert_eq!(gen.tick(), Some(0));
    }

    #[test]
    fn configure_via_access_registers() {
        let mut gen = StridedIndexGenerator::new();
        gen.configure(AccessReg::Addr, 2);
        gen.configure(AccessReg::Offset, 10);
        gen.configure(AccessReg::Step, 2);
        gen.configure(AccessReg::End, 8);
        gen.configure(AccessReg::Repeat, 1);
        gen.start();
        assert_eq!(collect(&mut gen, 10), vec![12, 14, 16]);
    }

    #[test]
    fn remaining_addresses_tracks_mid_run_state() {
        let mut gen = StridedIndexGenerator::new();
        gen.load_config(GeneratorConfig {
            addr: 0,
            offset: 0,
            step: 1,
            end: 4,
            repeat: 2,
        });
        assert_eq!(gen.remaining_addresses_up_to(100), 0, "stopped generator");
        gen.start();
        assert_eq!(gen.remaining_addresses_up_to(100), 8);
        assert_eq!(gen.remaining_addresses_up_to(3), 3, "cap is respected");
        gen.tick();
        gen.tick();
        assert_eq!(gen.remaining_addresses_up_to(100), 6);
        // The probe must not disturb the live generator.
        assert_eq!(gen.tick(), Some(2));
    }

    #[test]
    fn unconfigured_generator_never_runs() {
        let mut gen = StridedIndexGenerator::new();
        gen.start();
        assert!(!gen.is_running());
        assert_eq!(gen.tick(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The generator emits exactly `addresses_per_run()` addresses and all
        /// of them lie within `[offset + 0, offset + end)`.
        #[test]
        fn prop_run_length_and_range(
            addr in 0u16..8,
            offset in 0u16..32,
            step in 1u16..5,
            end in 1u16..24,
            repeat in 1u16..4,
        ) {
            prop_assume!(addr < end);
            let mut gen = StridedIndexGenerator::new();
            gen.load_config(GeneratorConfig { addr, offset, step, end, repeat });
            gen.start();
            let out = collect(&mut gen, 10_000);
            prop_assert_eq!(out.len() as u64, gen.addresses_per_run());
            for a in &out {
                prop_assert!(*a >= offset);
                prop_assert!(*a < offset + end);
            }
            prop_assert!(!gen.is_running());
        }

        /// When the step divides the wrap-around extent, every replayed round
        /// emits exactly the same address sequence.
        #[test]
        fn prop_rounds_are_identical(
            step in 1u16..5,
            rounds_len in 1u16..8,
            repeat in 2u16..4,
        ) {
            let end = step * rounds_len;
            let mut gen = StridedIndexGenerator::new();
            gen.load_config(GeneratorConfig { addr: 0, offset: 0, step, end, repeat });
            gen.start();
            let out = collect(&mut gen, 10_000);
            let round = rounds_len as usize;
            prop_assert_eq!(out.len(), round * repeat as usize);
            for r in 1..repeat as usize {
                prop_assert_eq!(&out[..round], &out[r * round..(r + 1) * round]);
            }
        }
    }
}
