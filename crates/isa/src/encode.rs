//! Bit-level encoding of global µop buffer entries.
//!
//! The paper's global µop buffer stores 32 entries of 64 bits: four bits per
//! processing vector (16 PVs × 4 bits = 64 bits) plus one extra bit that selects
//! the execution mode (SIMD vs MIMD-SIMD). This module packs and unpacks that
//! format; in SIMD mode the four low bits carry the broadcast execute µop's
//! opcode and the remaining index fields are unused.

use std::fmt;

use crate::uop::{ExecUop, GlobalUop};

/// Errors produced while encoding or decoding global µop words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A MIMD entry supplied a different number of indices than there are PVs.
    WrongIndexCount {
        /// Number of indices supplied.
        supplied: usize,
        /// Number of processing vectors expected.
        expected: usize,
    },
    /// A local-buffer index does not fit in the 4-bit per-PV field.
    IndexTooLarge {
        /// The offending index value.
        index: u8,
    },
    /// More PVs were requested than the 64-bit payload can address.
    TooManyPvs {
        /// The requested PV count.
        pvs: usize,
    },
    /// The decoded opcode is not a valid execute µop.
    InvalidOpcode {
        /// The offending opcode value.
        opcode: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::WrongIndexCount { supplied, expected } => write!(
                f,
                "mimd.exe supplied {supplied} indices but the accelerator has {expected} PVs"
            ),
            EncodeError::IndexTooLarge { index } => {
                write!(f, "local uop index {index} does not fit in 4 bits")
            }
            EncodeError::TooManyPvs { pvs } => {
                write!(
                    f,
                    "{pvs} PVs exceed the 16 addressable by a 64-bit global uop"
                )
            }
            EncodeError::InvalidOpcode { opcode } => {
                write!(f, "invalid execute uop opcode {opcode}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A packed global µop buffer entry: a 64-bit payload plus the mode bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalUopWord {
    /// True for SIMD mode (local buffers bypassed), false for MIMD-SIMD mode.
    pub simd_mode: bool,
    /// 4 bits per PV: local-buffer indices in MIMD-SIMD mode, or the broadcast
    /// opcode in the low nibble in SIMD mode.
    pub payload: u64,
}

/// Maximum number of processing vectors addressable by one 64-bit entry.
pub const MAX_PVS_PER_WORD: usize = 16;

impl GlobalUopWord {
    /// Packs a decoded [`GlobalUop`] into its 64-bit + mode-bit representation.
    ///
    /// # Errors
    /// Returns an [`EncodeError`] if the index vector length does not match
    /// `num_pvs`, an index exceeds 4 bits, or `num_pvs` exceeds 16.
    pub fn encode(uop: &GlobalUop, num_pvs: usize) -> Result<Self, EncodeError> {
        if num_pvs > MAX_PVS_PER_WORD {
            return Err(EncodeError::TooManyPvs { pvs: num_pvs });
        }
        match uop {
            GlobalUop::Simd(exec) => Ok(GlobalUopWord {
                simd_mode: true,
                payload: exec.opcode() as u64,
            }),
            GlobalUop::MimdExe(indices) => {
                if indices.len() != num_pvs {
                    return Err(EncodeError::WrongIndexCount {
                        supplied: indices.len(),
                        expected: num_pvs,
                    });
                }
                let mut payload = 0u64;
                for (pv, idx) in indices.iter().enumerate() {
                    if *idx > 0xF {
                        return Err(EncodeError::IndexTooLarge { index: *idx });
                    }
                    payload |= (*idx as u64) << (4 * pv);
                }
                Ok(GlobalUopWord {
                    simd_mode: false,
                    payload,
                })
            }
        }
    }

    /// Extracts the 4-bit field of one PV from the payload.
    pub fn pv_field(&self, pv: usize) -> u8 {
        ((self.payload >> (4 * pv)) & 0xF) as u8
    }
}

impl GlobalUop {
    /// Unpacks a [`GlobalUopWord`] back into its decoded form.
    ///
    /// # Errors
    /// Returns [`EncodeError::InvalidOpcode`] if a SIMD word carries an unknown
    /// opcode, or [`EncodeError::TooManyPvs`] if `num_pvs` exceeds 16.
    pub fn decode(word: GlobalUopWord, num_pvs: usize) -> Result<Self, EncodeError> {
        if num_pvs > MAX_PVS_PER_WORD {
            return Err(EncodeError::TooManyPvs { pvs: num_pvs });
        }
        if word.simd_mode {
            let opcode = (word.payload & 0xF) as u8;
            let exec = ExecUop::from_opcode(opcode).ok_or(EncodeError::InvalidOpcode { opcode })?;
            Ok(GlobalUop::Simd(exec))
        } else {
            Ok(GlobalUop::MimdExe(
                (0..num_pvs).map(|pv| word.pv_field(pv)).collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simd_round_trip_all_opcodes() {
        for exec in ExecUop::ALL {
            let uop = GlobalUop::Simd(exec);
            let word = GlobalUopWord::encode(&uop, 16).unwrap();
            assert!(word.simd_mode);
            assert_eq!(GlobalUop::decode(word, 16).unwrap(), uop);
        }
    }

    #[test]
    fn mimd_round_trip_distinct_indices() {
        let indices: Vec<u8> = (0..16).map(|i| (15 - i) as u8).collect();
        let uop = GlobalUop::MimdExe(indices.clone());
        let word = GlobalUopWord::encode(&uop, 16).unwrap();
        assert!(!word.simd_mode);
        for (pv, idx) in indices.iter().enumerate() {
            assert_eq!(word.pv_field(pv), *idx);
        }
        assert_eq!(GlobalUop::decode(word, 16).unwrap(), uop);
    }

    #[test]
    fn encode_rejects_wrong_index_count() {
        let uop = GlobalUop::MimdExe(vec![0; 8]);
        let err = GlobalUopWord::encode(&uop, 16).unwrap_err();
        assert_eq!(
            err,
            EncodeError::WrongIndexCount {
                supplied: 8,
                expected: 16
            }
        );
    }

    #[test]
    fn encode_rejects_oversized_index() {
        let uop = GlobalUop::MimdExe(vec![16; 16]);
        assert_eq!(
            GlobalUopWord::encode(&uop, 16).unwrap_err(),
            EncodeError::IndexTooLarge { index: 16 }
        );
    }

    #[test]
    fn encode_rejects_too_many_pvs() {
        let uop = GlobalUop::Simd(ExecUop::Mac);
        assert_eq!(
            GlobalUopWord::encode(&uop, 17).unwrap_err(),
            EncodeError::TooManyPvs { pvs: 17 }
        );
    }

    #[test]
    fn decode_rejects_invalid_opcode() {
        let word = GlobalUopWord {
            simd_mode: true,
            payload: 0xF,
        };
        assert_eq!(
            GlobalUop::decode(word, 16).unwrap_err(),
            EncodeError::InvalidOpcode { opcode: 0xF }
        );
    }

    #[test]
    fn error_display() {
        let msg = EncodeError::IndexTooLarge { index: 20 }.to_string();
        assert!(msg.contains("20"));
    }

    proptest! {
        #[test]
        fn prop_mimd_round_trip(indices in proptest::collection::vec(0u8..16, 1..=16)) {
            let pvs = indices.len();
            let uop = GlobalUop::MimdExe(indices);
            let word = GlobalUopWord::encode(&uop, pvs).unwrap();
            prop_assert_eq!(GlobalUop::decode(word, pvs).unwrap(), uop);
        }

        #[test]
        fn prop_payload_fits_four_bits_per_pv(indices in proptest::collection::vec(0u8..16, 16)) {
            let uop = GlobalUop::MimdExe(indices);
            let word = GlobalUopWord::encode(&uop, 16).unwrap();
            // Reconstructing the payload from the 4-bit fields is lossless.
            let mut rebuilt = 0u64;
            for pv in 0..16 {
                rebuilt |= (word.pv_field(pv) as u64) << (4 * pv);
            }
            prop_assert_eq!(rebuilt, word.payload);
        }
    }
}
