//! The GANAX micro-op ISA (Section IV of the paper).
//!
//! GANAX executes layers as sequences of *µops* drawn from three groups:
//!
//! * **Access µops** (`access.cfg`, `access.start`, `access.stop`) configure and
//!   control the strided µindex generators inside each PE's access µ-engine.
//! * **Execute µops** (`add`, `mul`, `mac`, `pool`, `act`, `repeat`) name only
//!   the operation to perform; the decoupled access µ-engine supplies every
//!   operand address, which is what lets the same execute µop be reused over
//!   millions of operands.
//! * **MIMD µops** (`mimd.ld`, `mimd.exe`) live in the global µop buffer and
//!   steer the per-processing-vector (PV) local µop buffers, realising the
//!   unified MIMD-SIMD execution model.
//!
//! The crate also models the two-level µop buffer hierarchy: a 32-entry
//! double-buffered global buffer whose 64-bit entries carry one 4-bit local
//! index per PV plus a mode bit, and a 16-entry local buffer per PV.
//!
//! # Example
//!
//! ```
//! use ganax_isa::{ExecUop, GlobalUop, GlobalUopWord};
//!
//! // A SIMD global µop broadcasting `mac` to every PE:
//! let simd = GlobalUop::Simd(ExecUop::Mac);
//! let word = GlobalUopWord::encode(&simd, 16).unwrap();
//! assert_eq!(GlobalUop::decode(word, 16).unwrap(), simd);
//!
//! // A MIMD-SIMD global µop pointing each of 16 PVs at a local-buffer slot:
//! let mimd = GlobalUop::MimdExe((0..16).map(|i| (i % 16) as u8).collect());
//! let word = GlobalUopWord::encode(&mimd, 16).unwrap();
//! assert_eq!(GlobalUop::decode(word, 16).unwrap(), mimd);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod encode;
mod program;
mod uop;

pub use buffer::{
    BufferError, GlobalUopBuffer, LocalUopBuffer, GLOBAL_UOP_ENTRIES, LOCAL_UOP_ENTRIES,
};
pub use encode::{EncodeError, GlobalUopWord};
pub use program::{LayerProgram, ProgramStats};
pub use uop::{AccessReg, AccessUop, AddrGenKind, ExecUop, GlobalUop, MicroRegister, MimdUop};
