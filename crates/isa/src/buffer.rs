//! The two-level µop buffer hierarchy (Section III.A).
//!
//! * The **global µop buffer** holds 32 packed 64-bit entries and is
//!   double-buffered so the µops of layer *i+1* can be loaded while layer *i*
//!   executes.
//! * Each processing vector owns a **local µop buffer** of 16 execute µops that
//!   is preloaded once before a GAN starts and never drained or refilled.

use std::fmt;

use crate::encode::GlobalUopWord;
use crate::uop::ExecUop;

/// Number of entries in each PV's local µop buffer (paper configuration).
pub const LOCAL_UOP_ENTRIES: usize = 16;

/// Number of entries in the global µop buffer (paper configuration).
pub const GLOBAL_UOP_ENTRIES: usize = 32;

/// Errors raised by the µop buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// Attempted to load more µops than the buffer has entries.
    CapacityExceeded {
        /// Buffer capacity.
        capacity: usize,
        /// Number of µops that were supplied.
        supplied: usize,
    },
    /// Read past the number of loaded entries.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::CapacityExceeded { capacity, supplied } => {
                write!(
                    f,
                    "buffer holds {capacity} entries but {supplied} were supplied"
                )
            }
            BufferError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for {len} loaded entries")
            }
        }
    }
}

impl std::error::Error for BufferError {}

/// A processing vector's local µop buffer.
///
/// Local buffers are preloaded with the (small) set of execute µops a GAN needs
/// and are indexed by the 4-bit per-PV fields of MIMD-SIMD global µops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalUopBuffer {
    entries: Vec<ExecUop>,
    capacity: usize,
    reads: u64,
}

impl LocalUopBuffer {
    /// Creates an empty local buffer with the paper's 16-entry capacity.
    pub fn new() -> Self {
        Self::with_capacity(LOCAL_UOP_ENTRIES)
    }

    /// Creates an empty local buffer with a custom capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LocalUopBuffer {
            entries: Vec::new(),
            capacity,
            reads: 0,
        }
    }

    /// Preloads the buffer contents, replacing anything previously loaded.
    ///
    /// # Errors
    /// Returns [`BufferError::CapacityExceeded`] if more µops are supplied than
    /// the buffer can hold.
    pub fn load(&mut self, uops: &[ExecUop]) -> Result<(), BufferError> {
        if uops.len() > self.capacity {
            return Err(BufferError::CapacityExceeded {
                capacity: self.capacity,
                supplied: uops.len(),
            });
        }
        self.entries = uops.to_vec();
        Ok(())
    }

    /// Fetches the µop at `index`, counting the access.
    ///
    /// # Errors
    /// Returns [`BufferError::IndexOutOfRange`] for unloaded slots.
    pub fn fetch(&mut self, index: usize) -> Result<ExecUop, BufferError> {
        let uop = self
            .entries
            .get(index)
            .copied()
            .ok_or(BufferError::IndexOutOfRange {
                index,
                len: self.entries.len(),
            })?;
        self.reads += 1;
        Ok(uop)
    }

    /// Number of µops currently loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no µops.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fetches served (for energy accounting).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

impl Default for LocalUopBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// The double-buffered global µop buffer.
///
/// One bank drains while the other is being filled with the next layer's µops;
/// [`GlobalUopBuffer::swap`] flips the roles between layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalUopBuffer {
    banks: [Vec<GlobalUopWord>; 2],
    active: usize,
    capacity: usize,
    reads: u64,
}

impl GlobalUopBuffer {
    /// Creates an empty buffer with the paper's 32-entry capacity per bank.
    pub fn new() -> Self {
        Self::with_capacity(GLOBAL_UOP_ENTRIES)
    }

    /// Creates an empty buffer with a custom per-bank capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        GlobalUopBuffer {
            banks: [Vec::new(), Vec::new()],
            active: 0,
            capacity,
            reads: 0,
        }
    }

    /// Loads µop words into the *inactive* bank (the one being prepared for the
    /// next layer).
    ///
    /// # Errors
    /// Returns [`BufferError::CapacityExceeded`] if the words do not fit.
    pub fn load_next(&mut self, words: &[GlobalUopWord]) -> Result<(), BufferError> {
        if words.len() > self.capacity {
            return Err(BufferError::CapacityExceeded {
                capacity: self.capacity,
                supplied: words.len(),
            });
        }
        let inactive = 1 - self.active;
        self.banks[inactive] = words.to_vec();
        Ok(())
    }

    /// Makes the most recently loaded bank active (start of a new layer).
    pub fn swap(&mut self) {
        self.active = 1 - self.active;
    }

    /// Fetches the word at `index` from the active bank.
    ///
    /// # Errors
    /// Returns [`BufferError::IndexOutOfRange`] for unloaded slots.
    pub fn fetch(&mut self, index: usize) -> Result<GlobalUopWord, BufferError> {
        let bank = &self.banks[self.active];
        let word = bank
            .get(index)
            .copied()
            .ok_or(BufferError::IndexOutOfRange {
                index,
                len: bank.len(),
            })?;
        self.reads += 1;
        Ok(word)
    }

    /// Number of words in the active bank.
    pub fn active_len(&self) -> usize {
        self.banks[self.active].len()
    }

    /// Per-bank capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fetches served (for energy accounting).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

impl Default for GlobalUopBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::GlobalUop;

    #[test]
    fn local_buffer_load_and_fetch() {
        let mut buf = LocalUopBuffer::new();
        assert!(buf.is_empty());
        buf.load(&[ExecUop::Mac, ExecUop::Act]).unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.fetch(0).unwrap(), ExecUop::Mac);
        assert_eq!(buf.fetch(1).unwrap(), ExecUop::Act);
        assert_eq!(buf.reads(), 2);
    }

    #[test]
    fn local_buffer_rejects_overflow() {
        let mut buf = LocalUopBuffer::new();
        let too_many = vec![ExecUop::Mac; LOCAL_UOP_ENTRIES + 1];
        assert!(matches!(
            buf.load(&too_many),
            Err(BufferError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn local_buffer_rejects_out_of_range_fetch() {
        let mut buf = LocalUopBuffer::new();
        buf.load(&[ExecUop::Mac]).unwrap();
        assert!(matches!(
            buf.fetch(5),
            Err(BufferError::IndexOutOfRange { index: 5, len: 1 })
        ));
    }

    #[test]
    fn global_buffer_double_buffering() {
        let mut buf = GlobalUopBuffer::new();
        let layer1 = vec![GlobalUopWord::encode(&GlobalUop::Simd(ExecUop::Mac), 16).unwrap(); 3];
        let layer2 = vec![GlobalUopWord::encode(&GlobalUop::Simd(ExecUop::Act), 16).unwrap(); 2];

        buf.load_next(&layer1).unwrap();
        buf.swap();
        assert_eq!(buf.active_len(), 3);
        // While layer 1 executes, layer 2 is loaded into the other bank.
        buf.load_next(&layer2).unwrap();
        assert_eq!(
            buf.active_len(),
            3,
            "loading must not disturb the active bank"
        );
        let word = buf.fetch(0).unwrap();
        assert_eq!(
            GlobalUop::decode(word, 16).unwrap(),
            GlobalUop::Simd(ExecUop::Mac)
        );

        buf.swap();
        assert_eq!(buf.active_len(), 2);
        let word = buf.fetch(0).unwrap();
        assert_eq!(
            GlobalUop::decode(word, 16).unwrap(),
            GlobalUop::Simd(ExecUop::Act)
        );
    }

    #[test]
    fn global_buffer_capacity_enforced() {
        let mut buf = GlobalUopBuffer::new();
        let too_many = vec![GlobalUopWord::encode(&GlobalUop::Simd(ExecUop::Nop), 16).unwrap(); 33];
        assert!(matches!(
            buf.load_next(&too_many),
            Err(BufferError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn default_capacities_match_paper() {
        assert_eq!(LocalUopBuffer::new().capacity(), 16);
        assert_eq!(GlobalUopBuffer::new().capacity(), 32);
    }
}
